//! The transmit and receive buffer memories (§4.3 "Buffer Memories").
//!
//! The SUPERNET's RAM buffer controller (RBC) DMAs frames between these
//! memories and the MAC. The NPE configures synchronous and
//! asynchronous queues within them (§4.3 "NPE"); both classes share the
//! memory's octet capacity. Occupancy is tracked as a time-weighted
//! gauge so the buffer-sizing study (E6) can report time-averaged and
//! peak usage, not just instantaneous depth.

use gw_sim::stats::TimeWeighted;
use gw_sim::time::SimTime;
use std::collections::VecDeque;

/// Transmission class within a buffer memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Synchronous (time-critical) queue.
    Sync,
    /// Asynchronous queue.
    Async,
}

/// Counters for one buffer memory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BufferStats {
    /// Frames accepted.
    pub frames_in: u64,
    /// Frames drained.
    pub frames_out: u64,
    /// Frames rejected because the memory was full.
    pub overflow_drops: u64,
    /// Peak occupancy, octets.
    pub peak_octets: usize,
}

/// A frame buffer memory with sync/async queues sharing octet capacity.
#[derive(Debug)]
pub struct BufferMemory {
    capacity_octets: usize,
    used_octets: usize,
    sync_q: VecDeque<Vec<u8>>,
    async_q: VecDeque<Vec<u8>>,
    stats: BufferStats,
    occupancy: TimeWeighted,
    /// Monotone clock for the occupancy gauge: hardware-side stores and
    /// MAC-side drains arrive from different simulation seams whose
    /// timestamps may disagree by less than one co-simulation slice;
    /// the gauge sees the monotone envelope.
    last_seen: SimTime,
}

impl BufferMemory {
    /// A memory of `capacity_octets`.
    pub fn new(capacity_octets: usize) -> BufferMemory {
        BufferMemory {
            capacity_octets,
            used_octets: 0,
            sync_q: VecDeque::new(),
            async_q: VecDeque::new(),
            stats: BufferStats::default(),
            occupancy: TimeWeighted::new(),
            last_seen: SimTime::ZERO,
        }
    }

    fn monotone(&mut self, now: SimTime) -> SimTime {
        if now > self.last_seen {
            self.last_seen = now;
        }
        self.last_seen
    }

    /// Store a frame into the given class queue. Returns the frame back
    /// when it does not fit.
    pub fn store(&mut self, now: SimTime, class: Class, frame: Vec<u8>) -> Result<(), Vec<u8>> {
        if self.used_octets + frame.len() > self.capacity_octets {
            self.stats.overflow_drops += 1;
            return Err(frame);
        }
        self.used_octets += frame.len();
        self.stats.frames_in += 1;
        self.stats.peak_octets = self.stats.peak_octets.max(self.used_octets);
        let t = self.monotone(now);
        self.occupancy.set(t, self.used_octets as f64);
        match class {
            Class::Sync => self.sync_q.push_back(frame),
            Class::Async => self.async_q.push_back(frame),
        }
        Ok(())
    }

    /// Drain the oldest frame of `class`.
    pub fn drain(&mut self, now: SimTime, class: Class) -> Option<Vec<u8>> {
        let frame = match class {
            Class::Sync => self.sync_q.pop_front(),
            Class::Async => self.async_q.pop_front(),
        }?;
        self.used_octets -= frame.len();
        self.stats.frames_out += 1;
        let t = self.monotone(now);
        self.occupancy.set(t, self.used_octets as f64);
        Some(frame)
    }

    /// Frames queued in `class`.
    pub fn depth(&self, class: Class) -> usize {
        match class {
            Class::Sync => self.sync_q.len(),
            Class::Async => self.async_q.len(),
        }
    }

    /// Octets currently stored.
    pub fn used_octets(&self) -> usize {
        self.used_octets
    }

    /// The memory's capacity.
    pub fn capacity_octets(&self) -> usize {
        self.capacity_octets
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Time-averaged occupancy in octets over `[start, t_end]`.
    pub fn mean_occupancy(&self, t_end: SimTime) -> f64 {
        self.occupancy.mean(t_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_drain_fifo_per_class() {
        let mut m = BufferMemory::new(1000);
        m.store(SimTime::ZERO, Class::Async, vec![1; 10]).unwrap();
        m.store(SimTime::ZERO, Class::Async, vec![2; 10]).unwrap();
        m.store(SimTime::ZERO, Class::Sync, vec![3; 10]).unwrap();
        assert_eq!(m.drain(SimTime::ZERO, Class::Async).unwrap()[0], 1);
        assert_eq!(m.drain(SimTime::ZERO, Class::Sync).unwrap()[0], 3);
        assert_eq!(m.drain(SimTime::ZERO, Class::Async).unwrap()[0], 2);
        assert!(m.drain(SimTime::ZERO, Class::Async).is_none());
    }

    #[test]
    fn capacity_shared_between_classes() {
        let mut m = BufferMemory::new(100);
        m.store(SimTime::ZERO, Class::Sync, vec![0; 60]).unwrap();
        assert!(m.store(SimTime::ZERO, Class::Async, vec![0; 50]).is_err());
        assert_eq!(m.stats().overflow_drops, 1);
        m.store(SimTime::ZERO, Class::Async, vec![0; 40]).unwrap();
        assert_eq!(m.used_octets(), 100);
    }

    #[test]
    fn drain_frees_space() {
        let mut m = BufferMemory::new(50);
        m.store(SimTime::ZERO, Class::Async, vec![0; 50]).unwrap();
        assert!(m.store(SimTime::ZERO, Class::Async, vec![0; 1]).is_err());
        m.drain(SimTime::ZERO, Class::Async);
        assert!(m.store(SimTime::ZERO, Class::Async, vec![0; 50]).is_ok());
    }

    #[test]
    fn occupancy_statistics() {
        let mut m = BufferMemory::new(1000);
        m.store(SimTime::from_ns(0), Class::Async, vec![0; 100]).unwrap();
        m.drain(SimTime::from_ns(100), Class::Async);
        // 100 octets for 100 ns, then 0 for 100 ns -> mean 50 at t=200.
        assert!((m.mean_occupancy(SimTime::from_ns(200)) - 50.0).abs() < 1e-9);
        assert_eq!(m.stats().peak_octets, 100);
        assert_eq!(m.stats().frames_in, 1);
        assert_eq!(m.stats().frames_out, 1);
    }

    #[test]
    fn depths_tracked() {
        let mut m = BufferMemory::new(1000);
        m.store(SimTime::ZERO, Class::Sync, vec![0; 5]).unwrap();
        m.store(SimTime::ZERO, Class::Sync, vec![0; 5]).unwrap();
        assert_eq!(m.depth(Class::Sync), 2);
        assert_eq!(m.depth(Class::Async), 0);
        assert_eq!(m.capacity_octets(), 1000);
    }
}
