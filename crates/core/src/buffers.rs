// gw-lint: critical-path
//! The transmit and receive buffer memories (§4.3 "Buffer Memories").
//!
//! The SUPERNET's RAM buffer controller (RBC) DMAs frames between these
//! memories and the MAC. The NPE configures synchronous and
//! asynchronous queues within them (§4.3 "NPE"); both classes share the
//! memory's octet capacity. Occupancy is tracked as a time-weighted
//! gauge so the buffer-sizing study (E6) can report time-averaged and
//! peak usage, not just instantaneous depth.

use gw_sim::stats::TimeWeighted;
use gw_sim::time::SimTime;
use std::collections::VecDeque;

/// Transmission class within a buffer memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Synchronous (time-critical) queue.
    Sync,
    /// Asynchronous queue.
    Async,
}

/// Counters for one buffer memory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BufferStats {
    /// Frames accepted.
    pub frames_in: u64,
    /// Frames drained.
    pub frames_out: u64,
    /// Frames rejected because the memory was full.
    pub overflow_drops: u64,
    /// Peak occupancy, octets.
    pub peak_octets: usize,
    /// Frames rejected by the overload-shedding policy (watermark
    /// pressure, not hard overflow).
    pub frames_shed: u64,
    /// Octets in the frames counted by [`BufferStats::frames_shed`].
    pub octets_shed: u64,
    /// Times the occupancy crossed the high watermark into shedding.
    pub shed_entries: u64,
}

/// Result of offering a frame to [`BufferMemory::store_tagged`].
/// Rejections hand the frame back so the caller can recycle its buffer
/// instead of dropping it on the floor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Accepted into its class queue.
    Stored,
    /// Rejected by the shedding policy; the frame is returned.
    Shed(Vec<u8>),
    /// Rejected because it cannot fit; the frame is returned.
    Overflow(Vec<u8>),
}

/// A frame buffer memory with sync/async queues sharing octet capacity.
#[derive(Debug)]
pub struct BufferMemory {
    capacity_octets: usize,
    used_octets: usize,
    sync_q: VecDeque<Vec<u8>>,
    async_q: VecDeque<Vec<u8>>,
    stats: BufferStats,
    occupancy: TimeWeighted,
    /// Monotone clock for the occupancy gauge: hardware-side stores and
    /// MAC-side drains arrive from different simulation seams whose
    /// timestamps may disagree by less than one co-simulation slice;
    /// the gauge sees the monotone envelope.
    last_seen: SimTime,
    /// Overload-shedding watermarks `(low, high)` in octets, if set.
    watermarks: Option<(usize, usize)>,
    /// True between crossing the high watermark and falling back to low.
    shedding: bool,
}

impl BufferMemory {
    /// A memory of `capacity_octets`.
    pub fn new(capacity_octets: usize) -> BufferMemory {
        BufferMemory {
            capacity_octets,
            used_octets: 0,
            sync_q: VecDeque::new(),
            async_q: VecDeque::new(),
            stats: BufferStats::default(),
            occupancy: TimeWeighted::new(),
            last_seen: SimTime::ZERO,
            watermarks: None,
            shedding: false,
        }
    }

    /// Arm overload shedding with `low`/`high` watermarks in octets.
    /// `low` is clamped to at most `high`.
    pub fn set_watermarks(&mut self, low: usize, high: usize) {
        self.watermarks = Some((low.min(high), high));
    }

    /// True while the memory is in the shedding state (occupancy
    /// crossed the high watermark and has not yet fallen back to low).
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    fn monotone(&mut self, now: SimTime) -> SimTime {
        if now > self.last_seen {
            self.last_seen = now;
        }
        self.last_seen
    }

    /// Store a frame into the given class queue. Returns the frame back
    /// when it does not fit. Bypasses the shedding policy — used for
    /// traffic that must only fail on hard overflow (control frames).
    pub fn store(&mut self, now: SimTime, class: Class, frame: Vec<u8>) -> Result<(), Vec<u8>> {
        if self.used_octets + frame.len() > self.capacity_octets {
            self.stats.overflow_drops += 1;
            return Err(frame);
        }
        self.used_octets += frame.len();
        self.stats.frames_in += 1;
        self.stats.peak_octets = self.stats.peak_octets.max(self.used_octets);
        let t = self.monotone(now);
        self.occupancy.set(t, self.used_octets as f64);
        match class {
            Class::Sync => self.sync_q.push_back(frame),
            Class::Async => self.async_q.push_back(frame),
        }
        Ok(())
    }

    /// Store a frame under the overload-shedding policy.
    ///
    /// With watermarks armed (see [`BufferMemory::set_watermarks`]):
    ///
    /// * crossing the high watermark enters the shedding state, cleared
    ///   once occupancy falls back to the low watermark (hysteresis);
    /// * in the shedding state every asynchronous frame is shed;
    /// * `discard_eligible` (CLP-tagged) asynchronous frames are shed
    ///   already at the low watermark — they go first;
    /// * synchronous frames never shed; they only fail on hard
    ///   overflow, preserving the time-critical class (§2.2).
    pub fn store_tagged(
        &mut self,
        now: SimTime,
        class: Class,
        frame: Vec<u8>,
        discard_eligible: bool,
    ) -> StoreOutcome {
        if let Some((low, high)) = self.watermarks {
            if self.used_octets >= high {
                if !self.shedding {
                    self.stats.shed_entries += 1;
                }
                self.shedding = true;
            } else if self.used_octets <= low {
                self.shedding = false;
            }
            let shed = class == Class::Async
                && (self.shedding || (discard_eligible && self.used_octets >= low));
            if shed {
                self.stats.frames_shed += 1;
                self.stats.octets_shed += frame.len() as u64;
                return StoreOutcome::Shed(frame);
            }
        }
        match self.store(now, class, frame) {
            Ok(()) => StoreOutcome::Stored,
            Err(frame) => StoreOutcome::Overflow(frame),
        }
    }

    /// Drain the oldest frame of `class`.
    pub fn drain(&mut self, now: SimTime, class: Class) -> Option<Vec<u8>> {
        let frame = match class {
            Class::Sync => self.sync_q.pop_front(),
            Class::Async => self.async_q.pop_front(),
        }?;
        self.used_octets -= frame.len();
        self.stats.frames_out += 1;
        if let Some((low, _)) = self.watermarks {
            if self.used_octets <= low {
                self.shedding = false;
            }
        }
        let t = self.monotone(now);
        self.occupancy.set(t, self.used_octets as f64);
        Some(frame)
    }

    /// Frames queued in `class`.
    pub fn depth(&self, class: Class) -> usize {
        match class {
            Class::Sync => self.sync_q.len(),
            Class::Async => self.async_q.len(),
        }
    }

    /// Octets currently stored.
    pub fn used_octets(&self) -> usize {
        self.used_octets
    }

    /// The memory's capacity.
    pub fn capacity_octets(&self) -> usize {
        self.capacity_octets
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Time-averaged occupancy in octets over `[start, t_end]`.
    pub fn mean_occupancy(&self, t_end: SimTime) -> f64 {
        self.occupancy.mean(t_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_drain_fifo_per_class() {
        let mut m = BufferMemory::new(1000);
        m.store(SimTime::ZERO, Class::Async, vec![1; 10]).unwrap();
        m.store(SimTime::ZERO, Class::Async, vec![2; 10]).unwrap();
        m.store(SimTime::ZERO, Class::Sync, vec![3; 10]).unwrap();
        assert_eq!(m.drain(SimTime::ZERO, Class::Async).unwrap()[0], 1);
        assert_eq!(m.drain(SimTime::ZERO, Class::Sync).unwrap()[0], 3);
        assert_eq!(m.drain(SimTime::ZERO, Class::Async).unwrap()[0], 2);
        assert!(m.drain(SimTime::ZERO, Class::Async).is_none());
    }

    #[test]
    fn capacity_shared_between_classes() {
        let mut m = BufferMemory::new(100);
        m.store(SimTime::ZERO, Class::Sync, vec![0; 60]).unwrap();
        assert!(m.store(SimTime::ZERO, Class::Async, vec![0; 50]).is_err());
        assert_eq!(m.stats().overflow_drops, 1);
        m.store(SimTime::ZERO, Class::Async, vec![0; 40]).unwrap();
        assert_eq!(m.used_octets(), 100);
    }

    #[test]
    fn drain_frees_space() {
        let mut m = BufferMemory::new(50);
        m.store(SimTime::ZERO, Class::Async, vec![0; 50]).unwrap();
        assert!(m.store(SimTime::ZERO, Class::Async, vec![0; 1]).is_err());
        m.drain(SimTime::ZERO, Class::Async);
        assert!(m.store(SimTime::ZERO, Class::Async, vec![0; 50]).is_ok());
    }

    #[test]
    fn occupancy_statistics() {
        let mut m = BufferMemory::new(1000);
        m.store(SimTime::from_ns(0), Class::Async, vec![0; 100]).unwrap();
        m.drain(SimTime::from_ns(100), Class::Async);
        // 100 octets for 100 ns, then 0 for 100 ns -> mean 50 at t=200.
        assert!((m.mean_occupancy(SimTime::from_ns(200)) - 50.0).abs() < 1e-9);
        assert_eq!(m.stats().peak_octets, 100);
        assert_eq!(m.stats().frames_in, 1);
        assert_eq!(m.stats().frames_out, 1);
    }

    #[test]
    fn shedding_hysteresis_between_watermarks() {
        let mut m = BufferMemory::new(1000);
        m.set_watermarks(200, 600);
        // Fill to above the high watermark with sync frames (never shed).
        for _ in 0..7 {
            assert_eq!(
                m.store_tagged(SimTime::ZERO, Class::Sync, vec![0; 100], false),
                StoreOutcome::Stored
            );
        }
        // 700 ≥ high: async traffic sheds now.
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 50], false),
            StoreOutcome::Shed(vec![0; 50])
        );
        assert!(m.is_shedding());
        assert_eq!(m.stats().shed_entries, 1);
        // Drain down to 300 — still above low, shedding persists.
        for _ in 0..4 {
            m.drain(SimTime::ZERO, Class::Sync);
        }
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 50], false),
            StoreOutcome::Shed(vec![0; 50])
        );
        // Drain to 200 = low: shedding clears.
        m.drain(SimTime::ZERO, Class::Sync);
        assert!(!m.is_shedding());
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 50], false),
            StoreOutcome::Stored
        );
        assert_eq!(m.stats().frames_shed, 2);
        assert_eq!(m.stats().octets_shed, 100);
    }

    #[test]
    fn discard_eligible_frames_shed_first() {
        let mut m = BufferMemory::new(1000);
        m.set_watermarks(200, 600);
        for _ in 0..3 {
            m.store(SimTime::ZERO, Class::Async, vec![0; 100]).unwrap();
        }
        // 300 octets: between low and high. CLP-tagged sheds, plain
        // async does not.
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 50], true),
            StoreOutcome::Shed(vec![0; 50])
        );
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 50], false),
            StoreOutcome::Stored
        );
        assert!(!m.is_shedding(), "low-watermark CLP shedding is not the shedding state");
    }

    #[test]
    fn sync_frames_never_shed_only_overflow() {
        let mut m = BufferMemory::new(500);
        m.set_watermarks(100, 300);
        for _ in 0..4 {
            assert_eq!(
                m.store_tagged(SimTime::ZERO, Class::Sync, vec![0; 100], true),
                StoreOutcome::Stored
            );
        }
        // 400 ≥ high: sync still stores (capacity permitting)…
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Sync, vec![0; 100], false),
            StoreOutcome::Stored
        );
        // …until hard overflow.
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Sync, vec![0; 100], false),
            StoreOutcome::Overflow(vec![0; 100])
        );
        assert_eq!(m.stats().frames_shed, 0);
        assert_eq!(m.stats().overflow_drops, 1);
    }

    #[test]
    fn store_tagged_without_watermarks_matches_store() {
        let mut m = BufferMemory::new(100);
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 60], true),
            StoreOutcome::Stored
        );
        assert_eq!(
            m.store_tagged(SimTime::ZERO, Class::Async, vec![0; 60], true),
            StoreOutcome::Overflow(vec![0; 60])
        );
        assert_eq!(m.stats().frames_shed, 0);
    }

    #[test]
    fn depths_tracked() {
        let mut m = BufferMemory::new(1000);
        m.store(SimTime::ZERO, Class::Sync, vec![0; 5]).unwrap();
        m.store(SimTime::ZERO, Class::Sync, vec![0; 5]).unwrap();
        assert_eq!(m.depth(Class::Sync), 2);
        assert_eq!(m.depth(Class::Async), 0);
        assert_eq!(m.capacity_octets(), 1000);
    }
}
