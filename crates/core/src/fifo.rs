// gw-lint: critical-path
//! The gateway's FIFOs (Figure 4).
//!
//! "There are also three sets of FIFOs used in the gateway… Two sets…
//! between the MPP and NPE to exchange ATM and MCHIP control frames.
//! The third… between the MPP and SPP" (§4.3). All are bounded frame
//! queues; overflow is counted, because an undersized NPE FIFO is one
//! of the failure modes the buffer-sizing study must expose.

use std::collections::VecDeque;

/// A bounded FIFO of frames with occupancy statistics.
#[derive(Debug)]
pub struct FrameFifo<T> {
    name: &'static str,
    capacity: usize,
    queue: VecDeque<T>,
    drops: u64,
    peak: usize,
    total_in: u64,
}

impl<T> FrameFifo<T> {
    /// A FIFO holding at most `capacity` frames.
    pub fn new(name: &'static str, capacity: usize) -> FrameFifo<T> {
        FrameFifo { name, capacity, queue: VecDeque::new(), drops: 0, peak: 0, total_in: 0 }
    }

    /// The FIFO's name (for traces and reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Push a frame; returns it back on overflow (counted).
    pub fn push(&mut self, frame: T) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            self.drops += 1;
            return Err(frame);
        }
        self.queue.push_back(frame);
        self.total_in += 1;
        self.peak = self.peak.max(self.queue.len());
        Ok(())
    }

    /// Pop the oldest frame.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Frames rejected at a full queue.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Highest occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total frames accepted.
    pub fn total_in(&self) -> u64 {
        self.total_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = FrameFifo::new("t", 10);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn overflow_returns_frame_and_counts() {
        let mut f = FrameFifo::new("t", 2);
        f.push("a").unwrap();
        f.push("b").unwrap();
        assert_eq!(f.push("c"), Err("c"));
        assert_eq!(f.drops(), 1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn stats_track() {
        let mut f = FrameFifo::new("npe", 4);
        for i in 0..3 {
            f.push(i).unwrap();
        }
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.peak(), 3);
        assert_eq!(f.total_in(), 4);
        assert_eq!(f.name(), "npe");
        assert!(!f.is_empty());
    }
}
