//! The ATM Interface Chip (§4.3 "ATM Interface Chip (AIC)").
//!
//! The AIC (the BPN's Packet Processor 1, \[14\]) implements the ATM PHY:
//! it "synchronizes the incoming ATM cells to the gateway's internal
//! clock (packet cycle)", performs the header error check — "any cells
//! with an error in the header are simply discarded" — and "generates a
//! CRC for the ATM headers on outbound cells".
//!
//! Beyond the paper's plain discard behaviour, the AIC can run the
//! ITU-T I.432 HEC state machine ([`gw_wire::hec_correct`]) that
//! *corrects* single-bit header errors — the mode the emerging ATM
//! standard the paper tracks prescribes. Disabled by default to match
//! the paper text; enabled via [`Aic::with_correction`].

use gw_sim::time::SimTime;
use gw_wire::atm::{CELL_SIZE, HEADER_SIZE};
use gw_wire::crc;
use gw_wire::hec_correct::{HecOutcome, HecReceiver};

/// AIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AicStats {
    /// Cells passed inbound.
    pub cells_in: u64,
    /// Cells discarded for HEC failure.
    pub hec_discards: u64,
    /// Cells whose header was repaired (correction mode only).
    pub hec_corrections: u64,
    /// Cells emitted outbound (HEC stamped).
    pub cells_out: u64,
}

/// The AIC model.
#[derive(Debug, Default)]
pub struct Aic {
    stats: AicStats,
    receiver: Option<HecReceiver>,
}

impl Aic {
    /// An AIC with the paper's behaviour: discard on any header error.
    pub fn new() -> Aic {
        Aic::default()
    }

    /// An AIC running the I.432 correction-mode state machine.
    pub fn with_correction() -> Aic {
        Aic { stats: AicStats::default(), receiver: Some(HecReceiver::new()) }
    }

    /// True when single-bit correction is enabled.
    pub fn corrects(&self) -> bool {
        self.receiver.is_some()
    }

    /// Synchronize an arriving cell to the internal 40 ns packet cycle
    /// and check (and possibly repair, in place) its header. Returns
    /// the aligned presentation time, or `None` when discarded.
    pub fn receive(&mut self, now: SimTime, cell: &mut [u8; CELL_SIZE]) -> Option<SimTime> {
        match &mut self.receiver {
            None => {
                if !crc::hec_valid(&cell[..HEADER_SIZE]) {
                    self.stats.hec_discards += 1;
                    return None;
                }
            }
            Some(rx) => match rx.receive(&mut cell[..HEADER_SIZE]) {
                HecOutcome::Valid => {}
                HecOutcome::Corrected { .. } => self.stats.hec_corrections += 1,
                HecOutcome::Discard => {
                    self.stats.hec_discards += 1;
                    return None;
                }
            },
        }
        self.stats.cells_in += 1;
        Some(now.ceil_to_cycle())
    }

    /// Stamp the HEC on an outbound cell (over its first four header
    /// octets) and count it.
    pub fn transmit(&mut self, cell: &mut [u8; CELL_SIZE]) {
        cell[4] = crc::hec(&cell[..4]);
        self.stats.cells_out += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AicStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_wire::atm::{AtmHeader, OwnedCell, Vci, Vpi};

    fn good_cell() -> [u8; CELL_SIZE] {
        let c = OwnedCell::build(&AtmHeader::data(Vpi(0), Vci(7)), &[1; 48]).unwrap();
        let mut b = [0u8; CELL_SIZE];
        b.copy_from_slice(c.as_bytes());
        b
    }

    #[test]
    fn good_cell_accepted_and_aligned() {
        let mut aic = Aic::new();
        let mut cell = good_cell();
        let t = aic.receive(SimTime::from_ns(95), &mut cell).unwrap();
        assert_eq!(t, SimTime::from_ns(120), "aligned up to the packet cycle");
        assert_eq!(aic.stats().cells_in, 1);
    }

    #[test]
    fn corrupted_header_discarded_without_correction() {
        let mut aic = Aic::new();
        let mut cell = good_cell();
        cell[2] ^= 0x04;
        assert_eq!(aic.receive(SimTime::ZERO, &mut cell), None);
        assert_eq!(aic.stats().hec_discards, 1);
        assert_eq!(aic.stats().cells_in, 0);
        assert!(!aic.corrects());
    }

    #[test]
    fn single_bit_error_corrected_in_correction_mode() {
        let mut aic = Aic::with_correction();
        let mut cell = good_cell();
        cell[2] ^= 0x04;
        let t = aic.receive(SimTime::ZERO, &mut cell);
        assert!(t.is_some(), "single-bit error repaired, cell passes");
        assert_eq!(aic.stats().hec_corrections, 1);
        assert_eq!(&cell[..5], &good_cell()[..5], "header restored");
        assert_eq!(
            gw_wire::atm::AtmHeader::parse(&cell).unwrap().vci,
            Vci(7),
            "repaired header parses to the original VCI"
        );
    }

    #[test]
    fn burst_errors_still_discarded_in_correction_mode() {
        let mut aic = Aic::with_correction();
        // Two errored cells back to back: the second is discarded even
        // if single-bit (detection mode), preventing mis-correction
        // during bursts.
        let mut c1 = good_cell();
        c1[0] ^= 0x80;
        assert!(aic.receive(SimTime::ZERO, &mut c1).is_some());
        let mut c2 = good_cell();
        c2[1] ^= 0x01;
        assert!(aic.receive(SimTime::from_us(3), &mut c2).is_none());
        assert_eq!(aic.stats().hec_discards, 1);
        // A clean cell re-arms correction.
        let mut c3 = good_cell();
        assert!(aic.receive(SimTime::from_us(6), &mut c3).is_some());
        let mut c4 = good_cell();
        c4[3] ^= 0x40;
        assert!(aic.receive(SimTime::from_us(9), &mut c4).is_some());
        assert_eq!(aic.stats().hec_corrections, 2);
    }

    #[test]
    fn corrupted_payload_passes_aic() {
        // The AIC only guards the header; payload errors are the SPP
        // CRC Logic's job (§5.2).
        let mut aic = Aic::new();
        let mut cell = good_cell();
        cell[20] ^= 0xFF;
        assert!(aic.receive(SimTime::ZERO, &mut cell).is_some());
    }

    #[test]
    fn transmit_stamps_valid_hec() {
        let mut aic = Aic::new();
        let mut cell = good_cell();
        cell[4] = 0; // ruin the HEC
        aic.transmit(&mut cell);
        assert!(crc::hec_valid(&cell[..5]));
        assert_eq!(aic.stats().cells_out, 1);
    }

    #[test]
    fn already_aligned_time_unchanged() {
        let mut aic = Aic::new();
        let mut cell = good_cell();
        let t = aic.receive(SimTime::from_ns(400), &mut cell).unwrap();
        assert_eq!(t, SimTime::from_ns(400));
    }
}
