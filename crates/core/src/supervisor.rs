//! Connection supervisor: watchdogs and retry/backoff for congram
//! setup through ATM signaling.
//!
//! Congrams are plesio-reliable (§2.4): the network promises a very low
//! — but nonzero — failure rate, and recovery from the failures that do
//! happen is a connection-management job, not a data-path one. The
//! paper leaves that machinery to the NPE's software ("connection,
//! resource, and route management", §4.2); this module is that
//! machinery for the setup path:
//!
//! * every [`NpeAction::RequestAtmConnection`] the NPE emits is put
//!   under a **setup watchdog** — if neither a `ConnectionUp` nor a
//!   `Rejected` indication arrives before the deadline, the attempt is
//!   presumed lost (signaling messages travel the same lossy network as
//!   data);
//! * a failed or timed-out attempt moves the congram to **backoff**:
//!   exponentially growing, deterministically jittered delays keep
//!   retries from synchronizing across congrams;
//! * a bounded **retry budget** caps the attempts; once exhausted the
//!   congram is failed and the requester receives a `SetupReject`.
//!
//! The supervisor is a passive table — the NPE drives it from
//! [`Npe::scan`] and translates its events into actions.
//!
//! [`NpeAction::RequestAtmConnection`]: crate::npe::NpeAction::RequestAtmConnection
//! [`Npe::scan`]: crate::npe::Npe::scan

use gw_mchip::congram::CongramId;
use gw_sim::rng::SimRng;
use gw_sim::time::SimTime;
use std::collections::HashMap;

/// Tunables for the connection supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// How long one signaling attempt may remain unanswered before the
    /// watchdog presumes it lost.
    pub setup_watchdog: SimTime,
    /// Retries allowed after the initial attempt. `0` reproduces the
    /// legacy behaviour: the first failure rejects the setup.
    pub retry_budget: u32,
    /// Backoff before retry `n` is `base << (n-1)`, capped at
    /// [`SupervisorConfig::backoff_max`], plus jitter.
    pub backoff_base: SimTime,
    /// Upper bound on the exponential backoff delay (pre-jitter).
    pub backoff_max: SimTime,
    /// Seed for the deterministic jitter stream (up to 25% of the
    /// delay is added so retries desynchronize across congrams).
    pub jitter_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            setup_watchdog: SimTime::from_ms(5),
            retry_budget: 3,
            backoff_base: SimTime::from_ms(2),
            backoff_max: SimTime::from_ms(50),
            jitter_seed: 0x1991,
        }
    }
}

impl SupervisorConfig {
    /// The legacy no-retry policy: the first signaling failure rejects
    /// the setup immediately and no watchdog fires.
    pub fn disabled() -> SupervisorConfig {
        SupervisorConfig { retry_budget: 0, ..Default::default() }
    }
}

/// Where a supervised congram setup currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupPhase {
    /// An attempt is in flight; the watchdog fires at `deadline`.
    Establishing {
        /// When the watchdog presumes the attempt lost.
        deadline: SimTime,
    },
    /// Waiting out the backoff delay before the next attempt.
    Backoff {
        /// When the next attempt is due.
        until: SimTime,
    },
}

/// Supervision record for one congram setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Current phase.
    pub phase: SetupPhase,
    /// 1-based attempt number of the current/most recent attempt.
    pub attempt: u32,
    /// True once at least one attempt failed — the congram is running
    /// degraded (late, but not yet given up on).
    pub degraded: bool,
}

/// What the supervisor wants done, from [`ConnectionSupervisor::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// Backoff elapsed: re-issue the signaling request.
    Retry(CongramId),
    /// Retry budget exhausted: fail the setup toward the requester.
    GiveUp(CongramId),
}

/// What to do about an explicit signaling failure
/// ([`ConnectionSupervisor::fail`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailVerdict {
    /// A retry is scheduled at the contained time; keep the congram.
    Backoff(SimTime),
    /// Budget exhausted (or the congram was never supervised): fail it.
    GiveUp,
}

/// Supervisor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Watchdog deadlines that fired (attempt presumed lost).
    pub watchdog_fires: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Setups abandoned after exhausting the budget.
    pub failures: u64,
}

/// The supervisor table: per-congram watchdog + backoff state.
#[derive(Debug)]
pub struct ConnectionSupervisor {
    config: SupervisorConfig,
    entries: HashMap<CongramId, Supervision>,
    jitter: SimRng,
    stats: SupervisorStats,
}

impl ConnectionSupervisor {
    /// A supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> ConnectionSupervisor {
        ConnectionSupervisor {
            jitter: SimRng::new(config.jitter_seed),
            config,
            entries: HashMap::new(),
            stats: SupervisorStats::default(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Replace the policy (only sensible before any entry exists).
    pub fn set_config(&mut self, config: SupervisorConfig) {
        self.jitter = SimRng::new(config.jitter_seed);
        self.config = config;
    }

    /// Start supervising a congram whose first signaling attempt was
    /// just issued.
    pub fn begin(&mut self, now: SimTime, congram: CongramId) {
        self.entries.insert(
            congram,
            Supervision {
                phase: SetupPhase::Establishing { deadline: now + self.config.setup_watchdog },
                attempt: 1,
                degraded: false,
            },
        );
    }

    /// Signaling succeeded. Returns false when the congram was not
    /// under supervision — a stale or duplicate indication the caller
    /// must ignore.
    pub fn confirmed(&mut self, congram: CongramId) -> bool {
        self.entries.remove(&congram).is_some()
    }

    /// Stop supervising without judgement (congram torn down).
    pub fn cancel(&mut self, congram: CongramId) {
        self.entries.remove(&congram);
    }

    /// An explicit signaling rejection arrived for the congram's
    /// current attempt.
    pub fn fail(&mut self, now: SimTime, congram: CongramId) -> FailVerdict {
        let Some(attempt) = self.entries.get(&congram).map(|e| e.attempt) else {
            return FailVerdict::GiveUp;
        };
        if attempt > self.config.retry_budget {
            self.entries.remove(&congram);
            self.stats.failures += 1;
            return FailVerdict::GiveUp;
        }
        let until = now + self.backoff_delay(attempt);
        let entry = self.entries.get_mut(&congram).expect("checked above");
        entry.phase = SetupPhase::Backoff { until };
        entry.degraded = true;
        FailVerdict::Backoff(until)
    }

    /// Exponential backoff with deterministic additive jitter for the
    /// retry following failed attempt `attempt`.
    fn backoff_delay(&mut self, attempt: u32) -> SimTime {
        backoff_delay(&self.config, attempt, &mut self.jitter)
    }

    /// Advance watchdog and backoff timers to `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<SupervisorEvent> {
        // Nothing supervised (the steady-state data path) costs nothing.
        if self.entries.is_empty() {
            return Vec::new();
        }
        let mut ids: Vec<CongramId> = self.entries.keys().copied().collect();
        ids.sort();
        let mut events = Vec::new();
        for id in ids {
            // One entry can chain Establishing → Backoff → Retry within
            // a single (coarse) poll; loop until it settles.
            while let Some(entry) = self.entries.get_mut(&id) {
                match entry.phase {
                    SetupPhase::Establishing { deadline } if deadline <= now => {
                        // Watchdog: the attempt is presumed lost in the
                        // network; treat exactly like a rejection.
                        self.stats.watchdog_fires += 1;
                        if entry.attempt > self.config.retry_budget {
                            self.entries.remove(&id);
                            self.stats.failures += 1;
                            events.push(SupervisorEvent::GiveUp(id));
                            break;
                        }
                        let attempt = entry.attempt;
                        let until = deadline + self.backoff_delay(attempt);
                        let entry = self.entries.get_mut(&id).expect("still present");
                        entry.phase = SetupPhase::Backoff { until };
                        entry.degraded = true;
                    }
                    SetupPhase::Backoff { until } if until <= now => {
                        entry.attempt += 1;
                        entry.phase = SetupPhase::Establishing {
                            deadline: until + self.config.setup_watchdog,
                        };
                        self.stats.retries += 1;
                        events.push(SupervisorEvent::Retry(id));
                        break;
                    }
                    _ => break,
                }
            }
        }
        events
    }

    /// Earliest pending watchdog or backoff deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries
            .values()
            .map(|e| match e.phase {
                SetupPhase::Establishing { deadline } => deadline,
                SetupPhase::Backoff { until } => until,
            })
            .min()
    }

    /// Supervision state of a congram, if any.
    pub fn supervision(&self, congram: CongramId) -> Option<Supervision> {
        self.entries.get(&congram).copied()
    }

    /// Setups currently degraded (at least one failed attempt).
    pub fn degraded(&self) -> usize {
        self.entries.values().filter(|e| e.degraded).count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }
}

/// The backoff schedule itself, as a free function: exponential in the
/// 1-based `attempt` number (`base << (attempt-1)`), capped at
/// [`SupervisorConfig::backoff_max`], plus up to 25% deterministic
/// jitter drawn from `jitter`. Shared by the congram-setup supervisor
/// above and the appliance transport supervisor (`gw-phy`), so a
/// socket reconnect and a signaling retry follow the same policy.
pub fn backoff_delay(config: &SupervisorConfig, attempt: u32, jitter: &mut SimRng) -> SimTime {
    let shift = attempt.saturating_sub(1).min(20);
    let raw = config.backoff_base.as_ns().saturating_shl(shift);
    let capped = raw.min(config.backoff_max.as_ns());
    let jitter = jitter.below(capped / 4 + 1);
    SimTime::from_ns(capped + jitter)
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: CongramId = CongramId(1);

    fn sup(budget: u32) -> ConnectionSupervisor {
        ConnectionSupervisor::new(SupervisorConfig {
            setup_watchdog: SimTime::from_ms(5),
            retry_budget: budget,
            backoff_base: SimTime::from_ms(2),
            backoff_max: SimTime::from_ms(16),
            jitter_seed: 9,
        })
    }

    #[test]
    fn confirm_removes_entry_and_flags_stale_duplicates() {
        let mut s = sup(3);
        s.begin(SimTime::ZERO, C);
        assert!(s.confirmed(C));
        assert!(!s.confirmed(C), "second indication is stale");
        assert!(s.poll(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn zero_budget_reproduces_immediate_failure() {
        let mut s = sup(0);
        s.begin(SimTime::ZERO, C);
        assert_eq!(s.fail(SimTime::from_ms(1), C), FailVerdict::GiveUp);
        assert_eq!(s.stats().failures, 1);
        assert!(s.supervision(C).is_none());
    }

    #[test]
    fn watchdog_fires_then_retries_then_gives_up() {
        let mut s = sup(2);
        s.begin(SimTime::ZERO, C);
        // Nothing before the watchdog deadline.
        assert!(s.poll(SimTime::from_ms(4)).is_empty());
        let mut retries = 0;
        let mut gave_up = false;
        let mut t = SimTime::from_ms(4);
        // Never answer; drive time forward until the supervisor quits.
        for _ in 0..200 {
            t += SimTime::from_ms(1);
            for ev in s.poll(t) {
                match ev {
                    SupervisorEvent::Retry(id) => {
                        assert_eq!(id, C);
                        retries += 1;
                    }
                    SupervisorEvent::GiveUp(id) => {
                        assert_eq!(id, C);
                        gave_up = true;
                    }
                }
            }
            if gave_up {
                break;
            }
        }
        assert_eq!(retries, 2, "budget of 2 retries");
        assert!(gave_up);
        assert_eq!(s.stats().watchdog_fires, 3, "initial + both retries timed out");
        assert!(s.supervision(C).is_none());
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let mut s = sup(10);
        let d1 = s.backoff_delay(1);
        let d2 = s.backoff_delay(2);
        let d9 = s.backoff_delay(9);
        assert!(d1 >= SimTime::from_ms(2));
        assert!(d1 <= SimTime::from_ms(2) + SimTime::from_us(500), "jitter ≤ 25%");
        assert!(d2 >= SimTime::from_ms(4));
        // Capped at 16 ms + 25% jitter.
        assert!(d9 <= SimTime::from_ms(20));
    }

    #[test]
    fn explicit_rejection_schedules_backoff() {
        let mut s = sup(1);
        s.begin(SimTime::ZERO, C);
        let FailVerdict::Backoff(until) = s.fail(SimTime::from_ms(1), C) else {
            panic!("first failure must back off");
        };
        assert!(until >= SimTime::from_ms(3));
        // The retry fires once the backoff elapses.
        let evs = s.poll(until);
        assert_eq!(evs, vec![SupervisorEvent::Retry(C)]);
        assert!(matches!(s.supervision(C).unwrap().phase, SetupPhase::Establishing { .. }));
        assert!(s.supervision(C).unwrap().degraded);
        // Second explicit failure exhausts the budget of 1.
        assert_eq!(s.fail(until + SimTime::from_ms(1), C), FailVerdict::GiveUp);
    }

    #[test]
    fn next_deadline_tracks_earliest_timer() {
        let mut s = sup(3);
        assert_eq!(s.next_deadline(), None);
        s.begin(SimTime::ZERO, C);
        s.begin(SimTime::from_ms(1), CongramId(2));
        assert_eq!(s.next_deadline(), Some(SimTime::from_ms(5)));
    }

    #[test]
    fn deterministic_for_a_seed() {
        let run = || {
            let mut s = sup(3);
            s.begin(SimTime::ZERO, C);
            let mut log = Vec::new();
            for ms in 1..100 {
                log.extend(s.poll(SimTime::from_ms(ms)));
            }
            (log, s.stats())
        };
        assert_eq!(run(), run());
    }
}
