//! Gateway configuration.
//!
//! "The exact size of these buffers will be determined based on results
//! of an on-going simulation study" (§4.3) — these knobs are exactly
//! what that study (experiment E6) sweeps.

use gw_sim::time::SimTime;

/// Configuration for one gateway.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Maximum simultaneously open congrams `N`; the ICXT tables are
    /// `N × 8` octets each (§6.1–§6.2).
    pub max_congrams: usize,
    /// Reassembly buffer capacity per buffer, in cells (91 covers the
    /// largest internet frame, §5.3).
    pub reassembly_buffer_cells: usize,
    /// Reassembly buffers per connection (the design uses 2, §5.3).
    pub reassembly_buffers_per_vc: usize,
    /// Default reassembly timeout (NPE-programmed, §5.3).
    pub reassembly_timeout: SimTime,
    /// Transmit buffer memory capacity, octets.
    pub tx_buffer_octets: usize,
    /// Receive buffer memory capacity, octets.
    pub rx_buffer_octets: usize,
    /// NPE FIFO capacity, frames ("primarily depends on the NPE's
    /// processing latency", §6.1).
    pub npe_fifo_frames: usize,
    /// SPP FIFO capacity, frames.
    pub spp_fifo_frames: usize,
    /// NPE software processing time per control message (the
    /// non-critical path, §4.2).
    pub npe_control_latency: SimTime,
    /// Forward reassembly-errored frames instead of discarding (§5.2's
    /// "in future, this decision will be left to the MCHIP layer").
    pub forward_errored_frames: bool,
    /// Run the AIC in ITU-T I.432 correction mode: single-bit header
    /// errors are repaired instead of discarded. Off by default to
    /// match the paper's "simply discarded" (§4.3).
    pub hec_correction: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_congrams: 1024,
            reassembly_buffer_cells: 91,
            reassembly_buffers_per_vc: 2,
            reassembly_timeout: SimTime::from_ms(10),
            tx_buffer_octets: 128 * 1024,
            rx_buffer_octets: 128 * 1024,
            npe_fifo_frames: 64,
            spp_fifo_frames: 64,
            npe_control_latency: SimTime::from_us(200),
            forward_errored_frames: false,
            hec_correction: false,
        }
    }
}

impl GatewayConfig {
    /// ICXT table memory in octets: `N × 8` per direction (§6.1).
    pub fn icxt_octets(&self) -> usize {
        self.max_congrams * 8
    }

    /// Reassembly buffer memory in octets across `n_vcs` open
    /// connections (45-octet cell payloads).
    pub fn reassembly_octets(&self, n_vcs: usize) -> usize {
        n_vcs * self.reassembly_buffers_per_vc * self.reassembly_buffer_cells * 45
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GatewayConfig::default();
        assert_eq!(c.reassembly_buffer_cells, 91);
        assert_eq!(c.reassembly_buffers_per_vc, 2);
        assert!(!c.forward_errored_frames);
    }

    #[test]
    fn icxt_is_n_by_8() {
        let c = GatewayConfig { max_congrams: 256, ..Default::default() };
        assert_eq!(c.icxt_octets(), 2048);
    }

    #[test]
    fn reassembly_memory_scales() {
        let c = GatewayConfig::default();
        // One VC: 2 buffers of 91 cells of 45 octets.
        assert_eq!(c.reassembly_octets(1), 2 * 91 * 45);
        assert_eq!(c.reassembly_octets(10), 10 * 2 * 91 * 45);
    }
}
