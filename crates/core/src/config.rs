//! Gateway configuration.
//!
//! "The exact size of these buffers will be determined based on results
//! of an on-going simulation study" (§4.3) — these knobs are exactly
//! what that study (experiment E6) sweeps.

use crate::supervisor::SupervisorConfig;
use gw_sim::time::SimTime;

/// Overload-shedding watermarks as fractions of a buffer memory's
/// capacity. Above `high` the buffer sheds all asynchronous frames;
/// the state clears once occupancy falls back to `low`. CLP-tagged
/// (discard-eligible) frames are shed as soon as occupancy reaches
/// `low` — they go first, synchronous frames never shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedConfig {
    /// Occupancy fraction that enters the shedding state.
    pub high_fraction: f64,
    /// Occupancy fraction that leaves it (and above which
    /// discard-eligible frames are already shed).
    pub low_fraction: f64,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig { high_fraction: 0.85, low_fraction: 0.60 }
    }
}

/// Configuration for one gateway.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Maximum simultaneously open congrams `N`; the ICXT tables are
    /// `N × 8` octets each (§6.1–§6.2).
    pub max_congrams: usize,
    /// Reassembly buffer capacity per buffer, in cells (91 covers the
    /// largest internet frame, §5.3).
    pub reassembly_buffer_cells: usize,
    /// Reassembly buffers per connection (the design uses 2, §5.3).
    pub reassembly_buffers_per_vc: usize,
    /// Default reassembly timeout (NPE-programmed, §5.3).
    pub reassembly_timeout: SimTime,
    /// Transmit buffer memory capacity, octets.
    pub tx_buffer_octets: usize,
    /// Receive buffer memory capacity, octets.
    pub rx_buffer_octets: usize,
    /// NPE FIFO capacity, frames ("primarily depends on the NPE's
    /// processing latency", §6.1).
    pub npe_fifo_frames: usize,
    /// SPP FIFO capacity, frames.
    pub spp_fifo_frames: usize,
    /// NPE software processing time per control message (the
    /// non-critical path, §4.2).
    pub npe_control_latency: SimTime,
    /// Forward reassembly-errored frames instead of discarding (§5.2's
    /// "in future, this decision will be left to the MCHIP layer").
    pub forward_errored_frames: bool,
    /// Run the AIC in ITU-T I.432 correction mode: single-bit header
    /// errors are repaired instead of discarded. Off by default to
    /// match the paper's "simply discarded" (§4.3).
    pub hec_correction: bool,
    /// Setup watchdog / retry / backoff policy for congrams the NPE
    /// establishes through ATM signaling (plesio-reliability, §2.4).
    pub supervisor: SupervisorConfig,
    /// Quarantine a data VC after this much inactivity: its reassembly
    /// state is freed, ICXT entries cleared, and (for congrams this
    /// gateway signaled) re-establishment begins. `None` disables the
    /// liveness monitor.
    pub vc_liveness_timeout: Option<SimTime>,
    /// Overload shedding on the SUPERNET transmit/receive buffer
    /// memories. `None` disables shedding (hard overflow only).
    pub overload_shedding: Option<ShedConfig>,
    /// Management plane (metrics registry, causal tracing, per-port
    /// health) — the NPE's "network management" role (§6). `None`
    /// leaves the critical path completely uninstrumented.
    pub management: Option<gw_mgmt::MgmtConfig>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_congrams: 1024,
            reassembly_buffer_cells: 91,
            reassembly_buffers_per_vc: 2,
            reassembly_timeout: SimTime::from_ms(10),
            tx_buffer_octets: 128 * 1024,
            rx_buffer_octets: 128 * 1024,
            npe_fifo_frames: 64,
            spp_fifo_frames: 64,
            npe_control_latency: SimTime::from_us(200),
            forward_errored_frames: false,
            hec_correction: false,
            supervisor: SupervisorConfig::default(),
            vc_liveness_timeout: None,
            overload_shedding: None,
            management: None,
        }
    }
}

impl GatewayConfig {
    /// ICXT table memory in octets: `N × 8` per direction (§6.1).
    pub fn icxt_octets(&self) -> usize {
        self.max_congrams * 8
    }

    /// Reassembly buffer memory in octets across `n_vcs` open
    /// connections (45-octet cell payloads).
    pub fn reassembly_octets(&self, n_vcs: usize) -> usize {
        n_vcs * self.reassembly_buffers_per_vc * self.reassembly_buffer_cells * 45
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GatewayConfig::default();
        assert_eq!(c.reassembly_buffer_cells, 91);
        assert_eq!(c.reassembly_buffers_per_vc, 2);
        assert!(!c.forward_errored_frames);
    }

    #[test]
    fn icxt_is_n_by_8() {
        let c = GatewayConfig { max_congrams: 256, ..Default::default() };
        assert_eq!(c.icxt_octets(), 2048);
    }

    #[test]
    fn robustness_features_default_to_safe_values() {
        let c = GatewayConfig::default();
        assert!(c.vc_liveness_timeout.is_none(), "liveness is opt-in");
        assert!(c.overload_shedding.is_none(), "shedding is opt-in");
        assert!(c.management.is_none(), "management plane is opt-in");
        assert!(c.supervisor.retry_budget > 0, "signaled setups retry by default");
        let s = ShedConfig::default();
        assert!(s.low_fraction < s.high_fraction);
    }

    #[test]
    fn reassembly_memory_scales() {
        let c = GatewayConfig::default();
        // One VC: 2 buffers of 91 cells of 45 octets.
        assert_eq!(c.reassembly_octets(1), 2 * 91 * 45);
        assert_eq!(c.reassembly_octets(10), 10 * 2 * 91 * 45);
    }
}
