//! The ATM-FDDI gateway — the paper's primary contribution (§4–§6).
//!
//! A two-port gateway interconnecting an ATM (BPN) network and an FDDI
//! ring, implementing the VHSI philosophy: **the critical path (per
//! packet processing) in hardware, the non-critical path (connection,
//! resource, and route management) in software** (§1, §4.2).
//!
//! The hardware blocks of Figure 4, each a module here:
//!
//! * [`aic`] — ATM Interface Chip: cell synchronization to the 40 ns
//!   packet cycle, HEC check inbound (errored headers discarded), HEC
//!   generation outbound.
//! * [`spp`] — SAR Protocol Processor: two cycle-accurate pipelines.
//!   ATM→FDDI: Header Decoder → Reassembly Logic → CRC Logic →
//!   Interface Logic → Reassembly Buffer, with per-VC state and two
//!   buffers per connection. FDDI→ATM: FIFO Interface → Fragmentation
//!   Logic → CRC Generator, headers stamped on the fly (§5).
//! * [`mpp`] — MCHIP Protocol Processor: frame-type decode (2 cycles),
//!   ICN translation through the N×8-octet ICXT-F and ICXT-A lookup
//!   tables (13-cycle read), FDDI Header Builder with the fixed-header
//!   register, NPE FIFOs, and DMA to the SUPERNET buffers (§6).
//! * [`npe`] — Node Processing Element: the software control path —
//!   MCHIP congram management, resource management for the FDDI ring,
//!   chip initialization (ICXT programming, reassembly-timer setup,
//!   fixed-header register), and signaling relay (§4.3).
//! * [`buffers`] — the three buffer memories (reassembly, transmit,
//!   receive) with occupancy accounting, and [`fifo`] — the three FIFO
//!   sets of Figure 4.
//! * [`gateway`] — the assembled two-port gateway with measured
//!   per-stage latencies (the quantities §5.5 and §6.3 estimate).
//! * [`multiport`] — the multi-port scaling the conclusion (§7) lists
//!   as work in progress.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod aic;
pub mod buffers;
pub mod config;
pub mod fifo;
pub mod gateway;
pub mod mpp;
pub mod multiport;
pub mod npe;
pub mod shard;
pub mod snapshot;
pub mod spp;
pub mod supervisor;

pub use config::GatewayConfig;
pub use gateway::{Gateway, GatewayStats, Output};
pub use mpp::{IcxtAEntry, IcxtFEntry, Mpp};
pub use npe::Npe;
pub use shard::{AnyGateway, ShardExecutor, ShardedGateway};
pub use spp::Spp;
pub use supervisor::{backoff_delay, ConnectionSupervisor, SupervisorConfig};

/// Gateway clock rate: 25 MHz (§5.5, §6.3).
pub const CLOCK_HZ: u64 = 25_000_000;
/// One clock cycle: 40 ns.
pub const CYCLE_NS: u64 = 40;

/// Worst-case SPP reassembly pipeline latch+decode delay, in cycles:
/// "It takes 10 clock cycles (400ns) to latch, decode the cell header,
/// and start generating the write addresses" (§5.5).
pub const SPP_DECODE_CYCLES: u64 = 10;
/// SPP payload write: "the 45-byte payload is written into the
/// reassembly buffer in 45 cycles" (§5.5).
pub const SPP_WRITE_CYCLES: u64 = 45;
/// MPP frame-type decode and routing decision: "2 clock cycles (80ns)"
/// (§6.3).
pub const MPP_DECODE_CYCLES: u64 = 2;
/// MPP ICXT read access: "approximately 13 clock cycles (520ns)" (§6.3).
pub const MPP_ICXT_CYCLES: u64 = 13;
