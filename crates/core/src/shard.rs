// gw-lint: critical-path
//! The sharded cell path: N per-VC SAR shards behind lock-free SPSC
//! rings (§7's multi-processing direction applied to the SPP).
//!
//! The single-threaded [`Gateway`] runs the cell pipeline AIC →
//! classify → SAR → merge on one thread. [`ShardedGateway`] cuts that
//! pipeline at the SAR stage:
//!
//! * **classify** (caller thread) — HEC check, header parse, policing,
//!   and the SPP ingest clock, in global arrival order
//!   (`Gateway::classify_cell` + `Gateway::clock_sar_cell`);
//! * **SAR shards** (one `ShardCore` per shard) — each shard
//!   exclusively owns the reassembly state of the VCs hashed to it
//!   ([`shard_index`]), so there is no cross-shard sharing and no
//!   locking anywhere on the cell path: cells travel one way through a
//!   [`gw_ring`] SPSC job ring, verdicts come back through a reply
//!   ring;
//! * **merge** (caller thread) — frame-level consequences applied in
//!   strict global cell order (`Gateway::merge_cell`), so outputs,
//!   counters, traces, and snapshots are bit-identical to the
//!   single-threaded gateway.
//!
//! Because each VC's cells all land on one shard in arrival order, and
//! the merge stage replays verdicts in global order, the observable
//! behavior is deterministic and independent of the shard count — the
//! chaos harness byte-compares `shards=1` against `shards=4` snapshots
//! to enforce exactly that.
//!
//! Control frames can reprogram VC tables (NPE `ProgramSpp` /
//! teardown), so a cell whose SAR header carries the control bit acts
//! as a barrier: in-flight work drains, the control cell merges (its
//! NPE actions journal VC operations via `SarOp`), and the journal is
//! forwarded to the owning shards before any later cell is classified.

use crate::config::GatewayConfig;
use crate::gateway::{ClassifiedCell, Gateway, Output};
use crate::spp::IngestTiming;
use gw_mchip::congram::CongramId;
use gw_mgmt::Json;
use gw_ring::{ring, Consumer, Producer};
use gw_sar::reassemble::{
    ReassembledFrame, Reassembler, ReassemblyConfig, ReassemblyEvent, ReassemblyStats,
};
use gw_sim::time::SimTime;
use gw_wire::atm::{Vci, CELL_SIZE};
use gw_wire::fddi::FddiAddr;
use gw_wire::mchip::Icn;
use gw_wire::pool::PoolStats;
use std::collections::VecDeque;

pub mod protocol {
    //! The shard hand-off discipline as pure constants and predicates
    //! — the single source the shipping pipeline and `gw-model`'s
    //! barrier scenarios (`tests/shard_model.rs`) both compile
    //! against, the same seam `gw_ring::protocol` provides for the
    //! ring (DESIGN.md §14).

    /// Job/reply ring capacity per shard. Must comfortably exceed
    /// [`PENDING_MAX`] plus the recycle/op traffic riding along so the
    /// reply rings never fill and the cell path never blocks a worker.
    pub const RING_CAPACITY: usize = 4096;

    /// In-flight cell window before the merge stage drains
    /// synchronously — bounds memory and keeps every ring far from
    /// capacity.
    pub const PENDING_MAX: usize = 1024;

    // Deadlock freedom: the merge stage stops feeding and drains once
    // PENDING_MAX cells are in flight, so a job ring can never be
    // asked to hold more than PENDING_MAX cells plus the aux traffic
    // bounded by the drained window. If this inequality broke, a full
    // job ring could wedge against a full reply ring.
    const _: () = assert!(PENDING_MAX < RING_CAPACITY);

    /// Whether a classified cell's SAR header carries the control bit.
    ///
    /// SAR header word is `info[0..3]` = seq\[10\] | unused\[2\] | F |
    /// C | crc10\[10\]; the control bit is bit 10 of that 24-bit word,
    /// i.e. bit 2 of the middle octet. Peeked without CRC check —
    /// conservatively serializing on a corrupted control bit costs a
    /// drain, never correctness.
    pub fn control_bit(info: &[u8; 48]) -> bool {
        (info[1] >> 2) & 1 == 1
    }

    /// Whether the merge stage must fully drain (and forward the VC-op
    /// journal) before classifying the next cell: at a control barrier
    /// or when the in-flight window is full.
    pub fn barrier_before_next(control: bool, pending: usize) -> bool {
        control || pending >= PENDING_MAX
    }
}

/// One VC-table mutation journaled by the inner gateway (at its
/// `open_vc`/`close_vc` sites) for replay into the owning shard's
/// reassembler. The journal keeps the shards' VC tables in lockstep
/// with the control plane without the control plane knowing about
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SarOp {
    /// Open a VC with the connection's reassembly timeout.
    Open {
        /// The VC being opened.
        vci: Vci,
        /// Its reassembly (partial-frame flush) timeout.
        timeout: SimTime,
    },
    /// Close a VC (teardown or liveness quarantine).
    Close {
        /// The VC being closed.
        vci: Vci,
    },
}

impl SarOp {
    fn vci(&self) -> Vci {
        match self {
            SarOp::Open { vci, .. } | SarOp::Close { vci } => *vci,
        }
    }
}

/// Aggregated SAR-side state summed over every shard, substituted for
/// the inner SPP's reassembler in conservation checks, residue audits,
/// deadlines, and snapshots. Refreshed by [`ShardedGateway::sync`] (and
/// at the end of every mutating wrapper call), so reads through the
/// inner [`Gateway`] are always globally consistent.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SarOverlay {
    /// Field-wise sum of every shard's [`ReassemblyStats`].
    pub(crate) reassembly: ReassemblyStats,
    /// Total cells held in reassembly buffers across shards.
    pub(crate) occupancy_cells: usize,
    /// Total buffers resident in shard VC tables.
    pub(crate) resident_buffers: usize,
    /// Earliest armed reassembly deadline across shards.
    pub(crate) next_deadline: Option<SimTime>,
    /// Field-wise sum of every shard's pool counters.
    pub(crate) pool: PoolStats,
}

impl SarOverlay {
    fn absorb(&mut self, r: &ShardReport) {
        let a = &mut self.reassembly;
        let b = &r.reassembly;
        a.cells_stored += b.cells_stored;
        a.frames_complete += b.frames_complete;
        a.crc_drops += b.crc_drops;
        a.seq_errors += b.seq_errors;
        a.seq_misinserts += b.seq_misinserts;
        a.frames_discarded += b.frames_discarded;
        a.timeouts += b.timeouts;
        a.no_buffer_drops += b.no_buffer_drops;
        a.overflow_drops += b.overflow_drops;
        a.unknown_vc_drops += b.unknown_vc_drops;
        a.cells_completed += b.cells_completed;
        a.cells_discarded += b.cells_discarded;
        a.cells_flushed += b.cells_flushed;
        a.cells_closed += b.cells_closed;
        self.occupancy_cells += r.occupancy_cells;
        self.resident_buffers += r.resident_buffers;
        self.next_deadline = match (self.next_deadline, r.next_deadline) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        };
        self.pool.hits += r.pool.hits;
        self.pool.misses += r.pool.misses;
        self.pool.returns += r.pool.returns;
        self.pool.discards += r.pool.discards;
    }
}

/// A unit of work traveling ingress → shard through the job ring.
#[derive(Debug)]
enum ShardJob {
    /// One classified cell for a VC this shard owns, stamped with its
    /// SPP decode-done time (the reassembly clock already ran on the
    /// ingress thread, in global order).
    Cell { decode_done: SimTime, vci: Vci, info: [u8; 48] },
    /// Replayed VC-table mutation.
    Op(SarOp),
    /// A frame buffer coming home to this shard's pool after the merge
    /// stage forwarded the frame.
    Recycle(Vec<u8>),
    /// Run the reassembly timers up to `now` and reply with the flushed
    /// partial frames.
    Flush { now: SimTime },
    /// Reply with a state report for the overlay.
    Sync,
    /// Exit the worker loop (threads executor only).
    Shutdown,
}

/// A shard's answer traveling shard → merge through the reply ring.
#[derive(Debug)]
enum ShardReply {
    /// Verdict for one `ShardJob::Cell`, in that shard's FIFO order.
    Cell(ReassemblyEvent),
    /// Partial frames flushed by a `ShardJob::Flush`.
    Flushed(Vec<ReassembledFrame>),
    /// State report answering a `ShardJob::Sync`.
    Synced(ShardReport),
}

/// Point-in-time state of one shard, summed into [`SarOverlay`].
#[derive(Debug, Clone, Copy)]
struct ShardReport {
    reassembly: ReassemblyStats,
    occupancy_cells: usize,
    resident_buffers: usize,
    next_deadline: Option<SimTime>,
    pool: PoolStats,
}

/// One SAR shard: a plain [`Reassembler`] exclusively owning the
/// reassembly state (VC table, buffers, pool, timers) of the VCs hashed
/// to it. No shared state, no locks — the owning thread is the only
/// toucher.
#[derive(Debug)]
struct ShardCore {
    reassembler: Reassembler,
}

impl ShardCore {
    /// Run one job; `false` means `Shutdown` and the loop should exit.
    fn run_job(&mut self, job: ShardJob, replies: &mut Producer<ShardReply>) -> bool {
        match job {
            ShardJob::Cell { decode_done, vci, info } => {
                let event = self.reassembler.push(decode_done, vci, &info);
                if matches!(event, ReassemblyEvent::Complete(_)) {
                    // Release immediately so the next cell on this VC —
                    // possibly already queued behind this one — sees the
                    // same slot state it would on the single-threaded
                    // path, where release happens before the next cell.
                    self.reassembler.release(vci);
                }
                push_reply(replies, ShardReply::Cell(event));
            }
            ShardJob::Op(SarOp::Open { vci, timeout }) => {
                self.reassembler.open_vc_with_timeout(vci, timeout);
            }
            ShardJob::Op(SarOp::Close { vci }) => {
                self.reassembler.close_vc(vci);
            }
            ShardJob::Recycle(data) => self.reassembler.recycle(data),
            ShardJob::Flush { now } => {
                push_reply(replies, ShardReply::Flushed(self.reassembler.check_timeouts(now)));
            }
            ShardJob::Sync => {
                push_reply(replies, ShardReply::Synced(self.report()));
            }
            ShardJob::Shutdown => return false,
        }
        true
    }

    fn report(&self) -> ShardReport {
        ShardReport {
            reassembly: self.reassembler.stats(),
            occupancy_cells: self.reassembler.occupancy_cells(),
            resident_buffers: self.reassembler.resident_buffers(),
            next_deadline: self.reassembler.next_deadline(),
            pool: self.reassembler.pool_stats(),
        }
    }
}

/// Push a reply, yielding until the ring has room. The reply ring can
/// only approach capacity if the merge stage stops draining, which the
/// [`protocol::PENDING_MAX`] window prevents; the loop is a safety
/// net, not a steady state.
fn push_reply(replies: &mut Producer<ShardReply>, reply: ShardReply) {
    let mut reply = reply;
    loop {
        match replies.push(reply) {
            Ok(()) => return,
            Err(r) => {
                reply = r;
                std::thread::yield_now();
            }
        }
    }
}

/// Batch size per worker drain sweep: enough to amortise the head
/// publish across a burst, small enough that replies start flowing
/// (and the merge stage can make progress) before a long backlog is
/// fully consumed.
const WORKER_BATCH: usize = 64;

/// Worker-thread body for the threads executor: drain in batches
/// (one head publish per sweep instead of per job), repeat until
/// `Shutdown`.
fn worker_loop(
    mut core: ShardCore,
    mut jobs: Consumer<ShardJob>,
    mut replies: Producer<ShardReply>,
) {
    let mut running = true;
    while running {
        let taken = jobs.pop_batch(WORKER_BATCH, |job| {
            // Jobs behind a Shutdown in the same sweep are dropped
            // unrun — identical to the teardown drop of a quit loop.
            if running && !core.run_job(job, &mut replies) {
                running = false;
            }
        });
        if running && taken == 0 {
            std::thread::yield_now();
        }
    }
}

/// Where the shard cores execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardExecutor {
    /// Run every shard core on the caller's thread. Jobs and replies
    /// still flow through the SPSC rings, so the code path (and
    /// therefore the observable behavior) is identical to the threaded
    /// arrangement — this is what determinism tests and single-core
    /// hosts use.
    Inline,
    /// One dedicated worker thread per shard — the scaling
    /// configuration.
    Threads,
}

/// A shard core executing on the caller's thread: the consumer end of
/// its job ring and the producer end of its reply ring stay local and
/// are pumped after every enqueue.
#[derive(Debug)]
struct InlineCore {
    core: ShardCore,
    jobs: Consumer<ShardJob>,
    replies: Producer<ShardReply>,
}

/// The caller-side view of one shard.
#[derive(Debug)]
struct Lane {
    jobs: Producer<ShardJob>,
    replies: Consumer<ShardReply>,
    inline_core: Option<InlineCore>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// Drain an inline lane's job ring through its core — one batch sweep,
/// one head publish. No-op for a threaded lane.
fn pump_lane(lane: &mut Lane) {
    let Some(ic) = lane.inline_core.as_mut() else { return };
    let InlineCore { core, jobs, replies } = ic;
    jobs.pop_batch(usize::MAX, |job| {
        let _ = core.run_job(job, replies);
    });
}

/// One classified cell awaiting its shard's verdict; merged in strict
/// global arrival order.
#[derive(Debug)]
struct Pending {
    c: ClassifiedCell,
    timing: IngestTiming,
    shard: usize,
}

/// Deterministic VCI→shard steering (Fibonacci hash, then modulo).
/// Every cell of a VC lands on the same shard, so each shard
/// exclusively owns its VCs' reassembly state.
pub fn shard_index(vci: Vci, shards: usize) -> usize {
    (((vci.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
}

/// The multi-core gateway: a [`Gateway`] whose SAR stage is partitioned
/// across N shards behind lock-free SPSC rings (see the module docs for
/// the pipeline cut). Drives bit-identical observable behavior to the
/// single-threaded gateway at any shard count; `shards = 1` with the
/// inline executor is the single-threaded pipeline with a ring in the
/// middle.
///
/// Setup-time programming that is not wrapped here (NPE host table,
/// rate control, trace enablement) goes through
/// [`ShardedGateway::inner_mut`]; call [`ShardedGateway::sync`]
/// afterwards if the call can touch VC state. Never drive the data path
/// (`deliver_cells`/`advance`) through `inner_mut` — that would bypass
/// the shards.
pub struct ShardedGateway {
    inner: Gateway,
    lanes: Vec<Lane>,
    pending: VecDeque<Pending>,
    flush_scratch: Vec<ReassembledFrame>,
}

impl ShardedGateway {
    /// Build a gateway with `shards` SAR shards (clamped to at least 1)
    /// on the given executor.
    // gw-lint: setup-path — fleet construction: rings, shard reassemblers, and workers are sized once
    pub fn new(
        config: GatewayConfig,
        fddi_addr: FddiAddr,
        fddi_capacity_bps: u64,
        shards: usize,
        executor: ShardExecutor,
    ) -> ShardedGateway {
        let shards = shards.max(1);
        let reasm = ReassemblyConfig {
            buffer_cells: config.reassembly_buffer_cells,
            buffers_per_vc: config.reassembly_buffers_per_vc,
            timeout: config.reassembly_timeout,
            forward_errored_frames: config.forward_errored_frames,
        };
        let mut inner = Gateway::new(config, fddi_addr, fddi_capacity_bps);
        // Power-up NPE actions ran before the journal existed, but they
        // program the fixed header register only — no VC state to miss.
        inner.sar_ops = Some(Vec::new());
        let mut lanes = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (jobs_tx, jobs_rx) = ring(protocol::RING_CAPACITY);
            let (replies_tx, replies_rx) = ring(protocol::RING_CAPACITY);
            let core = ShardCore { reassembler: Reassembler::new(reasm) };
            let (inline_core, worker) = match executor {
                ShardExecutor::Inline => {
                    (Some(InlineCore { core, jobs: jobs_rx, replies: replies_tx }), None)
                }
                ShardExecutor::Threads => {
                    (None, Some(std::thread::spawn(move || worker_loop(core, jobs_rx, replies_tx))))
                }
            };
            lanes.push(Lane { jobs: jobs_tx, replies: replies_rx, inline_core, worker });
        }
        let mut gw = ShardedGateway {
            inner,
            lanes,
            pending: VecDeque::with_capacity(protocol::PENDING_MAX),
            flush_scratch: Vec::new(),
        };
        gw.sync();
        gw
    }

    /// Number of SAR shards.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Read access to the wrapped gateway — counters, stats, config,
    /// buffers. Call [`ShardedGateway::sync`] first when global
    /// consistency matters (it always does after in-flight work).
    pub fn inner(&self) -> &Gateway {
        &self.inner
    }

    /// Mutable access for setup-time programming only (see the type
    /// docs). Data-path calls through this handle bypass the shards.
    pub fn inner_mut(&mut self) -> &mut Gateway {
        &mut self.inner
    }

    fn shard_of(&self, vci: Vci) -> usize {
        shard_index(vci, self.lanes.len())
    }

    /// Feed a batch of cells arriving at `now`, appending outputs to
    /// `out` — the line-rate entry point, mirroring
    /// [`Gateway::deliver_cells`]. Fully drains before returning, so
    /// outputs, counters, and traces are complete and in canonical
    /// order when this returns.
    pub fn deliver_cells(
        &mut self,
        now: SimTime,
        cells: &[[u8; CELL_SIZE]],
        out: &mut Vec<Output>,
    ) {
        for cell in cells {
            self.cell_in(now, cell, out);
        }
        self.drain(out);
        self.forward_ops();
        self.refresh_overlay();
    }

    fn cell_in(&mut self, now: SimTime, cell: &[u8; CELL_SIZE], out: &mut Vec<Output>) {
        let Some(c) = self.inner.classify_cell(now, cell) else { return };
        let timing = self.inner.clock_sar_cell(c.aligned);
        let shard = self.shard_of(c.vci);
        let control = protocol::control_bit(&c.info);
        self.push_cell_job(
            shard,
            ShardJob::Cell { decode_done: timing.decode_done, vci: c.vci, info: c.info },
            out,
        );
        self.pending.push_back(Pending { c, timing, shard });
        if protocol::barrier_before_next(control, self.pending.len()) {
            // Control barrier: a completing control frame can reprogram
            // VC tables, so everything up to and including this cell
            // merges — and the journaled VC ops reach their shards —
            // before any later cell is classified.
            self.drain(out);
            self.forward_ops();
        } else {
            self.merge_ready(out);
        }
    }

    /// Push a cell job, making merge progress while the ring is full.
    fn push_cell_job(&mut self, shard: usize, job: ShardJob, out: &mut Vec<Output>) {
        let mut job = job;
        loop {
            match self.lanes[shard].jobs.push(job) {
                Ok(()) => break,
                Err(j) => {
                    job = j;
                    self.merge_one_blocking(out);
                }
            }
        }
        pump_lane(&mut self.lanes[shard]);
    }

    /// Push a non-cell job (op/recycle/flush/sync), yielding while the
    /// ring is full. These are only pushed when the pending window is
    /// empty or shrinking, so the worker can always drain.
    fn push_aux(&mut self, shard: usize, job: ShardJob) {
        let mut job = job;
        loop {
            match self.lanes[shard].jobs.push(job) {
                Ok(()) => break,
                Err(j) => {
                    job = j;
                    pump_lane(&mut self.lanes[shard]);
                    std::thread::yield_now();
                }
            }
        }
        pump_lane(&mut self.lanes[shard]);
    }

    /// Merge every reply that is already available, in global order.
    fn merge_ready(&mut self, out: &mut Vec<Output>) {
        loop {
            let Some(front) = self.pending.front() else { return };
            let shard = front.shard;
            pump_lane(&mut self.lanes[shard]);
            let Some(reply) = self.lanes[shard].replies.pop() else { return };
            self.merge_reply(reply, out);
        }
    }

    /// Merge (or wait for) exactly one in-flight cell.
    fn merge_one_blocking(&mut self, out: &mut Vec<Output>) {
        let Some(front) = self.pending.front() else {
            std::thread::yield_now();
            return;
        };
        let shard = front.shard;
        pump_lane(&mut self.lanes[shard]);
        match self.lanes[shard].replies.pop() {
            Some(reply) => self.merge_reply(reply, out),
            None => std::thread::yield_now(),
        }
    }

    /// Block until every in-flight cell has merged.
    fn drain(&mut self, out: &mut Vec<Output>) {
        while !self.pending.is_empty() {
            self.merge_one_blocking(out);
        }
    }

    fn merge_reply(&mut self, reply: ShardReply, out: &mut Vec<Output>) {
        let Some(p) = self.pending.pop_front() else { return };
        debug_assert!(matches!(reply, ShardReply::Cell(_)), "cell reply expected in order");
        let ShardReply::Cell(event) = reply else { return };
        if let Some(data) = self.inner.merge_cell(&p.c, p.timing, event, true, out) {
            // The completed frame's buffer goes home to its shard.
            self.push_aux(p.shard, ShardJob::Recycle(data));
        }
    }

    /// Forward journaled VC-table mutations to their owning shards.
    fn forward_ops(&mut self) {
        let Some(mut ops) = self.inner.sar_ops.take() else { return };
        for op in ops.drain(..) {
            let shard = self.shard_of(op.vci());
            self.push_aux(shard, ShardJob::Op(op));
        }
        self.inner.sar_ops = Some(ops);
    }

    /// Wait for the next reply from one shard.
    fn wait_reply(&mut self, shard: usize) -> ShardReply {
        loop {
            pump_lane(&mut self.lanes[shard]);
            if let Some(r) = self.lanes[shard].replies.pop() {
                return r;
            }
            std::thread::yield_now();
        }
    }

    /// Re-aggregate shard state into the inner gateway's overlay.
    fn refresh_overlay(&mut self) {
        debug_assert!(self.pending.is_empty(), "overlay refresh with cells in flight");
        for i in 0..self.lanes.len() {
            self.push_aux(i, ShardJob::Sync);
        }
        let mut overlay = SarOverlay::default();
        for i in 0..self.lanes.len() {
            if let ShardReply::Synced(report) = self.wait_reply(i) {
                overlay.absorb(&report);
            }
        }
        self.inner.sar_overlay = Some(overlay);
    }

    /// Drain in-flight work, forward journaled VC ops, and refresh the
    /// aggregated overlay — after this, snapshots, conservation checks,
    /// and residue audits through [`ShardedGateway::inner`] are
    /// globally consistent. Call after any [`ShardedGateway::inner_mut`]
    /// programming that can touch VC state.
    pub fn sync(&mut self) {
        debug_assert!(self.pending.is_empty(), "sync with cells in flight");
        self.forward_ops();
        self.refresh_overlay();
    }

    /// Run housekeeping up to `now`, mirroring [`Gateway::advance_into`]:
    /// the shards flush their reassembly timers, the flushed partials
    /// merge in canonical (VCI-sorted) order, then VC liveness, NPE
    /// scans, and gauges run on the inner gateway.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<Output>) {
        self.drain(out);
        self.forward_ops();
        for i in 0..self.lanes.len() {
            self.push_aux(i, ShardJob::Flush { now });
        }
        let mut frames = std::mem::take(&mut self.flush_scratch);
        frames.clear();
        for i in 0..self.lanes.len() {
            if let ShardReply::Flushed(mut fs) = self.wait_reply(i) {
                frames.append(&mut fs);
            }
        }
        // Canonical flush order: `Reassembler::check_timeouts` reports
        // VCI-sorted (at most one flush per VC per call), so the global
        // sort reproduces the single-threaded sequence exactly.
        frames.sort_unstable_by_key(|f| f.vci.0);
        for frame in frames.drain(..) {
            let vci = frame.vci;
            if let Some(data) = self.inner.merge_flush(now, frame, true, out) {
                let shard = self.shard_of(vci);
                self.push_aux(shard, ShardJob::Recycle(data));
            }
        }
        self.flush_scratch = frames;
        self.inner.advance_housekeeping(now, out);
        self.forward_ops();
        self.refresh_overlay();
    }

    /// [`ShardedGateway::advance_into`] allocating its return buffer.
    // gw-lint: setup-path — convenience wrapper allocating its return buffer; the line-rate path is advance_into
    pub fn advance(&mut self, now: SimTime) -> Vec<Output> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Feed one cell, mirroring [`Gateway::atm_cell_in`].
    // gw-lint: setup-path — single-cell convenience entry allocating its return buffer; the line-rate path is deliver_cells
    pub fn atm_cell_in(&mut self, now: SimTime, cell: &[u8; CELL_SIZE]) -> Vec<Output> {
        let mut out = Vec::new();
        self.deliver_cells(now, core::slice::from_ref(cell), &mut out);
        out
    }

    /// Feed one frame arriving from the FDDI ring (control frames can
    /// reprogram VC tables, hence the sync).
    // gw-lint: setup-path — per-frame entry; bounded by ring frame rate, not cell rate
    pub fn fddi_frame_in(&mut self, now: SimTime, frame_bytes: &[u8]) -> Vec<Output> {
        let out = self.inner.fddi_frame_in(now, frame_bytes);
        self.sync();
        out
    }

    /// Directly install a bidirectional data congram — see
    /// [`Gateway::install_congram`].
    // gw-lint: setup-path — congram programming runs once per connection, not per cell
    pub fn install_congram(
        &mut self,
        atm_vci: Vci,
        atm_icn: Icn,
        fddi_icn: Icn,
        fddi_dst: FddiAddr,
        synchronous: bool,
    ) {
        self.inner.install_congram(atm_vci, atm_icn, fddi_icn, fddi_dst, synchronous);
        self.sync();
    }

    /// Open a control VC for reassembly — see
    /// [`Gateway::open_control_vc`].
    // gw-lint: setup-path — control-channel programming, once per channel
    pub fn open_control_vc(&mut self, vci: Vci) {
        self.inner.open_control_vc(vci);
        self.sync();
    }

    /// Complete an NPE-requested ATM connection — see
    /// [`Gateway::atm_connection_ready`].
    // gw-lint: setup-path — signaling completion, once per connection
    pub fn atm_connection_ready(
        &mut self,
        now: SimTime,
        congram: CongramId,
        vci: Vci,
    ) -> Vec<Output> {
        let out = self.inner.atm_connection_ready(now, congram, vci);
        self.sync();
        out
    }

    /// Fail an NPE-requested ATM connection — see
    /// [`Gateway::atm_connection_failed`].
    // gw-lint: setup-path — signaling failure, once per connection attempt
    pub fn atm_connection_failed(&mut self, now: SimTime, congram: CongramId) -> Vec<Output> {
        let out = self.inner.atm_connection_failed(now, congram);
        self.sync();
        out
    }

    /// Drain one frame toward the SUPERNET — see
    /// [`Gateway::pop_fddi_tx`].
    pub fn pop_fddi_tx(&mut self, now: SimTime) -> Option<(Vec<u8>, bool)> {
        self.inner.pop_fddi_tx(now)
    }

    /// Return a transmitted frame to the staging pool — see
    /// [`Gateway::recycle_frame`].
    pub fn recycle_frame(&mut self, frame: Vec<u8>) {
        self.inner.recycle_frame(frame);
    }

    /// Frames waiting in the transmit buffer.
    pub fn fddi_tx_pending(&self) -> usize {
        self.inner.fddi_tx_pending()
    }

    /// The earliest time [`ShardedGateway::advance`] has work to do.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }

    /// The management snapshot, aggregated across shards — same
    /// `gw-snapshot/1` document, byte-identical at any shard count.
    pub fn snapshot(&mut self, now: SimTime) -> Json {
        self.sync();
        self.inner.snapshot(now)
    }
}

impl Drop for ShardedGateway {
    fn drop(&mut self) {
        for lane in &mut self.lanes {
            if lane.worker.is_some() {
                let mut job = ShardJob::Shutdown;
                loop {
                    match lane.jobs.push(job) {
                        Ok(()) => break,
                        Err(j) => {
                            job = j;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            if let Some(w) = lane.worker.take() {
                let _ = w.join();
            }
        }
    }
}

impl std::fmt::Debug for ShardedGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGateway")
            .field("shards", &self.lanes.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

/// Either gateway arrangement behind one driver-facing surface, so
/// harnesses (bench, chaos, testbed, `gwd`) select the shard count at
/// configuration time and drive one type.
#[derive(Debug)]
pub enum AnyGateway {
    /// The classic single-threaded pipeline.
    Single(Gateway),
    /// The sharded pipeline (any shard count, either executor).
    Sharded(ShardedGateway),
}

impl AnyGateway {
    /// Build the arrangement for `shards`: 0 or 1 shard means the
    /// single-threaded gateway (bit-for-bit the pre-sharding behavior,
    /// no rings involved); more means a sharded gateway on `executor`.
    // gw-lint: setup-path — arrangement selection at configuration time
    pub fn build(
        config: GatewayConfig,
        fddi_addr: FddiAddr,
        fddi_capacity_bps: u64,
        shards: usize,
        executor: ShardExecutor,
    ) -> AnyGateway {
        if shards <= 1 {
            AnyGateway::Single(Gateway::new(config, fddi_addr, fddi_capacity_bps))
        } else {
            AnyGateway::Sharded(ShardedGateway::new(
                config,
                fddi_addr,
                fddi_capacity_bps,
                shards,
                executor,
            ))
        }
    }

    /// Shard count in force (1 for the single arrangement).
    pub fn shards(&self) -> usize {
        match self {
            AnyGateway::Single(_) => 1,
            AnyGateway::Sharded(s) => s.shards(),
        }
    }

    /// Feed a batch of cells — see [`Gateway::deliver_cells`].
    pub fn deliver_cells(
        &mut self,
        now: SimTime,
        cells: &[[u8; CELL_SIZE]],
        out: &mut Vec<Output>,
    ) {
        match self {
            AnyGateway::Single(g) => g.deliver_cells(now, cells, out),
            AnyGateway::Sharded(s) => s.deliver_cells(now, cells, out),
        }
    }

    /// Run housekeeping — see [`Gateway::advance_into`].
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<Output>) {
        match self {
            AnyGateway::Single(g) => g.advance_into(now, out),
            AnyGateway::Sharded(s) => s.advance_into(now, out),
        }
    }

    /// Feed one FDDI frame — see [`Gateway::fddi_frame_in`].
    // gw-lint: setup-path — per-frame entry allocating its return buffer
    pub fn fddi_frame_in(&mut self, now: SimTime, frame_bytes: &[u8]) -> Vec<Output> {
        match self {
            AnyGateway::Single(g) => g.fddi_frame_in(now, frame_bytes),
            AnyGateway::Sharded(s) => s.fddi_frame_in(now, frame_bytes),
        }
    }

    /// Install a data congram — see [`Gateway::install_congram`].
    // gw-lint: setup-path — congram programming, once per connection
    pub fn install_congram(
        &mut self,
        atm_vci: Vci,
        atm_icn: Icn,
        fddi_icn: Icn,
        fddi_dst: FddiAddr,
        synchronous: bool,
    ) {
        match self {
            AnyGateway::Single(g) => {
                g.install_congram(atm_vci, atm_icn, fddi_icn, fddi_dst, synchronous)
            }
            AnyGateway::Sharded(s) => {
                s.install_congram(atm_vci, atm_icn, fddi_icn, fddi_dst, synchronous)
            }
        }
    }

    /// Open a control VC — see [`Gateway::open_control_vc`].
    // gw-lint: setup-path — control-channel programming, once per channel
    pub fn open_control_vc(&mut self, vci: Vci) {
        match self {
            AnyGateway::Single(g) => g.open_control_vc(vci),
            AnyGateway::Sharded(s) => s.open_control_vc(vci),
        }
    }

    /// Complete signaling — see [`Gateway::atm_connection_ready`].
    // gw-lint: setup-path — signaling completion, once per connection
    pub fn atm_connection_ready(
        &mut self,
        now: SimTime,
        congram: CongramId,
        vci: Vci,
    ) -> Vec<Output> {
        match self {
            AnyGateway::Single(g) => g.atm_connection_ready(now, congram, vci),
            AnyGateway::Sharded(s) => s.atm_connection_ready(now, congram, vci),
        }
    }

    /// Fail signaling — see [`Gateway::atm_connection_failed`].
    // gw-lint: setup-path — signaling failure, once per connection attempt
    pub fn atm_connection_failed(&mut self, now: SimTime, congram: CongramId) -> Vec<Output> {
        match self {
            AnyGateway::Single(g) => g.atm_connection_failed(now, congram),
            AnyGateway::Sharded(s) => s.atm_connection_failed(now, congram),
        }
    }

    /// Drain one frame toward the SUPERNET — see
    /// [`Gateway::pop_fddi_tx`].
    pub fn pop_fddi_tx(&mut self, now: SimTime) -> Option<(Vec<u8>, bool)> {
        match self {
            AnyGateway::Single(g) => g.pop_fddi_tx(now),
            AnyGateway::Sharded(s) => s.pop_fddi_tx(now),
        }
    }

    /// Return a transmitted frame to the staging pool.
    pub fn recycle_frame(&mut self, frame: Vec<u8>) {
        match self {
            AnyGateway::Single(g) => g.recycle_frame(frame),
            AnyGateway::Sharded(s) => s.recycle_frame(frame),
        }
    }

    /// Frames waiting in the transmit buffer.
    pub fn fddi_tx_pending(&self) -> usize {
        match self {
            AnyGateway::Single(g) => g.fddi_tx_pending(),
            AnyGateway::Sharded(s) => s.fddi_tx_pending(),
        }
    }

    /// The earliest time `advance` has work to do.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match self {
            AnyGateway::Single(g) => g.next_deadline(),
            AnyGateway::Sharded(s) => s.next_deadline(),
        }
    }

    /// Make reads through [`AnyGateway::gateway`] globally consistent
    /// (drains and re-aggregates the sharded arrangement; no-op for the
    /// single one).
    pub fn sync(&mut self) {
        if let AnyGateway::Sharded(s) = self {
            s.sync();
        }
    }

    /// Read access to the underlying gateway. For the sharded
    /// arrangement, call [`AnyGateway::sync`] first.
    pub fn gateway(&self) -> &Gateway {
        match self {
            AnyGateway::Single(g) => g,
            AnyGateway::Sharded(s) => s.inner(),
        }
    }

    /// Mutable access for setup-time programming only — never the data
    /// path (see [`ShardedGateway::inner_mut`]).
    pub fn gateway_mut(&mut self) -> &mut Gateway {
        match self {
            AnyGateway::Single(g) => g,
            AnyGateway::Sharded(s) => s.inner_mut(),
        }
    }

    /// The management snapshot (aggregated across shards when sharded).
    pub fn snapshot(&mut self, now: SimTime) -> Json {
        match self {
            AnyGateway::Single(g) => g.snapshot(now),
            AnyGateway::Sharded(s) => s.snapshot(now),
        }
    }
}

/// Harness ergonomics: every read accessor of [`Gateway`] (stats, NPE,
/// MPP, residue, conservation, trace, ...) is reachable directly on an
/// `AnyGateway`. Inherent methods win over the deref, so the data-path
/// entry points (`deliver_cells`, `advance_into`, `snapshot`, ...)
/// still dispatch through the sharded arrangement. Accessors that read
/// SAR state go through the gateway's overlay, which every mutating
/// entry point above leaves freshly aggregated.
impl std::ops::Deref for AnyGateway {
    type Target = Gateway;
    fn deref(&self) -> &Gateway {
        self.gateway()
    }
}

/// Setup-time programming only (rate control, NPE/MPP configuration,
/// transport notes) — never the per-cell data path, which must enter
/// through the inherent [`AnyGateway`] methods to reach the shards.
impl std::ops::DerefMut for AnyGateway {
    fn deref_mut(&mut self) -> &mut Gateway {
        self.gateway_mut()
    }
}
