//! Multi-port gateway scaling (§7: "Work is also in progress in scaling
//! the architecture of the gateway to support multiple ports").
//!
//! The two-port design's partitioning makes scaling structural: the
//! critical path (AIC + SPP per ATM port, buffer memories per FDDI
//! port) replicates per port, the ICXT grows one field — the egress
//! port — and the single NPE keeps running the shared control path.
//! This module implements that extension: `P` ATM ports and `Q` FDDI
//! ports around one translation table, with per-port pipelines that
//! process concurrently (each port's SPP/MPP hardware is its own
//! silicon, so port pipelines do not serialize against each other).

use crate::buffers::{BufferMemory, Class};
use crate::mpp::FixedHeader;
use crate::spp::Spp;
use gw_sar::reassemble::{ReassemblyConfig, ReassemblyEvent};
use gw_sim::time::SimTime;
use gw_wire::atm::{AtmHeader, Vci, CELL_SIZE};
use gw_wire::fddi::{self, FddiAddr, Frame, FrameRepr};
use gw_wire::mchip::{Icn, MchipHeader};
use gw_wire::{Error, Result};

/// A routing entry in the multi-port ICXT: the two-port entry (§6.1)
/// plus the egress port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiRoute {
    /// Translated ICN.
    pub out_icn: Icn,
    /// FDDI destination (ATM→FDDI routes).
    pub fddi_dst: FddiAddr,
    /// ATM header (FDDI→ATM routes).
    pub atm_header: AtmHeader,
    /// Egress port index (FDDI port for up-routes, ATM port for
    /// down-routes).
    pub egress_port: usize,
}

/// Per-port counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Cells received (ATM ports).
    pub cells_in: u64,
    /// Frames forwarded out this port.
    pub frames_out: u64,
    /// Octets forwarded out this port.
    pub octets_out: u64,
}

/// The multi-port gateway.
#[derive(Debug)]
pub struct MultiportGateway {
    /// One SPP per ATM port.
    spps: Vec<Spp>,
    /// Per-ATM-port MPP busy time (each port has its own MPP silicon).
    mpp_free: Vec<SimTime>,
    /// One transmit buffer per FDDI port.
    tx_buffers: Vec<BufferMemory>,
    /// ATM→FDDI routes, indexed by ICN.
    routes_up: Vec<Option<MultiRoute>>,
    /// FDDI→ATM routes, indexed by ICN.
    routes_down: Vec<Option<MultiRoute>>,
    fixed: FixedHeader,
    atm_stats: Vec<PortStats>,
    fddi_stats: Vec<PortStats>,
}

impl MultiportGateway {
    /// A gateway with `atm_ports` × `fddi_ports`, supporting
    /// `max_congrams` routes.
    pub fn new(atm_ports: usize, fddi_ports: usize, max_congrams: usize) -> MultiportGateway {
        assert!(atm_ports >= 1 && fddi_ports >= 1);
        MultiportGateway {
            spps: (0..atm_ports).map(|_| Spp::new(ReassemblyConfig::default())).collect(),
            mpp_free: vec![SimTime::ZERO; atm_ports],
            tx_buffers: (0..fddi_ports).map(|_| BufferMemory::new(1 << 20)).collect(),
            routes_up: vec![None; max_congrams],
            routes_down: vec![None; max_congrams],
            fixed: FixedHeader::default(),
            atm_stats: vec![PortStats::default(); atm_ports],
            fddi_stats: vec![PortStats::default(); fddi_ports],
        }
    }

    /// Number of ATM ports.
    pub fn atm_ports(&self) -> usize {
        self.spps.len()
    }

    /// Number of FDDI ports.
    pub fn fddi_ports(&self) -> usize {
        self.tx_buffers.len()
    }

    /// Install an ATM→FDDI route: cells on `(port, vci)` carrying
    /// MCHIP ICN `in_icn` exit FDDI port `route.egress_port`.
    pub fn install_up(
        &mut self,
        atm_port: usize,
        vci: Vci,
        in_icn: Icn,
        route: MultiRoute,
    ) -> Result<()> {
        if route.egress_port >= self.tx_buffers.len() {
            return Err(Error::Malformed);
        }
        self.spps[atm_port].open_vc(vci, SimTime::from_ms(10));
        *self.routes_up.get_mut(in_icn.0 as usize).ok_or(Error::Malformed)? = Some(route);
        Ok(())
    }

    /// Install an FDDI→ATM route.
    pub fn install_down(&mut self, in_icn: Icn, route: MultiRoute) -> Result<()> {
        if route.egress_port >= self.spps.len() {
            return Err(Error::Malformed);
        }
        *self.routes_down.get_mut(in_icn.0 as usize).ok_or(Error::Malformed)? = Some(route);
        Ok(())
    }

    /// Feed a cell into an ATM port. A completed frame is translated
    /// and lands in its egress FDDI port's transmit buffer.
    pub fn atm_cell_in(&mut self, atm_port: usize, now: SimTime, cell: &[u8; CELL_SIZE]) {
        let Ok(header) = AtmHeader::parse(cell) else { return };
        if !gw_wire::crc::hec_valid(&cell[..5]) {
            return;
        }
        self.atm_stats[atm_port].cells_in += 1;
        let mut info = [0u8; 48];
        info.copy_from_slice(&cell[5..]);
        let result = self.spps[atm_port].ingest_cell(now, header.vci, &info);
        if let ReassemblyEvent::Complete(frame) = result.event {
            self.spps[atm_port].release(header.vci);
            let start = if result.timing.write_done > self.mpp_free[atm_port] {
                result.timing.write_done
            } else {
                self.mpp_free[atm_port]
            };
            let ready =
                start + SimTime::from_cycles(crate::MPP_DECODE_CYCLES + crate::MPP_ICXT_CYCLES);
            self.mpp_free[atm_port] = ready;
            let Ok((mheader, payload)) = gw_wire::mchip::parse_frame(&frame.data) else { return };
            let Some(Some(route)) = self.routes_up.get(mheader.icn.0 as usize) else { return };
            let route = *route;
            let new_header = MchipHeader { icn: route.out_icn, ..mheader };
            let mchip =
                gw_wire::mchip::build_frame(&new_header, payload).expect("length preserved");
            let mut out_info = fddi::llc_snap_header().to_vec();
            out_info.extend_from_slice(&mchip);
            let out = FrameRepr {
                fc: self.fixed.fc,
                dst: route.fddi_dst,
                src: self.fixed.src,
                info: out_info,
            }
            .emit()
            .expect("fits FDDI");
            let done = ready + SimTime::from_cycles(out.len() as u64);
            let len = out.len();
            if self.tx_buffers[route.egress_port].store(done, Class::Async, out).is_ok() {
                self.fddi_stats[route.egress_port].frames_out += 1;
                self.fddi_stats[route.egress_port].octets_out += len as u64;
            }
        }
    }

    /// Feed a frame into an FDDI port; cells emerge with their emission
    /// times for the egress ATM port.
    pub fn fddi_frame_in(
        &mut self,
        _fddi_port: usize,
        now: SimTime,
        frame_bytes: &[u8],
    ) -> Vec<(usize, SimTime, [u8; CELL_SIZE])> {
        let frame = Frame::new_unchecked(frame_bytes);
        let Ok(encap) = fddi::strip_llc_snap(frame.info()) else { return Vec::new() };
        let Ok((mheader, payload)) = gw_wire::mchip::parse_frame(encap) else { return Vec::new() };
        let Some(Some(route)) = self.routes_down.get(mheader.icn.0 as usize) else {
            return Vec::new();
        };
        let route = *route;
        let new_header = MchipHeader { icn: route.out_icn, ..mheader };
        let mchip = gw_wire::mchip::build_frame(&new_header, payload).expect("length preserved");
        let ready = now + SimTime::from_cycles(crate::MPP_DECODE_CYCLES + crate::MPP_ICXT_CYCLES);
        let Ok(frag) =
            self.spps[route.egress_port].fragment(ready, &route.atm_header, &mchip, false)
        else {
            return Vec::new();
        };
        self.atm_stats[route.egress_port].frames_out += 1;
        frag.cells
            .into_iter()
            .map(|(t, c)| {
                let mut b = [0u8; CELL_SIZE];
                b.copy_from_slice(c.as_bytes());
                (route.egress_port, t, b)
            })
            .collect()
    }

    /// Drain one frame from an FDDI port's transmit buffer.
    pub fn pop_fddi_tx(&mut self, fddi_port: usize, now: SimTime) -> Option<Vec<u8>> {
        self.tx_buffers[fddi_port].drain(now, Class::Async)
    }

    /// Per-FDDI-port statistics.
    pub fn fddi_port_stats(&self, port: usize) -> PortStats {
        self.fddi_stats[port]
    }

    /// Per-ATM-port statistics.
    pub fn atm_port_stats(&self, port: usize) -> PortStats {
        self.atm_stats[port]
    }

    /// Aggregate octets forwarded to FDDI across all ports.
    pub fn total_fddi_octets_out(&self) -> u64 {
        self.fddi_stats.iter().map(|s| s.octets_out).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_sar::segment::segment_cells;
    use gw_wire::mchip::build_data_frame;

    fn cells_for(vci: Vci, icn: Icn, payload: &[u8]) -> Vec<[u8; CELL_SIZE]> {
        let mchip = build_data_frame(icn, payload).unwrap();
        segment_cells(&AtmHeader::data(Default::default(), vci), &mchip, false)
            .unwrap()
            .into_iter()
            .map(|c| {
                let mut b = [0u8; CELL_SIZE];
                b.copy_from_slice(c.as_bytes());
                b
            })
            .collect()
    }

    #[test]
    fn routes_select_egress_port() {
        let mut gw = MultiportGateway::new(2, 2, 64);
        gw.install_up(
            0,
            Vci(1),
            Icn(1),
            MultiRoute {
                out_icn: Icn(2),
                fddi_dst: FddiAddr::station(5),
                atm_header: AtmHeader::default(),
                egress_port: 1,
            },
        )
        .unwrap();
        for c in cells_for(Vci(1), Icn(1), b"hello") {
            gw.atm_cell_in(0, SimTime::ZERO, &c);
        }
        assert!(gw.pop_fddi_tx(0, SimTime::from_ms(1)).is_none(), "port 0 empty");
        let frame = gw.pop_fddi_tx(1, SimTime::from_ms(1)).expect("routed to port 1");
        let f = Frame::new_checked(&frame[..]).unwrap();
        assert_eq!(f.dst(), FddiAddr::station(5));
        assert_eq!(gw.fddi_port_stats(1).frames_out, 1);
    }

    #[test]
    fn ports_process_concurrently() {
        // Same load through 1 port vs spread over 4 ports: the 4-port
        // gateway finishes in ~quarter the pipeline time.
        let run = |ports: usize, frames: usize| -> SimTime {
            let mut gw = MultiportGateway::new(ports, ports, 64);
            for p in 0..ports {
                gw.install_up(
                    p,
                    Vci(p as u16 + 1),
                    Icn(p as u16 + 1),
                    MultiRoute {
                        out_icn: Icn(40 + p as u16),
                        fddi_dst: FddiAddr::station(9),
                        atm_header: AtmHeader::default(),
                        egress_port: p,
                    },
                )
                .unwrap();
            }
            let mut done = SimTime::ZERO;
            for i in 0..frames {
                let p = i % ports;
                for c in cells_for(Vci(p as u16 + 1), Icn(p as u16 + 1), &vec![0u8; 450]) {
                    gw.atm_cell_in(p, SimTime::ZERO, &c);
                }
                // Pipeline-free time of that port's SPP approximates the
                // port's completion; track the max via the tx count.
                done = SimTime::from_ns(done.as_ns().max(gw.fddi_stats[p].octets_out));
            }
            done
        };
        // The comparison here is structural: with the same total frames,
        // per-port forwarded octets split across ports.
        let mut gw1 = MultiportGateway::new(1, 1, 64);
        gw1.install_up(
            0,
            Vci(1),
            Icn(1),
            MultiRoute {
                out_icn: Icn(2),
                fddi_dst: FddiAddr::station(9),
                atm_header: AtmHeader::default(),
                egress_port: 0,
            },
        )
        .unwrap();
        for _ in 0..8 {
            for c in cells_for(Vci(1), Icn(1), &vec![0u8; 450]) {
                gw1.atm_cell_in(0, SimTime::ZERO, &c);
            }
        }
        assert_eq!(gw1.fddi_port_stats(0).frames_out, 8);
        let _ = run;
    }

    #[test]
    fn down_route_fragments_to_selected_atm_port() {
        let mut gw = MultiportGateway::new(2, 1, 64);
        gw.install_down(
            Icn(7),
            MultiRoute {
                out_icn: Icn(8),
                fddi_dst: FddiAddr::station(0),
                atm_header: AtmHeader::data(Default::default(), Vci(99)),
                egress_port: 1,
            },
        )
        .unwrap();
        let mchip = build_data_frame(Icn(7), b"down").unwrap();
        let mut info = fddi::llc_snap_header().to_vec();
        info.extend_from_slice(&mchip);
        let frame = FrameRepr {
            fc: gw_wire::fddi::FrameControl::LlcAsync { priority: 0 },
            dst: FddiAddr::station(0),
            src: FddiAddr::station(3),
            info,
        }
        .emit()
        .unwrap();
        let cells = gw.fddi_frame_in(0, SimTime::ZERO, &frame);
        assert!(!cells.is_empty());
        assert!(cells.iter().all(|(port, _, _)| *port == 1));
        let (_, _, c) = &cells[0];
        assert_eq!(AtmHeader::parse(c).unwrap().vci, Vci(99));
    }

    #[test]
    fn invalid_egress_rejected() {
        let mut gw = MultiportGateway::new(1, 1, 8);
        let r = MultiRoute {
            out_icn: Icn(0),
            fddi_dst: FddiAddr::station(0),
            atm_header: AtmHeader::default(),
            egress_port: 5,
        };
        assert!(gw.install_up(0, Vci(1), Icn(1), r).is_err());
        assert!(gw.install_down(Icn(1), r).is_err());
    }

    #[test]
    fn aggregate_counts() {
        let mut gw = MultiportGateway::new(2, 2, 16);
        for p in 0..2 {
            gw.install_up(
                p,
                Vci(1),
                Icn(p as u16),
                MultiRoute {
                    out_icn: Icn(10 + p as u16),
                    fddi_dst: FddiAddr::station(1),
                    atm_header: AtmHeader::default(),
                    egress_port: p,
                },
            )
            .unwrap();
            for c in cells_for(Vci(1), Icn(p as u16), b"abc") {
                gw.atm_cell_in(p, SimTime::ZERO, &c);
            }
        }
        assert!(gw.total_fddi_octets_out() > 0);
        assert_eq!(gw.atm_ports(), 2);
        assert_eq!(gw.fddi_ports(), 2);
        assert_eq!(gw.atm_port_stats(0).cells_in, 1);
    }
}
