//! `gw-ring` — a bounded, lock-free, single-producer single-consumer
//! ring buffer connecting the stages of the sharded cell path.
//!
//! The paper's gateway wires its engines (AIC → SPP → MPP → RBC)
//! through dedicated FIFOs rather than a shared arbitrated memory; this
//! crate is the software analogue. One classify stage feeds N SAR+MPP
//! shards and reads their outcomes back through exactly these rings, so
//! the whole data path synchronises on nothing but one head and one
//! tail index per ring — no mutex, no condvar, no shared allocator
//! traffic (`gw-lint`'s no-lock rule holds every shard module to that).
//!
//! Design points, all standard for SPSC rings:
//!
//! * capacity is rounded up to a power of two, and the head/tail
//!   counters run free (wrapping `usize`) so every slot is usable and
//!   full/empty are distinguished without a reserved gap;
//! * the producer owns `tail` and caches the consumer's `head` (and
//!   vice versa), so a `push`/`pop` pair in steady state touches one
//!   foreign cache line only when its cached view goes stale;
//! * head and tail live on separate cache lines to stop the two sides
//!   false-sharing;
//! * slots are `UnsafeCell<MaybeUninit<T>>`: ownership of the value
//!   moves across the ring, never a reference. This is the one crate in
//!   the workspace allowed `unsafe` (see `gw-lint`'s hygiene rule);
//!   every block carries its `SAFETY:` argument and the whole protocol
//!   is exercised under two-thread stress and Miri in `tests/ring.rs`.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pad-and-align wrapper keeping the producer and consumer indices on
/// distinct cache lines (128 bytes covers adjacent-line prefetchers).
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot storage; length is a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, for index masking.
    mask: usize,
    /// Next slot index the consumer will read. Only the consumer
    /// stores to this; the producer loads it to learn of freed slots.
    head: CachePadded<AtomicUsize>,
    /// Next slot index the producer will write. Only the producer
    /// stores to this; the consumer loads it to learn of new items.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring moves owned `T` values between exactly two threads;
// slot access is serialised by the head/tail acquire/release protocol
// (a slot is touched by the producer only while `index - head < cap`
// and by the consumer only while `index < tail`), so sharing `Shared`
// across threads is sound whenever `T` itself may move between threads.
unsafe impl<T: Send> Sync for Shared<T> {}
// SAFETY: same argument — `Shared` holds `T`s by value and atomics.
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone (`&mut self`), so the atomics are
        // quiescent and every slot in `[head, tail)` still holds an
        // initialised, un-popped value that must be dropped here.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            let slot = &self.slots[i & self.mask];
            // SAFETY: exclusive access via `&mut self`; the protocol
            // guarantees slots in `[head, tail)` are initialised and
            // each is dropped exactly once by this loop.
            unsafe { (*slot.get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The sending half of a ring created by [`ring`].
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's private copy of `tail` (it is the only writer).
    tail: usize,
    /// Last observed consumer `head`; refreshed only when the ring
    /// looks full against this stale view.
    head_cache: usize,
}

/// The receiving half of a ring created by [`ring`].
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's private copy of `head` (it is the only writer).
    head: usize,
    /// Last observed producer `tail`; refreshed only when the ring
    /// looks empty against this stale view.
    tail_cache: usize,
}

impl<T> core::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Producer").field("capacity", &self.capacity()).finish_non_exhaustive()
    }
}

impl<T> core::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Consumer").field("capacity", &self.capacity()).finish_non_exhaustive()
    }
}

/// Create a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2).
///
/// The two halves are independent handles: move the [`Producer`] to
/// the feeding thread and the [`Consumer`] to the draining thread.
/// This is the construction-time allocation; steady-state `push`/`pop`
/// never allocate.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer { shared: Arc::clone(&shared), tail: 0, head_cache: 0 },
        Consumer { shared, head: 0, tail_cache: 0 },
    )
}

impl<T> Producer<T> {
    /// Total slot count (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Attempt to enqueue `value`; on a full ring the value comes
    /// straight back so the caller keeps ownership (shards apply
    /// backpressure by working the other direction, never by blocking).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.tail;
        let cap = self.shared.mask + 1;
        if tail.wrapping_sub(self.head_cache) == cap {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) == cap {
                return Err(value);
            }
        }
        let slot = &self.shared.slots[tail & self.shared.mask];
        // SAFETY: `tail - head < cap` was just established, so this
        // slot is free (the consumer has already moved its value out
        // or it was never written); the acquire load above synchronises
        // with the consumer's release store of `head`, making the
        // slot's vacancy visible. Only this thread writes slots.
        unsafe { (*slot.get()).write(value) };
        self.tail = tail.wrapping_add(1);
        // Release: publishes the slot write before the new tail.
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued, as seen from the producer
    /// side (exact for its own pushes, conservative for pops).
    pub fn len(&self) -> usize {
        self.tail.wrapping_sub(self.shared.head.0.load(Ordering::Acquire))
    }

    /// True when [`Producer::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Total slot count (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Dequeue the oldest item, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.head;
        if head == self.tail_cache {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.shared.slots[head & self.shared.mask];
        // SAFETY: `head < tail` was just established, so this slot
        // holds an initialised value; the acquire load above
        // synchronises with the producer's release store of `tail`,
        // making the slot write visible. Reading moves the value out,
        // and advancing `head` below marks the slot free exactly once.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head = head.wrapping_add(1);
        // Release: publishes the slot vacancy before the new head.
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Number of items currently queued, as seen from the consumer
    /// side (exact for its own pops, conservative for pushes).
    pub fn len(&self) -> usize {
        self.shared.tail.0.load(Ordering::Acquire).wrapping_sub(self.head)
    }

    /// True when [`Consumer::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
