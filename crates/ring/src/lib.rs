//! `gw-ring` — a bounded, lock-free, single-producer single-consumer
//! ring buffer connecting the stages of the sharded cell path.
//!
//! The paper's gateway wires its engines (AIC → SPP → MPP → RBC)
//! through dedicated FIFOs rather than a shared arbitrated memory; this
//! crate is the software analogue. One classify stage feeds N SAR+MPP
//! shards and reads their outcomes back through exactly these rings, so
//! the whole data path synchronises on nothing but one head and one
//! tail index per ring — no mutex, no condvar, no shared allocator
//! traffic (`gw-lint`'s no-lock rule holds every shard module to that).
//!
//! Design points, all standard for SPSC rings:
//!
//! * capacity is rounded up to a power of two, and the head/tail
//!   counters run free (wrapping `usize`) so every slot is usable and
//!   full/empty are distinguished without a reserved gap;
//! * the producer owns `tail` and caches the consumer's `head` (and
//!   vice versa), so a `push`/`pop` pair in steady state touches one
//!   foreign cache line only when its cached view goes stale;
//! * head and tail live on separate cache lines to stop the two sides
//!   false-sharing;
//! * slots are `UnsafeCell<MaybeUninit<T>>`: ownership of the value
//!   moves across the ring, never a reference. This is the one crate in
//!   the workspace allowed `unsafe` (see `gw-lint`'s hygiene rule);
//!   every block carries its `SAFETY:` argument and the whole protocol
//!   is exercised under two-thread stress and Miri in `tests/ring.rs`.
//!
//! The index/ordering discipline itself lives in [`protocol`], a pure
//! module shared verbatim with `gw-model`'s exhaustively-explored port
//! of this ring (see DESIGN.md §14). Changing an ordering here changes
//! it in the model, where the interleaving explorer will convict any
//! weakening — the prose `SAFETY:` arguments below are backed by that
//! machine check, not the other way around.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

pub mod protocol;

use protocol as proto;

/// Pad-and-align wrapper keeping the producer and consumer indices on
/// distinct cache lines (128 bytes covers adjacent-line prefetchers).
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot storage; length is a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, for index masking.
    mask: usize,
    /// Next slot index the consumer will read. Only the consumer
    /// stores to this; the producer loads it to learn of freed slots.
    head: CachePadded<AtomicUsize>,
    /// Next slot index the producer will write. Only the producer
    /// stores to this; the consumer loads it to learn of new items.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring moves owned `T` values between exactly two threads;
// slot access is serialised by the head/tail acquire/release protocol
// (a slot is touched by the producer only while `index - head < cap`
// and by the consumer only while `index < tail`), so sharing `Shared`
// across threads is sound whenever `T` itself may move between threads.
unsafe impl<T: Send> Sync for Shared<T> {}
// SAFETY: same argument — `Shared` holds `T`s by value and atomics.
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone (`&mut self`), so the atomics are
        // quiescent and every slot in `[head, tail)` still holds an
        // initialised, un-popped value that must be dropped here.
        // (`Consumer::drop` republishes its private head first, so
        // batch pops that deferred their publish are not re-dropped.)
        let head = self.head.0.load(proto::TEARDOWN_OBSERVE);
        let tail = self.tail.0.load(proto::TEARDOWN_OBSERVE);
        let mut i = head;
        while i != tail {
            let slot = &self.slots[proto::slot(i, self.mask)];
            // SAFETY: exclusive access via `&mut self`; the protocol
            // guarantees slots in `[head, tail)` are initialised and
            // each is dropped exactly once by this loop.
            unsafe { (*slot.get()).assume_init_drop() };
            i = proto::advance(i);
        }
    }
}

/// The sending half of a ring created by [`ring`].
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's private copy of `tail` (it is the only writer).
    tail: usize,
    /// Last observed consumer `head`; refreshed only when the ring
    /// looks full against this stale view.
    head_cache: usize,
}

/// The receiving half of a ring created by [`ring`].
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's private copy of `head` (it is the only writer).
    head: usize,
    /// Last observed producer `tail`; refreshed only when the ring
    /// looks empty against this stale view.
    tail_cache: usize,
}

impl<T> core::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Producer").field("capacity", &self.capacity()).finish_non_exhaustive()
    }
}

impl<T> core::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Consumer").field("capacity", &self.capacity()).finish_non_exhaustive()
    }
}

/// Create a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2).
///
/// The two halves are independent handles: move the [`Producer`] to
/// the feeding thread and the [`Consumer`] to the draining thread.
/// This is the construction-time allocation; steady-state `push`/`pop`
/// never allocate.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    ring_at(capacity, 0)
}

/// Create a ring whose head/tail counters start at `start` instead of
/// zero.
///
/// The protocol runs on free-running wrapping counters, so any start
/// value yields an identical ring; this constructor exists so tests can
/// place the counters just below `usize::MAX` and drive them through
/// the wrap (`tests/ring.rs`), proving the index arithmetic owes
/// nothing to counters staying small.
pub fn ring_at<T: Send>(capacity: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    let cap = proto::capacity_for(capacity);
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(start)),
        tail: CachePadded(AtomicUsize::new(start)),
    });
    (
        Producer { shared: Arc::clone(&shared), tail: start, head_cache: start },
        Consumer { shared, head: start, tail_cache: start },
    )
}

impl<T> Producer<T> {
    /// Total slot count (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Attempt to enqueue `value`; on a full ring the value comes
    /// straight back so the caller keeps ownership (shards apply
    /// backpressure by working the other direction, never by blocking).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.tail;
        let cap = self.shared.mask + 1;
        if proto::is_full(tail, self.head_cache, cap) {
            self.head_cache = self.shared.head.0.load(proto::HEAD_OBSERVE);
            if proto::is_full(tail, self.head_cache, cap) {
                return Err(value);
            }
        }
        let slot = &self.shared.slots[proto::slot(tail, self.shared.mask)];
        // SAFETY: `tail - head < cap` was just established, so this
        // slot is free (the consumer has already moved its value out
        // or it was never written); the acquire load above synchronises
        // with the consumer's release store of `head`, making the
        // slot's vacancy visible. Only this thread writes slots.
        unsafe { (*slot.get()).write(value) };
        self.tail = proto::advance(tail);
        // Release: publishes the slot write before the new tail.
        self.shared.tail.0.store(self.tail, proto::TAIL_PUBLISH);
        Ok(())
    }

    /// Number of items currently queued, as seen from the producer
    /// side (exact for its own pushes, conservative for pops).
    pub fn len(&self) -> usize {
        proto::occupancy(self.tail, self.shared.head.0.load(proto::HEAD_OBSERVE))
    }

    /// True when [`Producer::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Total slot count (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Dequeue the oldest item, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.head;
        if proto::is_empty(self.tail_cache, head) {
            self.tail_cache = self.shared.tail.0.load(proto::TAIL_OBSERVE);
            if proto::is_empty(self.tail_cache, head) {
                return None;
            }
        }
        // SAFETY: `head < tail` was just established, so this slot
        // holds an initialised value; the acquire load above
        // synchronises with the producer's release store of `tail`,
        // making the slot write visible. Reading moves the value out,
        // and advancing `head` below marks the slot free exactly once.
        let value = unsafe { self.take_slot(head) };
        // Release: publishes the slot vacancy before the new head.
        self.shared.head.0.store(self.head, proto::HEAD_PUBLISH);
        Some(value)
    }

    /// Dequeue up to `max` items in one sweep, handing each to `f`, and
    /// publish the consumer head **once** at the end instead of once
    /// per item.
    ///
    /// This is the drain primitive the shard pumps use: a worker that
    /// wakes with k jobs queued takes all k with a single release store
    /// on the foreign cache line, instead of k of them. Returns the
    /// number of items consumed.
    ///
    /// The private head is advanced before `f` runs for each item, and
    /// [`Consumer`]'s `Drop` republishes the private head, so a panic
    /// inside `f` cannot make teardown drop a value that was already
    /// moved out.
    pub fn pop_batch(&mut self, max: usize, mut f: impl FnMut(T)) -> usize {
        let mut taken = 0usize;
        while taken < max {
            let head = self.head;
            if proto::is_empty(self.tail_cache, head) {
                self.tail_cache = self.shared.tail.0.load(proto::TAIL_OBSERVE);
                if proto::is_empty(self.tail_cache, head) {
                    break;
                }
            }
            // SAFETY: `head < tail` was just established (the acquire
            // load above synchronises with the producer's release store
            // of `tail`), so the slot holds an initialised value that
            // is moved out exactly once; `take_slot` advances the
            // private head so no later path re-reads it.
            let value = unsafe { self.take_slot(head) };
            taken += 1;
            f(value);
        }
        if taken > 0 {
            // Release: publishes every slot vacancy of the batch
            // before the new head, in one store.
            self.shared.head.0.store(self.head, proto::HEAD_PUBLISH);
        }
        taken
    }

    /// Move the value out of the slot at `head` and advance the private
    /// head past it.
    ///
    /// # Safety
    ///
    /// `head` must equal `self.head`, and the caller must have
    /// established `head != tail` via an acquire load of the shared
    /// tail, so the slot holds an initialised value this call uniquely
    /// consumes.
    // SAFETY: declaration only — the `# Safety` contract above binds
    // callers; the body's one unsafe read carries its own argument.
    unsafe fn take_slot(&mut self, head: usize) -> T {
        let slot = &self.shared.slots[proto::slot(head, self.shared.mask)];
        // SAFETY: per this function's contract the slot is initialised
        // and unconsumed; advancing `head` below marks it free exactly
        // once, and only this thread reads slots.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head = proto::advance(head);
        value
    }

    /// Number of items currently queued, as seen from the consumer
    /// side (exact for its own pops, conservative for pushes).
    pub fn len(&self) -> usize {
        proto::occupancy(self.shared.tail.0.load(proto::TAIL_OBSERVE), self.head)
    }

    /// True when [`Consumer::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // `pop_batch` defers the head publish; if the consumer is
        // dropped between taking a value and publishing (e.g. a panic
        // in the batch callback), `Shared::drop` would otherwise see a
        // stale head and double-drop the moved-out values. Republishing
        // here makes the private head authoritative at teardown.
        self.shared.head.0.store(self.head, proto::HEAD_PUBLISH);
    }
}
