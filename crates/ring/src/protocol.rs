//! The SPSC ring's index and ordering discipline, as pure data and
//! pure functions — the single source of truth shared by the shipping
//! ring in this crate and by `gw-model`'s exhaustively-explored port.
//!
//! The ring's correctness rests on exactly two happens-before edges
//! (DESIGN.md §14):
//!
//! 1. **publish**: the producer's slot write happens-before the
//!    consumer's slot read, carried by the release store of `tail`
//!    ([`TAIL_PUBLISH`]) synchronising with the consumer's acquire
//!    load ([`TAIL_OBSERVE`]);
//! 2. **recycle**: the consumer's slot read happens-before the
//!    producer's next write of the same slot, carried by the release
//!    store of `head` ([`HEAD_PUBLISH`]) synchronising with the
//!    producer's acquire load ([`HEAD_OBSERVE`]).
//!
//! Everything else — free-running wrapping counters, power-of-two
//! masking, the full/empty predicates — is plain arithmetic, kept here
//! so the model checks the very same expressions the data path runs.
//! `gw-model`'s mutation selftests replace each constant and predicate
//! below with a weakened variant and demand a conviction, which is what
//! makes these definitions load-bearing rather than decorative.

use std::sync::atomic::Ordering;

/// Ordering for the producer's store of `tail`: release, so the slot
/// write is published before the index that advertises it.
pub const TAIL_PUBLISH: Ordering = Ordering::Release;

/// Ordering for the consumer's load of `tail`: acquire, pairing with
/// [`TAIL_PUBLISH`] to make the advertised slot's contents visible.
pub const TAIL_OBSERVE: Ordering = Ordering::Acquire;

/// Ordering for the consumer's store of `head`: release, so the slot
/// read (the move out) is published before the index that frees it.
pub const HEAD_PUBLISH: Ordering = Ordering::Release;

/// Ordering for the producer's load of `head`: acquire, pairing with
/// [`HEAD_PUBLISH`] to make the slot's vacancy visible before reuse.
pub const HEAD_OBSERVE: Ordering = Ordering::Acquire;

/// Ordering for teardown loads in `Shared::drop`: relaxed is enough
/// because `&mut self` proves both handles are gone, and dropping the
/// last `Arc` already performed the acquire that orders all prior
/// stores before the destructor runs.
pub const TEARDOWN_OBSERVE: Ordering = Ordering::Relaxed;

/// Usable slot count for a requested capacity: at least 2, rounded up
/// to a power of two so indices can be masked instead of divided.
pub const fn capacity_for(requested: usize) -> usize {
    let floored = if requested < 2 { 2 } else { requested };
    floored.next_power_of_two()
}

/// Items between the counters. The counters run free and wrap, so this
/// is wrapping subtraction; the protocol keeps it within `0..=cap`.
pub const fn occupancy(tail: usize, head: usize) -> usize {
    tail.wrapping_sub(head)
}

/// Full test against a (possibly stale) view of `head`. Stale views
/// only under-report pops, so a `true` here may be refreshed away but
/// a `false` is always safe to act on.
pub const fn is_full(tail: usize, head: usize, cap: usize) -> bool {
    occupancy(tail, head) == cap
}

/// Empty test against a (possibly stale) view of `tail`. Stale views
/// only under-report pushes, so a `true` here may be refreshed away
/// but a `false` is always safe to act on.
pub const fn is_empty(tail: usize, head: usize) -> bool {
    occupancy(tail, head) == 0
}

/// Advance a free-running counter by one slot (wrapping).
pub const fn advance(index: usize) -> usize {
    index.wrapping_add(1)
}

/// Map a free-running counter to a slot index (`mask` is `cap - 1`).
pub const fn slot(index: usize, mask: usize) -> usize {
    index & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_survive_counter_wrap() {
        let cap = 4;
        let head = usize::MAX.wrapping_sub(1);
        let mut tail = head;
        assert!(is_empty(tail, head));
        for n in 1..=cap {
            tail = advance(tail);
            assert_eq!(occupancy(tail, head), n);
        }
        assert!(is_full(tail, head, cap));
        // Slot indices stay in range and distinct across the wrap.
        let mask = cap - 1;
        let mut seen = [false; 4];
        let mut i = head;
        for _ in 0..cap {
            seen[slot(i, mask)] = true;
            i = advance(i);
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn capacity_rounds_up_to_powers_of_two() {
        assert_eq!(capacity_for(0), 2);
        assert_eq!(capacity_for(2), 2);
        assert_eq!(capacity_for(3), 4);
        assert_eq!(capacity_for(4096), 4096);
    }
}
