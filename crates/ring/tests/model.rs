//! Exhaustive interleaving checks of the ring protocol under
//! `gw-model`, plus the mutation suite proving the checker bites.
//!
//! The modelled ring (`gw_model::spsc`) compiles against this crate's
//! `protocol` module — the same `is_full`/`is_empty`/`advance`/`slot`
//! expressions and the same `Ordering` constants the shipping
//! `push`/`pop`/`pop_batch` run. The healthy tests therefore certify
//! the deployed protocol: every interleaving within the preemption
//! bound, for small capacities and op counts, delivers exactly the
//! pushed sequence with no happens-before violation. The mutation
//! tests seed each historically-plausible protocol bug and demand a
//! conviction, which is the evidence the healthy passes are
//! meaningful.
//!
//! Ignored under Miri: these spawn thousands of short-lived scenario
//! threads; Miri's own value lies in `tests/ring.rs`, which it checks
//! against the real atomics.

#![cfg(not(miri))]

use gw_model::spsc::{model_ring, SpscSpec};
use gw_model::{explore, ConvictionKind, MOrd, Options, Report, Sim};
use std::sync::{Arc, Mutex};

/// Explore `items` values through a modelled ring of `capacity`,
/// counters seeded at `start`: blocking push of `1..=items` against
/// blocking pop, with a sequence-integrity oracle (lost, duplicated,
/// reordered, or phantom values all fail it).
fn run_spsc(capacity: usize, items: usize, start: usize, spec: SpscSpec, bound: usize) -> Report {
    explore(Options { preemption_bound: bound, ..Options::default() }, move |sim: &mut Sim| {
        let (mut p, mut c) = model_ring(sim, capacity, start, spec);
        sim.thread(move |t| {
            for v in 1..=items {
                p.push_blocking(t, v);
            }
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        let got_w = Arc::clone(&got);
        sim.thread(move |t| {
            for _ in 0..items {
                let v = c.pop_blocking(t);
                got_w.lock().unwrap().push(v);
            }
        });
        sim.oracle(move || {
            let got = got.lock().unwrap();
            let want: Vec<usize> = (1..=items).collect();
            if *got == want {
                Ok(())
            } else {
                Err(format!("sequence violated: got {got:?}, want {want:?}"))
            }
        });
    })
}

/// Same oracle, but the consumer drains with `pop_batch` (deferred
/// single head publish) and parks on the tail rail between sweeps —
/// the shape the shard pumps use.
fn run_spsc_batch(capacity: usize, items: usize, spec: SpscSpec, bound: usize) -> Report {
    explore(Options { preemption_bound: bound, ..Options::default() }, move |sim: &mut Sim| {
        let (mut p, mut c) = model_ring(sim, capacity, 0, spec);
        sim.thread(move |t| {
            for v in 1..=items {
                p.push_blocking(t, v);
            }
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        let got_w = Arc::clone(&got);
        sim.thread(move |t| {
            let mut drained = Vec::new();
            while drained.len() < items {
                if c.pop_batch(t, items - drained.len(), &mut drained) == 0 {
                    t.wait_change(&[c.tail_rail()]);
                }
            }
            *got_w.lock().unwrap() = drained;
        });
        sim.oracle(move || {
            let got = got.lock().unwrap();
            let want: Vec<usize> = (1..=items).collect();
            if *got == want {
                Ok(())
            } else {
                Err(format!("batch sequence violated: got {got:?}, want {want:?}"))
            }
        });
    })
}

// ---------------------------------------------------------------
// Healthy protocol: exhaustive passes over the shipping orderings.
// ---------------------------------------------------------------

#[test]
fn healthy_cap2_wraps_twice_exhaustively() {
    // Capacity 2, 4 items: every slot is reused twice, so both the
    // publish edge (tail) and the recycle edge (head) are exercised
    // under every schedule within the bound.
    run_spsc(2, 4, 0, SpscSpec::default(), 3).assert_clean();
}

#[test]
fn healthy_cap4_six_ops_exhaustively() {
    run_spsc(4, 6, 0, SpscSpec::default(), 2).assert_clean();
}

#[test]
fn healthy_counter_wrap_at_usize_max() {
    // The free-running counters cross usize::MAX mid-scenario; the
    // model checks the same wrapping predicates the shipping ring
    // runs (`tests/ring.rs` covers the real ring at the same seam).
    run_spsc(2, 4, usize::MAX - 1, SpscSpec::default(), 2).assert_clean();
}

#[test]
fn healthy_batch_drain_exhaustively() {
    run_spsc_batch(4, 5, SpscSpec::default(), 2).assert_clean();
}

#[test]
fn model_spec_mirrors_shipping_protocol() {
    // The seam itself: the model's default spec is *derived from* the
    // shipping constants. If someone strengthens or weakens
    // `gw_ring::protocol`, this records what the healthy tests above
    // actually certified.
    let spec = SpscSpec::default();
    assert_eq!(spec.tail_publish, MOrd::Release);
    assert_eq!(spec.tail_observe, MOrd::Acquire);
    assert_eq!(spec.head_publish, MOrd::Release);
    assert_eq!(spec.head_observe, MOrd::Acquire);
    assert!(spec.write_before_publish && spec.refresh_head_cache && spec.refresh_tail_cache);
}

// ---------------------------------------------------------------
// Mutation suite: every seeded protocol bug must be convicted.
// ---------------------------------------------------------------

#[test]
fn mutation_tail_publish_relaxed_is_convicted() {
    // Publishing the tail without release drops the edge that makes
    // the slot write visible: the consumer's payload read races.
    let spec = SpscSpec { tail_publish: MOrd::Relaxed, ..SpscSpec::default() };
    run_spsc(2, 2, 0, spec, 2).assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn mutation_tail_observe_relaxed_is_convicted() {
    // The consumer sees the new tail but never joins the producer's
    // clock — same race, opposite side of the edge.
    let spec = SpscSpec { tail_observe: MOrd::Relaxed, ..SpscSpec::default() };
    run_spsc(2, 2, 0, spec, 2).assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn mutation_head_publish_relaxed_is_convicted() {
    // The recycle edge: without release on head, the producer reuses
    // a slot without the consumer's read ordered before its write.
    // Needs enough items to wrap (slot reuse).
    let spec = SpscSpec { head_publish: MOrd::Relaxed, ..SpscSpec::default() };
    run_spsc(2, 4, 0, spec, 2).assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn mutation_head_observe_relaxed_is_convicted() {
    let spec = SpscSpec { head_observe: MOrd::Relaxed, ..SpscSpec::default() };
    run_spsc(2, 4, 0, spec, 2).assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn mutation_publish_before_write_is_convicted() {
    // Storing the tail before the payload advertises a slot that is
    // not yet written — the classic torn-publish bug.
    let spec = SpscSpec { write_before_publish: false, ..SpscSpec::default() };
    run_spsc(2, 2, 0, spec, 2).assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn mutation_skipped_head_refresh_is_convicted() {
    // A producer that never refreshes its cached head view believes
    // the ring full forever once it wraps: the run wedges and the
    // model reports it as a deadlock instead of hanging.
    let spec = SpscSpec { refresh_head_cache: false, ..SpscSpec::default() };
    run_spsc(2, 4, 0, spec, 2).assert_convicted(ConvictionKind::Deadlock);
}

#[test]
fn mutation_skipped_tail_refresh_is_convicted() {
    let spec = SpscSpec { refresh_tail_cache: false, ..SpscSpec::default() };
    run_spsc(2, 2, 0, spec, 2).assert_convicted(ConvictionKind::Deadlock);
}

#[test]
fn mutation_off_by_one_full_test_is_convicted() {
    // Full at cap+1: the producer overwrites the oldest undrained
    // slot. Depending on the interleaving this surfaces as a clock
    // violation or as a corrupted sequence; either way it convicts.
    let spec = SpscSpec { full_bias: 1, ..SpscSpec::default() };
    let report = run_spsc(2, 4, 0, spec, 2);
    assert!(
        report.conviction.is_some(),
        "off-by-one full test ran clean over {} executions",
        report.executions
    );
}

#[test]
fn mutation_off_by_one_empty_test_is_convicted() {
    // Never-empty: the consumer pops slots the producer has not
    // filled (or not published).
    let spec = SpscSpec { empty_bias: -1, ..SpscSpec::default() };
    let report = run_spsc(2, 2, 0, spec, 2);
    assert!(
        report.conviction.is_some(),
        "off-by-one empty test ran clean over {} executions",
        report.executions
    );
}
