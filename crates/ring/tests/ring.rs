//! Edge, ownership, and two-thread stress coverage for the SPSC ring.
//!
//! The stress tests carry a sequence-integrity oracle: the producer
//! pushes consecutive integers and the consumer asserts it sees exactly
//! `0..N` in order — any lost, duplicated, or reordered slot hand-off
//! fails immediately. Iteration counts shrink under Miri so the whole
//! file doubles as the interpreter-checked memory-model smoke test
//! (`cargo +nightly miri test -p gw-ring`).

use gw_ring::{ring, ring_at};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[cfg(miri)]
const STRESS_ITEMS: usize = 3_000;
#[cfg(not(miri))]
const STRESS_ITEMS: usize = 2_000_000;

#[test]
fn capacity_rounds_up_to_power_of_two() {
    let (p, c) = ring::<u32>(5);
    assert_eq!(p.capacity(), 8);
    assert_eq!(c.capacity(), 8);
    let (p, _c) = ring::<u32>(0);
    assert_eq!(p.capacity(), 2);
    let (p, _c) = ring::<u32>(16);
    assert_eq!(p.capacity(), 16);
}

#[test]
fn empty_ring_pops_none() {
    let (_p, mut c) = ring::<u64>(4);
    assert!(c.is_empty());
    assert_eq!(c.pop(), None);
    assert_eq!(c.pop(), None);
}

#[test]
fn full_ring_rejects_and_returns_the_value() {
    let (mut p, mut c) = ring::<u64>(4);
    for i in 0..4 {
        assert_eq!(p.push(i), Ok(()));
    }
    assert_eq!(p.len(), 4);
    // Every slot is usable — full is tail - head == capacity, not a
    // reserved-gap scheme — and the rejected value comes back intact.
    assert_eq!(p.push(99), Err(99));
    assert_eq!(c.pop(), Some(0));
    assert_eq!(p.push(99), Ok(()));
    assert_eq!(p.push(100), Err(100));
}

#[test]
fn wraparound_preserves_fifo_order() {
    let (mut p, mut c) = ring::<usize>(4);
    // Drive the indices far past several wraps of the 4-slot buffer
    // with a mixed push/pop cadence (2 in, 1 out) so head and tail
    // straddle the wrap point in every alignment.
    let mut next_in = 0usize;
    let mut next_out = 0usize;
    for _ in 0..64 {
        for _ in 0..2 {
            if p.push(next_in).is_ok() {
                next_in += 1;
            }
        }
        assert_eq!(c.pop(), Some(next_out));
        next_out += 1;
    }
    while let Some(v) = c.pop() {
        assert_eq!(v, next_out);
        next_out += 1;
    }
    assert_eq!(next_out, next_in);
}

#[test]
fn counters_wrap_through_usize_max() {
    // The head/tail counters run free and wrap; `ring_at` starts them
    // three increments short of `usize::MAX` so this test drives every
    // operation — push, pop, len, batch pop, full/empty tests —
    // straight through the wrap of the counter itself (not merely the
    // slot mask). A single missing `wrapping_*` turns this into an
    // overflow panic (overflow checks are on in every profile) or a
    // bogus occupancy.
    let start = usize::MAX - 3;
    let (mut p, mut c) = ring_at::<usize>(4, start);
    assert!(c.is_empty() && p.is_empty());
    for i in 0..4 {
        assert_eq!(p.push(i), Ok(()));
        assert_eq!(p.len(), i + 1);
    }
    // Full exactly at capacity, straddling the wrap point.
    assert_eq!(p.push(99), Err(99));
    assert_eq!(c.len(), 4);
    assert_eq!(c.pop(), Some(0));
    assert_eq!(c.pop(), Some(1));
    // Refill so the occupied window [head, tail) itself crosses MAX→0.
    assert_eq!(p.push(4), Ok(()));
    assert_eq!(p.push(5), Ok(()));
    assert_eq!(p.push(6), Err(6));
    let mut got = Vec::new();
    assert_eq!(c.pop_batch(usize::MAX, |v| got.push(v)), 4);
    assert_eq!(got, [2, 3, 4, 5]);
    assert!(c.is_empty());
    assert_eq!(c.pop(), None);
    // Keep cycling well past the wrap; FIFO order must be unbroken.
    let mut next = 6usize;
    for _ in 0..16 {
        assert_eq!(p.push(next), Ok(()));
        assert_eq!(p.push(next + 1), Ok(()));
        assert_eq!(c.pop(), Some(next));
        assert_eq!(c.pop(), Some(next + 1));
        next += 2;
    }
}

#[test]
fn pop_batch_drains_in_order_with_one_publish() {
    let (mut p, mut c) = ring::<usize>(8);
    for i in 0..6 {
        p.push(i).unwrap();
    }
    let mut got = Vec::new();
    // A bounded batch takes exactly `max` items...
    assert_eq!(c.pop_batch(4, |v| got.push(v)), 4);
    assert_eq!(got, [0, 1, 2, 3]);
    // ...and the deferred head publish still freed all four slots for
    // the producer in one store: 2 items remain, so 6 more fit.
    for i in 6..12 {
        assert_eq!(p.push(i), Ok(()));
    }
    assert_eq!(p.push(12), Err(12));
    got.clear();
    assert_eq!(c.pop_batch(usize::MAX, |v| got.push(v)), 8);
    assert_eq!(got, [4, 5, 6, 7, 8, 9, 10, 11]);
    assert_eq!(c.pop_batch(usize::MAX, |_| ()), 0);
}

#[test]
fn panicking_batch_callback_does_not_double_drop() {
    // `pop_batch` advances the private head before invoking the
    // callback and `Consumer::drop` republishes it, so a panic inside
    // the callback must not let teardown re-drop moved-out values.
    let live = Arc::new(AtomicUsize::new(0));
    let (mut p, c) = ring::<Counted>(8);
    for _ in 0..5 {
        p.push(Counted::new(&live)).unwrap();
    }
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut c = c;
        let mut seen = 0usize;
        c.pop_batch(usize::MAX, |item| {
            seen += 1;
            if seen == 3 {
                panic!("mid-batch failure");
            }
            drop(item);
        });
    }));
    assert!(caught.is_err());
    drop(p);
    // 2 dropped by the callback, 1 by unwind, 2 by ring teardown —
    // each exactly once.
    assert_eq!(live.load(Ordering::Relaxed), 0);
}

#[test]
fn values_move_not_copy() {
    // Boxed values cross the ring by ownership; Miri would flag any
    // double-free or leak of the heap payloads.
    let (mut p, mut c) = ring::<Box<String>>(2);
    p.push(Box::new("alpha".to_string())).unwrap();
    p.push(Box::new("beta".to_string())).unwrap();
    assert_eq!(*c.pop().unwrap(), "alpha");
    p.push(Box::new("gamma".to_string())).unwrap();
    assert_eq!(*c.pop().unwrap(), "beta");
    assert_eq!(*c.pop().unwrap(), "gamma");
    assert!(c.pop().is_none());
}

/// Counts live instances so the drop tests can prove the ring neither
/// leaks nor double-drops across every teardown order.
#[derive(Debug)]
struct Counted(Arc<AtomicUsize>);

impl Counted {
    fn new(live: &Arc<AtomicUsize>) -> Self {
        live.fetch_add(1, Ordering::Relaxed);
        Counted(Arc::clone(live))
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

#[test]
fn dropping_the_ring_drops_undrained_items_exactly_once() {
    let live = Arc::new(AtomicUsize::new(0));
    let (mut p, mut c) = ring::<Counted>(8);
    for _ in 0..6 {
        p.push(Counted::new(&live)).unwrap();
    }
    drop(c.pop());
    drop(c.pop());
    assert_eq!(live.load(Ordering::Relaxed), 4);
    // Drop order producer-first, then consumer (which frees Shared).
    drop(p);
    drop(c);
    assert_eq!(live.load(Ordering::Relaxed), 0);
}

#[test]
fn consumer_outlives_producer_and_drains() {
    let live = Arc::new(AtomicUsize::new(0));
    let (mut p, mut c) = ring::<Counted>(4);
    for _ in 0..3 {
        p.push(Counted::new(&live)).unwrap();
    }
    drop(p);
    let mut drained = 0;
    while c.pop().is_some() {
        drained += 1;
    }
    assert_eq!(drained, 3);
    assert_eq!(live.load(Ordering::Relaxed), 0);
}

#[test]
fn two_thread_stress_sequence_oracle() {
    let (mut p, mut c) = ring::<usize>(64);
    let producer = std::thread::spawn(move || {
        for i in 0..STRESS_ITEMS {
            let mut v = i;
            loop {
                match p.push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
    });
    let mut expected = 0usize;
    while expected < STRESS_ITEMS {
        match c.pop() {
            Some(v) => {
                assert_eq!(v, expected, "lost, duplicated, or reordered item");
                expected += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(c.pop(), None);
    producer.join().unwrap();
}

#[test]
fn two_thread_stress_owned_payloads() {
    // Same oracle with heap-owning items, so the slot hand-off is
    // additionally checked for payload integrity and leak-freedom
    // (under Miri this exercises the release/acquire publication of
    // the boxed pointer itself).
    const ITEMS: usize = if cfg!(miri) { 1_000 } else { 100_000 };
    let (mut p, mut c) = ring::<Box<usize>>(16);
    let producer = std::thread::spawn(move || {
        for i in 0..ITEMS {
            let mut v = Box::new(i);
            loop {
                match p.push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
    });
    for expected in 0..ITEMS {
        let got = loop {
            match c.pop() {
                Some(v) => break v,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(*got, expected);
    }
    producer.join().unwrap();
}

#[test]
fn mid_stream_teardown_is_leak_free() {
    // Producer thread pushes until the consumer side vanishes partway
    // through; whatever was still queued must be dropped exactly once
    // by the ring's teardown.
    let live = Arc::new(AtomicUsize::new(0));
    let (mut p, mut c) = ring::<Counted>(8);
    let live_p = Arc::clone(&live);
    let producer = std::thread::spawn(move || {
        let mut pushed = 0usize;
        let mut stalls = 0usize;
        // Stop on a persistently full ring — that is how this side
        // observes the consumer disappearing mid-stream.
        while pushed < 500 && stalls < 10_000 {
            if p.push(Counted::new(&live_p)).is_ok() {
                pushed += 1;
                stalls = 0;
            } else {
                stalls += 1;
                std::thread::yield_now();
            }
        }
    });
    let mut popped = 0usize;
    while popped < 100 {
        if c.pop().is_some() {
            popped += 1;
        } else {
            std::thread::yield_now();
        }
    }
    drop(c);
    producer.join().unwrap();
    assert_eq!(live.load(Ordering::Relaxed), 0);
}
