//! Per-port transport supervision: backoff/retry for socket errors.
//!
//! Reuses the congram-setup backoff policy
//! ([`gw_gateway::supervisor::backoff_delay`]) — exponential in the
//! attempt number, capped, deterministically jittered — with one
//! deliberate difference: the setup supervisor's retry budget bounds
//! *attempts* (a congram the network keeps rejecting is eventually
//! failed toward its requester), while an appliance port is never
//! abandoned. Here the budget only caps the *exponent*: once attempts
//! exceed it, retries keep firing at the maximum backoff forever. An
//! operator unplugging a cable for an hour expects the daemon to
//! reconnect when it comes back, not to have given up at attempt four.

use gw_gateway::supervisor::{backoff_delay, SupervisorConfig};
use gw_sim::rng::SimRng;
use gw_sim::time::SimTime;

/// Where one port's transport currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    /// Transport healthy.
    Up,
    /// Transport down; next reconnect attempt due at `until`.
    Backoff {
        /// 1-based number of the attempt that will fire at `until`.
        attempt: u32,
        /// When that attempt is due.
        until: SimTime,
    },
}

/// Counters the supervisor maintains (mirrored into the mgmt port
/// health by the appliance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSupervisorStats {
    /// Transport errors observed while the link was up (each starts a
    /// backoff cycle).
    pub errors: u64,
    /// Reconnect attempts issued.
    pub retries: u64,
    /// Successful recoveries (link came back).
    pub reconnects: u64,
}

/// What [`TransportSupervisor::poll`] wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// Backoff elapsed: attempt to re-establish the transport now.
    Retry {
        /// 1-based attempt number.
        attempt: u32,
    },
}

/// Backoff/retry state machine for one port's transport.
#[derive(Debug)]
pub struct TransportSupervisor {
    config: SupervisorConfig,
    jitter: SimRng,
    state: LinkState,
    stats: TransportSupervisorStats,
}

impl TransportSupervisor {
    /// A supervisor with the given (shared) backoff policy.
    pub fn new(config: SupervisorConfig) -> TransportSupervisor {
        TransportSupervisor {
            jitter: SimRng::new(config.jitter_seed),
            config,
            state: LinkState::Up,
            stats: TransportSupervisorStats::default(),
        }
    }

    /// True while the transport is believed healthy.
    pub fn is_up(&self) -> bool {
        self.state == LinkState::Up
    }

    /// A transport operation failed. Enters backoff (first attempt due
    /// after the base delay) and returns when the first retry is due;
    /// `None` when already backing off (the error changes nothing).
    pub fn error(&mut self, now: SimTime) -> Option<SimTime> {
        match self.state {
            LinkState::Up => {
                self.stats.errors += 1;
                let until = now + backoff_delay(&self.config, 1, &mut self.jitter);
                self.state = LinkState::Backoff { attempt: 1, until };
                Some(until)
            }
            LinkState::Backoff { .. } => None,
        }
    }

    /// Fire due retries. On `Retry`, the caller attempts
    /// `reconnect()+pump()`; success is reported via
    /// [`TransportSupervisor::recovered`], failure needs nothing — the
    /// next attempt is already scheduled (exponent capped at
    /// `retry_budget + 1`, so the cadence settles at `backoff_max`).
    pub fn poll(&mut self, now: SimTime) -> Option<TransportEvent> {
        let LinkState::Backoff { attempt, until } = self.state else {
            return None;
        };
        if now < until {
            return None;
        }
        self.stats.retries += 1;
        let next_attempt = attempt.saturating_add(1).min(self.config.retry_budget + 1);
        let next_until = now + backoff_delay(&self.config, next_attempt, &mut self.jitter);
        self.state = LinkState::Backoff { attempt: next_attempt, until: next_until };
        Some(TransportEvent::Retry { attempt })
    }

    /// The transport is confirmed working again.
    pub fn recovered(&mut self) {
        if !self.is_up() {
            self.stats.reconnects += 1;
            self.state = LinkState::Up;
        }
    }

    /// The next scheduled retry, while down.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match self.state {
            LinkState::Up => None,
            LinkState::Backoff { until, .. } => Some(until),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransportSupervisorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup() -> TransportSupervisor {
        TransportSupervisor::new(SupervisorConfig {
            setup_watchdog: SimTime::from_ms(5),
            retry_budget: 3,
            backoff_base: SimTime::from_ms(2),
            backoff_max: SimTime::from_ms(16),
            jitter_seed: 42,
        })
    }

    #[test]
    fn error_schedules_first_retry_after_base_backoff() {
        let mut s = sup();
        assert!(s.is_up());
        let until = s.error(SimTime::from_ms(10)).unwrap();
        assert!(until >= SimTime::from_ms(12), "base 2 ms");
        assert!(until <= SimTime::from_ms(13), "25% jitter cap");
        assert!(!s.is_up());
        assert!(s.error(SimTime::from_ms(11)).is_none(), "already down");
        assert_eq!(s.stats().errors, 1);
    }

    #[test]
    fn retries_grow_then_plateau_at_backoff_max_forever() {
        let mut s = sup();
        s.error(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..12 {
            let due = s.next_deadline().unwrap();
            assert!(s.poll(due - SimTime::from_ns(1)).is_none(), "not before the deadline");
            assert!(matches!(s.poll(due), Some(TransportEvent::Retry { .. })));
            gaps.push((s.next_deadline().unwrap() - due).as_ns());
            t = due;
        }
        let _ = t;
        // 2, 4, 8, 16, 16, 16, ... ms (each plus <= 25% jitter).
        assert!(gaps[0] >= 4_000_000 && gaps[0] <= 5_000_000, "attempt 2: 4 ms, got {}", gaps[0]);
        assert!(gaps[1] >= 8_000_000 && gaps[1] <= 10_000_000, "attempt 3: 8 ms");
        for g in &gaps[2..] {
            assert!(*g >= 16_000_000 && *g <= 20_000_000, "plateau at max, got {g}");
        }
        assert_eq!(s.stats().retries, 12, "never gives up");
    }

    #[test]
    fn recovery_counts_and_resets_the_schedule() {
        let mut s = sup();
        s.error(SimTime::ZERO);
        s.poll(s.next_deadline().unwrap());
        s.recovered();
        assert!(s.is_up());
        assert_eq!(s.stats().reconnects, 1);
        assert_eq!(s.next_deadline(), None);
        // A fresh error starts over at the base delay.
        let until = s.error(SimTime::from_secs(1)).unwrap();
        assert!(until - SimTime::from_secs(1) <= SimTime::from_ms(3));
    }
}
