//! The GWP1 datagram encapsulation.
//!
//! One gateway payload (a 53-octet cell, an FDDI frame, or a bare
//! acknowledgement) per UDP datagram, behind a fixed 24-octet header:
//!
//! ```text
//!  0      4     5      6      8              16             24
//!  +------+-----+------+------+--------------+--------------+----------+
//!  | "GWP1" magic| kind |flags | len (u16 LE) | seq (u64 LE) | at_ns .. |
//!  +------+-----+------+------+--------------+--------------+----------+
//!  magic[4] kind[1] flags[1] len[2] seq[8] at_ns[8] payload[len]
//! ```
//!
//! `seq` numbers each data datagram per direction (acks echo the
//! highest in-order sequence received); `at_ns` carries the sender's
//! `SimTime` stamp so the receiving core sees the same timestamps the
//! emitting core produced — the property that makes snapshots
//! byte-identical across transports. `len` is the payload length; a
//! datagram whose wire size disagrees with `len` was truncated in
//! flight and is discarded (the ARQ retransmits it).

use crate::PhyError;
use gw_sim::time::SimTime;

/// Leading magic: "GWP1".
pub const MAGIC: [u8; 4] = *b"GWP1";
/// Fixed header length in octets.
pub const HEADER_LEN: usize = 24;
/// `kind`: the payload is one ATM cell.
pub const KIND_CELL: u8 = 0;
/// `kind`: the payload is one FDDI frame.
pub const KIND_FRAME: u8 = 1;
/// `kind`: no payload; `seq` is a cumulative acknowledgement.
pub const KIND_ACK: u8 = 2;
/// `flags` bit 0: the frame travels in the synchronous ring class.
pub const FLAG_SYNC: u8 = 0x01;
/// Largest payload the encapsulation carries. An FDDI frame is at most
/// 4500 octets ([`gw_wire::fddi::MAX_FRAME_SIZE`]); the limit leaves
/// headroom without approaching the 64 KiB UDP ceiling.
pub const MAX_PAYLOAD: usize = 8192;

/// A decoded datagram, borrowing its payload from the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Datagram<'a> {
    /// [`KIND_CELL`], [`KIND_FRAME`], or [`KIND_ACK`].
    pub kind: u8,
    /// Flag bits ([`FLAG_SYNC`]).
    pub flags: u8,
    /// Per-direction sequence number (cumulative ack for `KIND_ACK`).
    pub seq: u64,
    /// The sender-side timestamp of the payload.
    pub at: SimTime,
    /// The payload octets.
    pub payload: &'a [u8],
}

/// Why a received datagram was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed header.
    Runt,
    /// The magic does not match.
    BadMagic,
    /// Unknown `kind` octet.
    BadKind,
    /// The wire length disagrees with the `len` field — the datagram
    /// was truncated (or padded) in flight.
    Truncated,
}

/// Append one encoded datagram to `out`.
pub fn encode(
    kind: u8,
    flags: u8,
    seq: u64,
    at: SimTime,
    payload: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), PhyError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(PhyError::TooLarge(payload.len()));
    }
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.push(flags);
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&at.as_ns().to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Decode one datagram from a received buffer.
pub fn decode(buf: &[u8]) -> Result<Datagram<'_>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Runt);
    }
    if buf[0..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let kind = buf[4];
    if kind > KIND_ACK {
        return Err(DecodeError::BadKind);
    }
    let flags = buf[5];
    let len = u16::from_le_bytes([buf[6], buf[7]]) as usize;
    if buf.len() != HEADER_LEN + len {
        return Err(DecodeError::Truncated);
    }
    let seq = u64::from_le_bytes(buf[8..16].try_into().expect("8 octets"));
    let at_ns = u64::from_le_bytes(buf[16..24].try_into().expect("8 octets"));
    Ok(Datagram { kind, flags, seq, at: SimTime::from_ns(at_ns), payload: &buf[HEADER_LEN..] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        encode(KIND_FRAME, FLAG_SYNC, 7, SimTime::from_ns(123_456), b"payload", &mut buf).unwrap();
        let d = decode(&buf).unwrap();
        assert_eq!(d.kind, KIND_FRAME);
        assert_eq!(d.flags, FLAG_SYNC);
        assert_eq!(d.seq, 7);
        assert_eq!(d.at, SimTime::from_ns(123_456));
        assert_eq!(d.payload, b"payload");
    }

    #[test]
    fn zero_payload_ack() {
        let mut buf = Vec::new();
        encode(KIND_ACK, 0, u64::MAX, SimTime::ZERO, &[], &mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_LEN);
        let d = decode(&buf).unwrap();
        assert_eq!(d.kind, KIND_ACK);
        assert_eq!(d.seq, u64::MAX);
        assert!(d.payload.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        encode(KIND_CELL, 0, 1, SimTime::ZERO, &[0xAA; 53], &mut buf).unwrap();
        for keep in 0..buf.len() {
            let err = decode(&buf[..keep]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Runt | DecodeError::Truncated),
                "keep={keep} gave {err:?}"
            );
        }
        assert!(decode(&buf).is_ok());
    }

    #[test]
    fn bad_magic_and_kind_rejected() {
        let mut buf = Vec::new();
        encode(KIND_CELL, 0, 1, SimTime::ZERO, &[], &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode(&bad).unwrap_err(), DecodeError::BadMagic);
        let mut bad = buf.clone();
        bad[4] = 9;
        assert_eq!(decode(&bad).unwrap_err(), DecodeError::BadKind);
    }

    #[test]
    fn oversized_payload_refused() {
        let mut buf = Vec::new();
        let err = encode(KIND_FRAME, 0, 0, SimTime::ZERO, &[0; MAX_PAYLOAD + 1], &mut buf);
        assert_eq!(err.unwrap_err(), PhyError::TooLarge(MAX_PAYLOAD + 1));
    }
}
