//! Wall-clock to cycle-clock mapping for appliance mode.
//!
//! The gateway core counts time in integer nanoseconds quantized to
//! its 40 ns cycle (25 MHz, §5.5). In appliance mode there is no event
//! queue driving that clock — real time is. [`WallClock`] pins an
//! epoch at daemon start and reads the monotonic clock as a `SimTime`,
//! floored to the cycle boundary: hardware latches inputs on clock
//! edges, so between edges nothing happens, and two reads within one
//! 40 ns cycle are the *same* gateway instant.

use gw_sim::time::{SimTime, CYCLE_NS};
use std::time::Instant;

/// Maps the OS monotonic clock onto the gateway's 40 ns cycle clock.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Pin the epoch: this instant is gateway time zero.
    pub fn start() -> WallClock {
        WallClock { epoch: Instant::now() }
    }

    /// Monotonic nanoseconds since the epoch, floored to the cycle
    /// boundary. Saturates at `u64::MAX` cycles (584 years of uptime).
    pub fn now(&self) -> SimTime {
        let ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SimTime::from_ns(ns - ns % CYCLE_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_monotonic_and_cycle_quantized() {
        let clock = WallClock::start();
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let t = clock.now();
            assert_eq!(t.as_ns() % CYCLE_NS, 0);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn time_advances() {
        let clock = WallClock::start();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now() - a >= SimTime::from_ms(1));
    }
}
