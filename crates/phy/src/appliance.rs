//! The appliance core: one gateway between two supervised phy ports.
//!
//! This is the engine behind `gwd`, factored out of the binary so the
//! e2e tests can drive it with loopback or UDP phys and no signals:
//!
//! * [`Appliance::step`] is one tick — pump both transports (entering
//!   backoff/reconnect through the [`TransportSupervisor`]s on I/O
//!   errors), admit arrived traffic, run the gateway's timers, and
//!   drain the transmit buffer toward the frame port;
//! * [`Appliance::apply_config`] installs congrams *additively* — a
//!   live reload never tears down an existing congram, so in-flight
//!   frames (partial reassemblies, staged transmissions) survive;
//! * [`Appliance::drain`] is the graceful shutdown: stop admitting,
//!   keep timers and transports moving until
//!   [`gw_gateway::gateway::Residue`] is clean and nothing is left on
//!   the wire, then report the conservation audit (C1–C7).
//!
//! Transport state feeds the mgmt port-health machine: an I/O error
//! moves the port to `Reconnecting`, every backoff attempt bumps its
//! retry counter, and recovery re-enters through `Degraded` — all
//! visible in `gw-snapshot/1`.

use crate::supervisor::{TransportEvent, TransportSupervisor};
use crate::{CellPhy, FramePhy, PhyStats};
use gw_gateway::gateway::{Output, Residue};
use gw_gateway::{AnyGateway, GatewayConfig, ShardExecutor};
use gw_mgmt::Port;
use gw_sim::time::SimTime;
use gw_wire::atm::{Vci, CELL_SIZE};
use gw_wire::fddi::FddiAddr;
use gw_wire::mchip::Icn;

/// One congram the appliance should serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CongramSpec {
    /// ATM-side VC.
    pub vci: u16,
    /// ICN on the ATM interface.
    pub atm_icn: u16,
    /// ICN on the FDDI interface.
    pub fddi_icn: u16,
    /// Destination FDDI station.
    pub station: u32,
    /// Ring service class.
    pub synchronous: bool,
}

/// Appliance configuration (the reloadable part).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplianceConfig {
    /// Congrams to serve.
    pub congrams: Vec<CongramSpec>,
}

impl ApplianceConfig {
    /// Parse the `gwd` config format: one directive per line,
    /// `congram <vci> <atm_icn> <fddi_icn> <station> <sync|async>`,
    /// with `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<ApplianceConfig, String> {
        let mut congrams = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("congram") => {
                    let mut num = |name: &str| -> Result<u64, String> {
                        parts
                            .next()
                            .ok_or_else(|| err(&format!("missing {name}")))?
                            .parse::<u64>()
                            .map_err(|_| err(&format!("bad {name}")))
                    };
                    let vci = num("vci")?;
                    let atm_icn = num("atm_icn")?;
                    let fddi_icn = num("fddi_icn")?;
                    let station = num("station")?;
                    let synchronous = match parts.next() {
                        Some("sync") => true,
                        Some("async") => false,
                        _ => return Err(err("class must be sync|async")),
                    };
                    if parts.next().is_some() {
                        return Err(err("trailing tokens"));
                    }
                    congrams.push(CongramSpec {
                        vci: u16::try_from(vci).map_err(|_| err("vci out of range"))?,
                        atm_icn: u16::try_from(atm_icn).map_err(|_| err("atm_icn out of range"))?,
                        fddi_icn: u16::try_from(fddi_icn)
                            .map_err(|_| err("fddi_icn out of range"))?,
                        station: u32::try_from(station).map_err(|_| err("station out of range"))?,
                        synchronous,
                    });
                }
                Some(other) => return Err(err(&format!("unknown directive {other:?}"))),
                None => {}
            }
        }
        Ok(ApplianceConfig { congrams })
    }
}

/// Outcome of a graceful drain.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Gateway time when the drain loop stopped.
    pub end: SimTime,
    /// What the gateway still holds (all zero on success).
    pub residue: Residue,
    /// Conservation-equation violations (empty on success).
    pub violations: Vec<String>,
    /// Cells/frames still unacknowledged on the transports.
    pub in_flight: usize,
}

impl DrainReport {
    /// True when the drain reached full quiescence with the books
    /// balanced: zero residue, C1–C7 hold, nothing left on the wire.
    pub fn clean(&self) -> bool {
        self.residue.is_clean() && self.violations.is_empty() && self.in_flight == 0
    }
}

/// The gateway plus its two supervised ports.
pub struct Appliance {
    gw: AnyGateway,
    cell: Box<dyn CellPhy>,
    frame: Box<dyn FramePhy>,
    atm_sup: TransportSupervisor,
    fddi_sup: TransportSupervisor,
    installed: Vec<CongramSpec>,
    draining: bool,
    cell_buf: Vec<(SimTime, [u8; CELL_SIZE])>,
    frame_buf: Vec<(SimTime, Vec<u8>, bool)>,
    out: Vec<Output>,
}

impl Appliance {
    /// Assemble the appliance. The management plane is forced on —
    /// appliance mode without port health and counters would be
    /// unobservable — and both port supervisors share the gateway's
    /// configured backoff policy.
    pub fn new(
        config: GatewayConfig,
        fddi_capacity_bps: u64,
        cell: Box<dyn CellPhy>,
        frame: Box<dyn FramePhy>,
    ) -> Appliance {
        Appliance::new_sharded(config, fddi_capacity_bps, cell, frame, 1)
    }

    /// [`Appliance::new`] with the SAR stage partitioned across
    /// `shards` cores behind SPSC rings (`shards <= 1` is the classic
    /// single-threaded gateway, bit for bit).
    pub fn new_sharded(
        mut config: GatewayConfig,
        fddi_capacity_bps: u64,
        cell: Box<dyn CellPhy>,
        frame: Box<dyn FramePhy>,
        shards: usize,
    ) -> Appliance {
        if config.management.is_none() {
            config.management = Some(gw_mgmt::MgmtConfig::default());
        }
        let policy = config.supervisor;
        let gw = AnyGateway::build(
            config,
            FddiAddr::station(0),
            fddi_capacity_bps,
            shards,
            ShardExecutor::Threads,
        );
        Appliance {
            gw,
            cell,
            frame,
            atm_sup: TransportSupervisor::new(policy),
            fddi_sup: TransportSupervisor::new(policy),
            installed: Vec::new(),
            draining: false,
            cell_buf: Vec::new(),
            frame_buf: Vec::new(),
            out: Vec::new(),
        }
    }

    /// The gateway under the hood (snapshots, stats, residue). Derefs
    /// to [`gw_gateway::Gateway`] for every read accessor.
    pub fn gateway(&self) -> &AnyGateway {
        &self.gw
    }

    /// Mutable gateway access (snapshots take `&mut`). Snapshots go
    /// through [`AnyGateway::snapshot`], which aggregates per-shard
    /// counters when the arrangement is sharded.
    pub fn gateway_mut(&mut self) -> &mut AnyGateway {
        &mut self.gw
    }

    /// Congrams currently installed, in installation order.
    pub fn congrams(&self) -> &[CongramSpec] {
        &self.installed
    }

    /// True once a drain has begun (no new traffic is admitted).
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Transport counters summed over both ports.
    pub fn transport_stats(&self) -> PhyStats {
        let mut s = self.cell.stats();
        s.merge(&self.frame.stats());
        s
    }

    /// Install every congram in `config` that is not already live.
    /// Additive by design: reload never tears down an existing congram,
    /// so partial reassemblies and staged frames are untouched.
    /// Returns how many congrams were newly installed.
    pub fn apply_config(&mut self, config: &ApplianceConfig) -> usize {
        let mut added = 0;
        for spec in &config.congrams {
            if self.installed.iter().any(|s| s.vci == spec.vci) {
                continue;
            }
            self.gw.install_congram(
                Vci(spec.vci),
                Icn(spec.atm_icn),
                Icn(spec.fddi_icn),
                FddiAddr::station(spec.station),
                spec.synchronous,
            );
            self.installed.push(*spec);
            added += 1;
        }
        added
    }

    fn pump_port(&mut self, now: SimTime, port: Port) {
        let up = match port {
            Port::Atm => self.atm_sup.is_up(),
            Port::Fddi => self.fddi_sup.is_up(),
        };
        if up {
            let res = match port {
                Port::Atm => self.cell.pump(now),
                Port::Fddi => self.frame.pump(now),
            };
            if res.is_err() {
                match port {
                    Port::Atm => self.atm_sup.error(now),
                    Port::Fddi => self.fddi_sup.error(now),
                };
                self.gw.note_transport_down(now, port);
            }
            return;
        }
        let due = match port {
            Port::Atm => self.atm_sup.poll(now),
            Port::Fddi => self.fddi_sup.poll(now),
        };
        if let Some(TransportEvent::Retry { .. }) = due {
            self.gw.note_transport_retry(now, port);
            let res = match port {
                Port::Atm => self.cell.reconnect().and_then(|()| self.cell.pump(now)),
                Port::Fddi => self.frame.reconnect().and_then(|()| self.frame.pump(now)),
            };
            if res.is_ok() {
                match port {
                    Port::Atm => self.atm_sup.recovered(),
                    Port::Fddi => self.fddi_sup.recovered(),
                }
                self.gw.note_transport_up(now, port);
            }
        }
    }

    fn route_outputs(&mut self, now: SimTime) {
        let mut out = std::mem::take(&mut self.out);
        for o in out.drain(..) {
            match o {
                Output::AtmCell { at, cell } => {
                    // A cell emitted into a downed port is lost exactly
                    // like traffic into a severed link — the ARQ only
                    // protects what reaches the transport.
                    if self.atm_sup.is_up() && self.cell.send_cell(at, &cell).is_err() {
                        self.atm_sup.error(now);
                        self.gw.note_transport_down(now, Port::Atm);
                    }
                }
                Output::FddiFrameQueued { .. } => {
                    // Drained from the tx buffer below.
                }
                // The appliance has no signaling fabric to issue
                // connection requests into; congrams are installed via
                // config. Dynamic setups would need a control peer.
                Output::AtmConnectionRequest { .. } | Output::AtmConnectionRelease { .. } => {}
            }
        }
        self.out = out;
    }

    /// One appliance tick at gateway time `now`.
    pub fn step(&mut self, now: SimTime) {
        self.pump_port(now, Port::Atm);
        self.pump_port(now, Port::Fddi);

        // Admit arrived traffic — unless draining (shutdown stops
        // admitting; peers see backpressure through unacked datagrams).
        if !self.draining {
            if self.atm_sup.is_up() {
                self.cell_buf.clear();
                if self.cell.poll_cells(&mut self.cell_buf).is_err() {
                    self.atm_sup.error(now);
                    self.gw.note_transport_down(now, Port::Atm);
                }
                let cells = std::mem::take(&mut self.cell_buf);
                for (_, cell) in &cells {
                    let mut out = std::mem::take(&mut self.out);
                    self.gw.deliver_cells(now, std::slice::from_ref(cell), &mut out);
                    self.out = out;
                    self.route_outputs(now);
                }
                self.cell_buf = cells;
            }
            if self.fddi_sup.is_up() {
                self.frame_buf.clear();
                if self.frame.poll_frames(&mut self.frame_buf).is_err() {
                    self.fddi_sup.error(now);
                    self.gw.note_transport_down(now, Port::Fddi);
                }
                let frames = std::mem::take(&mut self.frame_buf);
                for (_, frame, _) in &frames {
                    self.out = self.gw.fddi_frame_in(now, frame);
                    self.route_outputs(now);
                }
                self.frame_buf = frames;
            }
        }

        // Timers: reassembly deadlines, NPE scans, liveness, health.
        let mut out = std::mem::take(&mut self.out);
        out.clear();
        self.gw.advance_into(now, &mut out);
        self.out = out;
        self.route_outputs(now);

        // Drain staged transmissions toward the frame port. A downed
        // port leaves frames staged; the tx buffer's own shedding and
        // overflow accounting applies, as it would against a stalled
        // ring.
        while self.fddi_sup.is_up() {
            let Some((frame, sync)) = self.gw.pop_fddi_tx(now) else { break };
            match self.frame.send_frame(now, frame, sync) {
                Ok(Some(buf)) => self.gw.recycle_frame(buf),
                Ok(None) => {}
                Err(_) => {
                    self.fddi_sup.error(now);
                    self.gw.note_transport_down(now, Port::Fddi);
                    break;
                }
            }
        }
    }

    /// Stop admitting new traffic; subsequent [`Appliance::step`]s only
    /// run timers and flush outbound state.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// True when nothing is held anywhere: gateway residue clean, no
    /// staged transmissions, nothing unacknowledged on the transports.
    pub fn is_quiescent(&self) -> bool {
        self.gw.residue().is_clean()
            && self.gw.fddi_tx_pending() == 0
            && self.cell.in_flight() == 0
            && self.frame.in_flight() == 0
    }

    /// Graceful drain: stop admitting, then step timers forward from
    /// `now` (following the gateway's own deadlines, at most 1 ms per
    /// step) until quiescent or `budget` is exhausted. The report
    /// carries the residue and conservation audit either way.
    pub fn drain(&mut self, now: SimTime, budget: SimTime) -> DrainReport {
        self.begin_drain();
        let deadline = now + budget;
        let max_step = SimTime::from_ms(1);
        let mut t = now;
        loop {
            self.step(t);
            if self.is_quiescent() || t >= deadline {
                break;
            }
            let mut next = t + max_step;
            if let Some(d) = self.gw.next_deadline() {
                if d > t && d < next {
                    next = d.ceil_to_cycle();
                }
            }
            t = SimTime::from_ns(next.as_ns().min(deadline.as_ns()));
        }
        DrainReport {
            end: t,
            residue: self.gw.residue(),
            violations: self.gw.check_conservation(),
            in_flight: self.cell.in_flight() + self.frame.in_flight(),
        }
    }
}
