//! Transport-blind gateway ports.
//!
//! The paper's gateway is an appliance between two physical ports: the
//! AIC's cell side toward the ATM network and the SUPERNET frame side
//! toward the FDDI ring. This crate extracts those two seams behind
//! the [`CellPhy`] and [`FramePhy`] traits so the *same* protocol core
//! ([`gw_gateway::gateway::Gateway`]) can be driven identically by
//!
//! * the co-sim testbed (which wires the traits to its in-process
//!   network models through the [`loopback`] pair),
//! * the [`loopback`] pair on its own (unit and appliance tests), and
//! * a real OS transport — the [`udp`] encapsulation, which carries
//!   timestamped cells and frames in UDP datagrams with a tiny
//!   lockstep-reliable ARQ so datagram loss, duplication, and
//!   truncation at the transport never reach the gateway core.
//!
//! On top sit the appliance pieces: a [`clock::WallClock`] mapping real
//! time onto the 40 ns cycle clock, a per-port
//! [`supervisor::TransportSupervisor`] reusing the congram-setup
//! backoff policy for socket errors and link flaps, and the
//! [`appliance::Appliance`] driver with graceful drain and live
//! config reload — the engine behind the `gwd` daemon.
//!
//! Layering: `gw-phy` may depend on the wire formats and the gateway
//! core; nothing below it (wire, sar, core) may depend back on a
//! transport. `gw-lint` enforces this.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod appliance;
pub mod clock;
pub mod encap;
pub mod loopback;
pub mod supervisor;
pub mod udp;

pub use appliance::{Appliance, ApplianceConfig, CongramSpec, DrainReport};
pub use clock::WallClock;
pub use loopback::{loopback_cell_pair, loopback_frame_pair, LoopbackCellPhy, LoopbackFramePhy};
pub use supervisor::{TransportEvent, TransportSupervisor};
pub use udp::{udp_cell_pair, udp_frame_pair, TransportFaultConfig, UdpCellPhy, UdpFramePhy};

use gw_sim::time::SimTime;
use gw_wire::atm::CELL_SIZE;

/// Why a phy operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhyError {
    /// The OS transport failed (socket error); the port supervisor
    /// treats this as a link flap and starts reconnecting.
    Io(std::io::ErrorKind),
    /// The payload exceeds what the encapsulation can carry.
    TooLarge(usize),
}

impl std::fmt::Display for PhyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhyError::Io(kind) => write!(f, "transport i/o error: {kind:?}"),
            PhyError::TooLarge(len) => write!(f, "payload of {len} octets exceeds encapsulation"),
        }
    }
}

impl std::error::Error for PhyError {}

impl From<std::io::Error> for PhyError {
    fn from(e: std::io::Error) -> PhyError {
        PhyError::Io(e.kind())
    }
}

/// Transport-level counters a phy maintains. All zero for transports
/// with nothing to count (loopback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhyStats {
    /// Datagrams put on the wire (first transmissions, not retries).
    pub datagrams_tx: u64,
    /// In-sequence datagrams accepted off the wire.
    pub datagrams_rx: u64,
    /// Retransmissions of unacknowledged datagrams.
    pub retransmits: u64,
    /// Duplicate datagrams discarded by the sequence check.
    pub dup_drops: u64,
    /// Datagrams discarded as undecodable (runt, bad magic, length
    /// mismatch from truncation).
    pub decode_drops: u64,
    /// Fault injector: transmissions dropped at the seam.
    pub faults_dropped: u64,
    /// Fault injector: transmissions duplicated at the seam.
    pub faults_duplicated: u64,
    /// Fault injector: transmissions truncated at the seam.
    pub faults_truncated: u64,
}

impl PhyStats {
    /// Fold another counter set into this one (summing across the
    /// endpoints of a pair, or across ports).
    pub fn merge(&mut self, other: &PhyStats) {
        self.datagrams_tx += other.datagrams_tx;
        self.datagrams_rx += other.datagrams_rx;
        self.retransmits += other.retransmits;
        self.dup_drops += other.dup_drops;
        self.decode_drops += other.decode_drops;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_truncated += other.faults_truncated;
    }

    /// True when the injected-fault counters show all three transport
    /// fault classes actually fired (the phy-soak hollow-coverage gate).
    pub fn faults_exercised(&self) -> bool {
        self.faults_dropped > 0 && self.faults_duplicated > 0 && self.faults_truncated > 0
    }
}

/// One endpoint of the gateway's ATM cell port (the AIC seam).
///
/// Cells travel with the `SimTime` they were emitted at; the receiving
/// side must observe them in send order with those timestamps intact —
/// that invariant is what makes a transport swap invisible to the
/// cycle-accurate core (the testbed byte-compares snapshots across
/// transports to prove it).
pub trait CellPhy {
    /// Queue one 53-octet cell stamped `at` toward the peer.
    fn send_cell(&mut self, at: SimTime, cell: &[u8; CELL_SIZE]) -> Result<(), PhyError>;

    /// Append every cell that has arrived in order, oldest first.
    fn poll_cells(&mut self, out: &mut Vec<(SimTime, [u8; CELL_SIZE])>) -> Result<(), PhyError>;

    /// Move the transport: receive pending datagrams, send acks, and
    /// retransmit unacknowledged data. Call until [`CellPhy::in_flight`]
    /// reaches zero to flush synchronously (lockstep mode), or once per
    /// tick in wall-clock mode.
    fn pump(&mut self, now: SimTime) -> Result<(), PhyError>;

    /// Re-establish the transport after an I/O error (rebind/reconnect).
    /// Queued unacknowledged cells survive and retransmit after the
    /// reconnect. Default: nothing to re-establish.
    fn reconnect(&mut self) -> Result<(), PhyError> {
        Ok(())
    }

    /// Cells sent but not yet acknowledged by the peer.
    fn in_flight(&self) -> usize {
        0
    }

    /// Transport counters.
    fn stats(&self) -> PhyStats {
        PhyStats::default()
    }
}

/// One endpoint of the gateway's SUPERNET frame port (the ring seam).
pub trait FramePhy {
    /// Queue one FDDI frame stamped `at` toward the peer; `synchronous`
    /// carries the frame's ring service class. Returns `Some(buffer)`
    /// when the transport copied the frame and hands the buffer back
    /// for recycling into the MPP frame pool; `None` when ownership
    /// moved into the transport (the loopback pair passes the buffer
    /// through, preserving the pool census across the seam).
    fn send_frame(
        &mut self,
        at: SimTime,
        frame: Vec<u8>,
        synchronous: bool,
    ) -> Result<Option<Vec<u8>>, PhyError>;

    /// Append every frame that has arrived in order, oldest first.
    fn poll_frames(&mut self, out: &mut Vec<(SimTime, Vec<u8>, bool)>) -> Result<(), PhyError>;

    /// Move the transport (see [`CellPhy::pump`]).
    fn pump(&mut self, now: SimTime) -> Result<(), PhyError>;

    /// Re-establish the transport after an I/O error (see
    /// [`CellPhy::reconnect`]).
    fn reconnect(&mut self) -> Result<(), PhyError> {
        Ok(())
    }

    /// Frames sent but not yet acknowledged by the peer.
    fn in_flight(&self) -> usize {
        0
    }

    /// Transport counters.
    fn stats(&self) -> PhyStats {
        PhyStats::default()
    }
}

/// Which transport a harness should put under the gateway's two ports.
#[derive(Debug, Clone, Default)]
pub enum PhyMode {
    /// In-process loopback queues (the co-sim default; zero overhead).
    #[default]
    Loopback,
    /// Real UDP datagrams over localhost sockets, with optional
    /// injected transport faults at the seam.
    Udp {
        /// Fault injection applied at the datagram seam.
        faults: TransportFaultConfig,
    },
}
