//! Real-packet transport: GWP1 encapsulation over UDP, with a tiny
//! reliable in-order ARQ.
//!
//! The gateway core is cycle-accurate and deterministic; the property
//! the transport must preserve is *exact* in-order delivery of the
//! sender's `(timestamp, payload)` sequence. UDP gives none of that,
//! so each direction runs a minimal ARQ: every data datagram carries a
//! sequence number, the receiver holds out-of-order arrivals and
//! releases them in sequence, duplicates are discarded, truncated
//! datagrams fail the length check and are dropped, and the sender
//! retransmits everything unacknowledged (every `pump` in
//! lockstep mode; on a retransmit timer in wall-clock mode). With that
//! in place, injected datagram drop/duplication/truncation at the seam
//! — see [`TransportFaultConfig`] — is invisible above the phy, which
//! is exactly what the chaos phy-soak proves by byte-comparing
//! snapshots against the loopback run.
//!
//! Socket errors (e.g. ICMP port-unreachable surfacing as
//! `ConnectionRefused` on a connected UDP socket) are *not* masked:
//! they bubble out of [`CellPhy::pump`]/[`FramePhy::pump`] so the port
//! supervisor can start its backoff/reconnect cycle. Unacknowledged
//! datagrams survive a [`CellPhy::reconnect`] and retransmit once the
//! transport is back — a flap loses no traffic, only time.

use crate::encap::{
    self, DecodeError, FLAG_SYNC, HEADER_LEN, KIND_ACK, KIND_CELL, KIND_FRAME, MAX_PAYLOAD,
};
use crate::{CellPhy, FramePhy, PhyError, PhyStats};
use gw_sim::rng::SimRng;
use gw_sim::time::SimTime;
use gw_wire::atm::CELL_SIZE;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Datagram-level fault injection applied at the transmit seam (both
/// first transmissions and retransmissions, acks included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaultConfig {
    /// Probability a transmission is silently discarded.
    pub drop: f64,
    /// Probability a transmission is sent twice back to back.
    pub duplicate: f64,
    /// Probability a transmission is cut to a strict prefix.
    pub truncate: f64,
    /// Seed for the deterministic fault stream.
    pub seed: u64,
}

impl TransportFaultConfig {
    /// No faults.
    pub fn none() -> TransportFaultConfig {
        TransportFaultConfig { drop: 0.0, duplicate: 0.0, truncate: 0.0, seed: 0 }
    }

    /// True when any fault class has nonzero probability.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.truncate > 0.0
    }
}

impl Default for TransportFaultConfig {
    fn default() -> TransportFaultConfig {
        TransportFaultConfig::none()
    }
}

#[derive(Debug)]
struct FaultHook {
    config: TransportFaultConfig,
    rng: SimRng,
}

enum Verdict {
    Deliver,
    Drop,
    Duplicate,
    Truncate(usize),
}

impl FaultHook {
    fn verdict(&mut self, len: usize) -> Verdict {
        if self.rng.chance(self.config.drop) {
            Verdict::Drop
        } else if self.rng.chance(self.config.duplicate) {
            Verdict::Duplicate
        } else if len > 0 && self.rng.chance(self.config.truncate) {
            Verdict::Truncate(self.rng.below(len as u64) as usize)
        } else {
            Verdict::Deliver
        }
    }
}

/// A received, decoded, in-order datagram awaiting pickup.
#[derive(Debug)]
struct Held {
    kind: u8,
    flags: u8,
    at: SimTime,
    payload: Vec<u8>,
}

#[derive(Debug)]
struct Pending {
    seq: u64,
    bytes: Vec<u8>,
}

/// Out-of-order datagrams held beyond this count are dropped (the ARQ
/// retransmits them); bounds memory against a pathological peer.
const MAX_HOLD: usize = 4096;

/// The per-direction-pair ARQ over one connected UDP socket.
#[derive(Debug)]
struct UdpLink {
    sock: Option<UdpSocket>,
    local: SocketAddr,
    peer: SocketAddr,
    next_seq: u64,
    unacked: VecDeque<Pending>,
    rx_next: u64,
    rx_hold: BTreeMap<u64, Held>,
    inbox: VecDeque<Held>,
    ack_due: bool,
    faults: Option<FaultHook>,
    /// Lockstep (co-sim) mode retransmits every pump; wall-clock mode
    /// waits out `rto` between retransmission rounds.
    lockstep: bool,
    rto: SimTime,
    next_retx: SimTime,
    stats: PhyStats,
    recv_buf: Box<[u8]>,
}

fn bind_nonblocking(local: SocketAddr, peer: SocketAddr) -> io::Result<UdpSocket> {
    let sock = UdpSocket::bind(local)?;
    sock.set_nonblocking(true)?;
    sock.connect(peer)?;
    Ok(sock)
}

impl UdpLink {
    fn open(
        local: SocketAddr,
        peer: SocketAddr,
        faults: TransportFaultConfig,
        lockstep: bool,
        rto: SimTime,
    ) -> io::Result<UdpLink> {
        UdpLink::from_socket(bind_nonblocking(local, peer)?, peer, faults, lockstep, rto)
    }

    fn from_socket(
        sock: UdpSocket,
        peer: SocketAddr,
        faults: TransportFaultConfig,
        lockstep: bool,
        rto: SimTime,
    ) -> io::Result<UdpLink> {
        let local = sock.local_addr()?;
        let faults =
            faults.is_active().then(|| FaultHook { rng: SimRng::new(faults.seed), config: faults });
        Ok(UdpLink {
            sock: Some(sock),
            local,
            peer,
            next_seq: 0,
            unacked: VecDeque::new(),
            rx_next: 0,
            rx_hold: BTreeMap::new(),
            inbox: VecDeque::new(),
            ack_due: false,
            faults,
            lockstep,
            rto,
            next_retx: SimTime::ZERO,
            stats: PhyStats::default(),
            recv_buf: vec![0u8; HEADER_LEN + MAX_PAYLOAD + 64].into_boxed_slice(),
        })
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), PhyError> {
        let sock = self.sock.as_ref().ok_or(PhyError::Io(io::ErrorKind::NotConnected))?;
        match sock.send(bytes) {
            Ok(_) => Ok(()),
            // A full socket buffer is transient loss; the ARQ covers it.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn transmit(&mut self, bytes: &[u8]) -> Result<(), PhyError> {
        let verdict = match &mut self.faults {
            Some(f) => f.verdict(bytes.len()),
            None => Verdict::Deliver,
        };
        match verdict {
            Verdict::Deliver => self.put(bytes),
            Verdict::Drop => {
                self.stats.faults_dropped += 1;
                Ok(())
            }
            Verdict::Duplicate => {
                self.stats.faults_duplicated += 1;
                self.put(bytes)?;
                self.put(bytes)
            }
            Verdict::Truncate(keep) => {
                self.stats.faults_truncated += 1;
                self.put(&bytes[..keep])
            }
        }
    }

    fn send(&mut self, kind: u8, flags: u8, at: SimTime, payload: &[u8]) -> Result<(), PhyError> {
        let seq = self.next_seq;
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        encap::encode(kind, flags, seq, at, payload, &mut bytes)?;
        self.next_seq += 1;
        self.stats.datagrams_tx += 1;
        let res = self.transmit(&bytes);
        // Queued even when the transmission failed: it retransmits once
        // the supervisor brings the transport back.
        self.unacked.push_back(Pending { seq, bytes });
        res
    }

    fn handle_datagram(&mut self, len: usize) {
        let d = match encap::decode(&self.recv_buf[..len]) {
            Ok(d) => d,
            Err(
                DecodeError::Runt
                | DecodeError::Truncated
                | DecodeError::BadMagic
                | DecodeError::BadKind,
            ) => {
                self.stats.decode_drops += 1;
                return;
            }
        };
        if d.kind == KIND_ACK {
            while self.unacked.front().is_some_and(|p| p.seq <= d.seq) {
                self.unacked.pop_front();
            }
            return;
        }
        let held = Held { kind: d.kind, flags: d.flags, at: d.at, payload: d.payload.to_vec() };
        if d.seq < self.rx_next {
            self.stats.dup_drops += 1;
            // Re-ack so the peer stops retransmitting this datagram.
            self.ack_due = true;
        } else if d.seq == self.rx_next {
            self.stats.datagrams_rx += 1;
            self.inbox.push_back(held);
            self.rx_next += 1;
            while let Some(next) = self.rx_hold.remove(&self.rx_next) {
                self.stats.datagrams_rx += 1;
                self.inbox.push_back(next);
                self.rx_next += 1;
            }
            self.ack_due = true;
        } else {
            // Out of order: park it until the gap fills.
            if self.rx_hold.contains_key(&d.seq) {
                self.stats.dup_drops += 1;
            } else if self.rx_hold.len() < MAX_HOLD {
                self.rx_hold.insert(d.seq, held);
            }
            self.ack_due = true;
        }
    }

    fn pump(&mut self, now: SimTime) -> Result<(), PhyError> {
        // Drain every pending datagram off the socket.
        loop {
            let sock = self.sock.as_ref().ok_or(PhyError::Io(io::ErrorKind::NotConnected))?;
            match sock.recv(&mut self.recv_buf) {
                Ok(n) => self.handle_datagram(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e.into()),
            }
        }
        // Acknowledge progress (cumulative, only once something has
        // arrived in sequence).
        if self.ack_due {
            self.ack_due = false;
            if self.rx_next > 0 {
                let mut ack = Vec::with_capacity(HEADER_LEN);
                encap::encode(KIND_ACK, 0, self.rx_next - 1, now, &[], &mut ack)?;
                self.transmit(&ack)?;
            }
        }
        // Retransmit the unacknowledged tail.
        if !self.unacked.is_empty() && (self.lockstep || now >= self.next_retx) {
            for i in 0..self.unacked.len() {
                let bytes = std::mem::take(&mut self.unacked[i].bytes);
                self.stats.retransmits += 1;
                let res = self.transmit(&bytes);
                self.unacked[i].bytes = bytes;
                res?;
            }
            self.next_retx = now + self.rto;
        }
        Ok(())
    }

    fn reconnect(&mut self) -> Result<(), PhyError> {
        // Free the old socket first so the local port can be rebound.
        self.sock = None;
        let sock = bind_nonblocking(self.local, self.peer)?;
        self.sock = Some(sock);
        Ok(())
    }

    fn pop(&mut self) -> Option<Held> {
        self.inbox.pop_front()
    }

    fn in_flight(&self) -> usize {
        self.unacked.len()
    }
}

/// The cell port over UDP.
#[derive(Debug)]
pub struct UdpCellPhy {
    link: UdpLink,
}

impl UdpCellPhy {
    /// Bind `local`, connect to `peer`. `lockstep` retransmits on every
    /// pump (co-sim flush); otherwise `rto` paces retransmissions
    /// (wall-clock daemon mode).
    pub fn bind(
        local: SocketAddr,
        peer: SocketAddr,
        faults: TransportFaultConfig,
        lockstep: bool,
        rto: SimTime,
    ) -> io::Result<UdpCellPhy> {
        Ok(UdpCellPhy { link: UdpLink::open(local, peer, faults, lockstep, rto)? })
    }

    /// The bound local address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.link.local
    }
}

impl CellPhy for UdpCellPhy {
    fn send_cell(&mut self, at: SimTime, cell: &[u8; CELL_SIZE]) -> Result<(), PhyError> {
        self.link.send(KIND_CELL, 0, at, cell)
    }

    fn poll_cells(&mut self, out: &mut Vec<(SimTime, [u8; CELL_SIZE])>) -> Result<(), PhyError> {
        while let Some(h) = self.link.pop() {
            if h.kind == KIND_CELL && h.payload.len() == CELL_SIZE {
                let mut cell = [0u8; CELL_SIZE];
                cell.copy_from_slice(&h.payload);
                out.push((h.at, cell));
            } else {
                self.link.stats.decode_drops += 1;
            }
        }
        Ok(())
    }

    fn pump(&mut self, now: SimTime) -> Result<(), PhyError> {
        self.link.pump(now)
    }

    fn reconnect(&mut self) -> Result<(), PhyError> {
        self.link.reconnect()
    }

    fn in_flight(&self) -> usize {
        self.link.in_flight()
    }

    fn stats(&self) -> PhyStats {
        self.link.stats
    }
}

/// The frame port over UDP.
#[derive(Debug)]
pub struct UdpFramePhy {
    link: UdpLink,
}

impl UdpFramePhy {
    /// Bind `local`, connect to `peer` (see [`UdpCellPhy::bind`]).
    pub fn bind(
        local: SocketAddr,
        peer: SocketAddr,
        faults: TransportFaultConfig,
        lockstep: bool,
        rto: SimTime,
    ) -> io::Result<UdpFramePhy> {
        Ok(UdpFramePhy { link: UdpLink::open(local, peer, faults, lockstep, rto)? })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.link.local
    }
}

impl FramePhy for UdpFramePhy {
    fn send_frame(
        &mut self,
        at: SimTime,
        frame: Vec<u8>,
        synchronous: bool,
    ) -> Result<Option<Vec<u8>>, PhyError> {
        let flags = if synchronous { FLAG_SYNC } else { 0 };
        self.link.send(KIND_FRAME, flags, at, &frame)?;
        // The encapsulation copied the frame: hand the buffer back for
        // recycling into the sender's frame pool.
        Ok(Some(frame))
    }

    fn poll_frames(&mut self, out: &mut Vec<(SimTime, Vec<u8>, bool)>) -> Result<(), PhyError> {
        while let Some(h) = self.link.pop() {
            if h.kind == KIND_FRAME {
                out.push((h.at, h.payload, h.flags & FLAG_SYNC != 0));
            } else {
                self.link.stats.decode_drops += 1;
            }
        }
        Ok(())
    }

    fn pump(&mut self, now: SimTime) -> Result<(), PhyError> {
        self.link.pump(now)
    }

    fn reconnect(&mut self) -> Result<(), PhyError> {
        self.link.reconnect()
    }

    fn in_flight(&self) -> usize {
        self.link.in_flight()
    }

    fn stats(&self) -> PhyStats {
        self.link.stats
    }
}

fn any_local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("literal address")
}

/// An in-process pair of connected [`UdpCellPhy`] endpoints on
/// localhost, in lockstep mode, each direction with its own forked
/// fault stream.
pub fn udp_cell_pair(faults: &TransportFaultConfig) -> io::Result<(UdpCellPhy, UdpCellPhy)> {
    let a = UdpSocket::bind(any_local())?;
    let b = UdpSocket::bind(any_local())?;
    let (aa, ba) = (a.local_addr()?, b.local_addr()?);
    a.set_nonblocking(true)?;
    b.set_nonblocking(true)?;
    a.connect(ba)?;
    b.connect(aa)?;
    let fa = TransportFaultConfig { seed: faults.seed.wrapping_add(0x0C11_0001), ..*faults };
    let fb = TransportFaultConfig { seed: faults.seed.wrapping_add(0x0C11_0002), ..*faults };
    let a = UdpCellPhy { link: UdpLink::from_socket(a, ba, fa, true, SimTime::ZERO)? };
    let b = UdpCellPhy { link: UdpLink::from_socket(b, aa, fb, true, SimTime::ZERO)? };
    Ok((a, b))
}

/// An in-process pair of connected [`UdpFramePhy`] endpoints on
/// localhost, in lockstep mode, each direction with its own forked
/// fault stream.
pub fn udp_frame_pair(faults: &TransportFaultConfig) -> io::Result<(UdpFramePhy, UdpFramePhy)> {
    let a = UdpSocket::bind(any_local())?;
    let b = UdpSocket::bind(any_local())?;
    let (aa, ba) = (a.local_addr()?, b.local_addr()?);
    a.set_nonblocking(true)?;
    b.set_nonblocking(true)?;
    a.connect(ba)?;
    b.connect(aa)?;
    let fa = TransportFaultConfig { seed: faults.seed.wrapping_add(0x0F1A_0001), ..*faults };
    let fb = TransportFaultConfig { seed: faults.seed.wrapping_add(0x0F1A_0002), ..*faults };
    let a = UdpFramePhy { link: UdpLink::from_socket(a, ba, fa, true, SimTime::ZERO)? };
    let b = UdpFramePhy { link: UdpLink::from_socket(b, aa, fb, true, SimTime::ZERO)? };
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flush(a: &mut impl CellPhy, b: &mut impl CellPhy, now: SimTime) {
        for _ in 0..256 {
            a.pump(now).unwrap();
            b.pump(now).unwrap();
            if a.in_flight() == 0 && b.in_flight() == 0 {
                return;
            }
        }
        panic!("cell pair failed to quiesce");
    }

    #[test]
    fn cells_cross_the_socket_in_order() {
        let (mut a, mut b) = udp_cell_pair(&TransportFaultConfig::none()).unwrap();
        for i in 0..10u8 {
            a.send_cell(SimTime::from_ns(i as u64 * 40), &[i; CELL_SIZE]).unwrap();
        }
        flush(&mut a, &mut b, SimTime::from_us(1));
        let mut got = Vec::new();
        b.poll_cells(&mut got).unwrap();
        assert_eq!(got.len(), 10);
        for (i, (at, cell)) in got.iter().enumerate() {
            assert_eq!(*at, SimTime::from_ns(i as u64 * 40));
            assert_eq!(*cell, [i as u8; CELL_SIZE]);
        }
    }

    #[test]
    fn heavy_faults_are_invisible_above_the_arq() {
        let faults =
            TransportFaultConfig { drop: 0.3, duplicate: 0.3, truncate: 0.2, seed: 0xFA17 };
        let (mut a, mut b) = udp_frame_pair(&faults).unwrap();
        for i in 0..20u32 {
            let frame = vec![i as u8; 100 + i as usize];
            let back = a.send_frame(SimTime::from_us(i as u64), frame, i % 2 == 0).unwrap();
            assert!(back.is_some(), "udp phy copies and returns the buffer");
        }
        for round in 0..4096 {
            a.pump(SimTime::from_ms(round)).unwrap();
            b.pump(SimTime::from_ms(round)).unwrap();
            if a.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(a.in_flight(), 0, "ARQ must deliver through heavy faults");
        let mut got = Vec::new();
        b.poll_frames(&mut got).unwrap();
        assert_eq!(got.len(), 20);
        for (i, (at, frame, sync)) in got.iter().enumerate() {
            assert_eq!(*at, SimTime::from_us(i as u64));
            assert_eq!(frame.len(), 100 + i);
            assert_eq!(*sync, i % 2 == 0);
        }
        let s = a.stats();
        assert!(s.faults_dropped > 0 && s.faults_duplicated > 0 && s.faults_truncated > 0);
        assert!(s.faults_exercised());
    }

    #[test]
    fn reconnect_retransmits_the_unacked_tail() {
        let (mut a, mut b) = udp_cell_pair(&TransportFaultConfig::none()).unwrap();
        a.send_cell(SimTime::from_ns(40), &[1; CELL_SIZE]).unwrap();
        // Sever a's transport, then bring it back: the queued cell must
        // still arrive.
        a.link.sock = None;
        assert!(matches!(a.pump(SimTime::ZERO), Err(PhyError::Io(_))));
        a.reconnect().unwrap();
        flush(&mut a, &mut b, SimTime::from_us(1));
        let mut got = Vec::new();
        b.poll_cells(&mut got).unwrap();
        assert_eq!(got, vec![(SimTime::from_ns(40), [1; CELL_SIZE])]);
    }
}
