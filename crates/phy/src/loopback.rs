//! In-process loopback transport: a pair of endpoints sharing two
//! queues.
//!
//! Delivery is immediate and lossless — `send` on one endpoint makes
//! the item pollable on the other. The frame side passes buffer
//! ownership straight through ([`crate::FramePhy::send_frame`] returns
//! `None`), so a frame drawn from the gateway's MPP pool crosses the
//! seam without copying and the pool census balances when the consumer
//! recycles it. This is the transport the co-sim testbed runs on.

use crate::{CellPhy, FramePhy, PhyError, PhyStats};
use gw_sim::time::SimTime;
use gw_wire::atm::CELL_SIZE;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

type CellQueue = Rc<RefCell<VecDeque<(SimTime, [u8; CELL_SIZE])>>>;
type FrameQueue = Rc<RefCell<VecDeque<(SimTime, Vec<u8>, bool)>>>;

/// One endpoint of a loopback cell pair.
#[derive(Debug)]
pub struct LoopbackCellPhy {
    tx: CellQueue,
    rx: CellQueue,
    stats: PhyStats,
}

/// Two connected cell endpoints: what one sends, the other polls.
pub fn loopback_cell_pair() -> (LoopbackCellPhy, LoopbackCellPhy) {
    let ab: CellQueue = Rc::new(RefCell::new(VecDeque::new()));
    let ba: CellQueue = Rc::new(RefCell::new(VecDeque::new()));
    (
        LoopbackCellPhy { tx: Rc::clone(&ab), rx: Rc::clone(&ba), stats: PhyStats::default() },
        LoopbackCellPhy { tx: ba, rx: ab, stats: PhyStats::default() },
    )
}

impl CellPhy for LoopbackCellPhy {
    fn send_cell(&mut self, at: SimTime, cell: &[u8; CELL_SIZE]) -> Result<(), PhyError> {
        self.tx.borrow_mut().push_back((at, *cell));
        self.stats.datagrams_tx += 1;
        Ok(())
    }

    fn poll_cells(&mut self, out: &mut Vec<(SimTime, [u8; CELL_SIZE])>) -> Result<(), PhyError> {
        let mut rx = self.rx.borrow_mut();
        self.stats.datagrams_rx += rx.len() as u64;
        out.extend(rx.drain(..));
        Ok(())
    }

    fn pump(&mut self, _now: SimTime) -> Result<(), PhyError> {
        Ok(())
    }

    fn stats(&self) -> PhyStats {
        self.stats
    }
}

/// One endpoint of a loopback frame pair.
#[derive(Debug)]
pub struct LoopbackFramePhy {
    tx: FrameQueue,
    rx: FrameQueue,
    stats: PhyStats,
}

/// Two connected frame endpoints: what one sends, the other polls.
pub fn loopback_frame_pair() -> (LoopbackFramePhy, LoopbackFramePhy) {
    let ab: FrameQueue = Rc::new(RefCell::new(VecDeque::new()));
    let ba: FrameQueue = Rc::new(RefCell::new(VecDeque::new()));
    (
        LoopbackFramePhy { tx: Rc::clone(&ab), rx: Rc::clone(&ba), stats: PhyStats::default() },
        LoopbackFramePhy { tx: ba, rx: ab, stats: PhyStats::default() },
    )
}

impl FramePhy for LoopbackFramePhy {
    fn send_frame(
        &mut self,
        at: SimTime,
        frame: Vec<u8>,
        synchronous: bool,
    ) -> Result<Option<Vec<u8>>, PhyError> {
        self.tx.borrow_mut().push_back((at, frame, synchronous));
        self.stats.datagrams_tx += 1;
        // Ownership moved: the buffer surfaces at the peer's poll.
        Ok(None)
    }

    fn poll_frames(&mut self, out: &mut Vec<(SimTime, Vec<u8>, bool)>) -> Result<(), PhyError> {
        let mut rx = self.rx.borrow_mut();
        self.stats.datagrams_rx += rx.len() as u64;
        out.extend(rx.drain(..));
        Ok(())
    }

    fn pump(&mut self, _now: SimTime) -> Result<(), PhyError> {
        Ok(())
    }

    fn stats(&self) -> PhyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_cross_in_order_with_timestamps() {
        let (mut a, mut b) = loopback_cell_pair();
        a.send_cell(SimTime::from_ns(40), &[1; CELL_SIZE]).unwrap();
        a.send_cell(SimTime::from_ns(80), &[2; CELL_SIZE]).unwrap();
        let mut got = Vec::new();
        b.poll_cells(&mut got).unwrap();
        assert_eq!(
            got,
            vec![(SimTime::from_ns(40), [1; CELL_SIZE]), (SimTime::from_ns(80), [2; CELL_SIZE])]
        );
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.stats().datagrams_tx, 2);
        assert_eq!(b.stats().datagrams_rx, 2);
    }

    #[test]
    fn frames_move_ownership_both_directions() {
        let (mut a, mut b) = loopback_frame_pair();
        assert_eq!(a.send_frame(SimTime::ZERO, vec![9; 100], true).unwrap(), None);
        assert_eq!(b.send_frame(SimTime::ZERO, vec![7; 50], false).unwrap(), None);
        let mut got = Vec::new();
        b.poll_frames(&mut got).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, vec![9; 100]);
        assert!(got[0].2);
        got.clear();
        a.poll_frames(&mut got).unwrap();
        assert_eq!(got[0].1, vec![7; 50]);
        assert!(!got[0].2);
    }
}
