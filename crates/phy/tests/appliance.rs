//! End-to-end appliance tests: the `gwd` engine driven without
//! signals — graceful drain with work in flight, live config reload
//! (the SIGHUP path), and a transport flap with supervised reconnect
//! whose backoff schedule is observable in the mgmt port health.

use gw_gateway::GatewayConfig;
use gw_mgmt::PortState;
use gw_phy::encap::{self, KIND_ACK, KIND_FRAME};
use gw_phy::{
    loopback_cell_pair, loopback_frame_pair, udp_cell_pair, Appliance, ApplianceConfig, CellPhy,
    CongramSpec, FramePhy, TransportFaultConfig, UdpFramePhy,
};
use gw_sar::segment::segment_cells;
use gw_sim::time::SimTime;
use gw_wire::atm::{AtmHeader, Vci, CELL_SIZE};
use gw_wire::fddi::{self, Frame};
use gw_wire::mchip::{build_data_frame, parse_frame, Icn, MchipType};
use std::net::UdpSocket;

/// Segment one MCHIP data frame into the cells a line-side ATM peer
/// would send on `vci`.
fn cells_for(vci: u16, icn: u16, payload: &[u8]) -> Vec<[u8; CELL_SIZE]> {
    let mchip = build_data_frame(Icn(icn), payload).expect("payload fits an MCHIP frame");
    let header = AtmHeader::data(Default::default(), Vci(vci));
    segment_cells(&header, &mchip, false)
        .expect("frame fits the SAR")
        .into_iter()
        .map(|cell| {
            let mut b = [0u8; CELL_SIZE];
            b.copy_from_slice(cell.as_bytes());
            b
        })
        .collect()
}

/// Recover the MCHIP data payload from an emitted FDDI frame.
fn mchip_payload(bytes: &[u8]) -> Option<Vec<u8>> {
    let frame = Frame::new_unchecked(bytes);
    let encap = fddi::strip_llc_snap(frame.info()).ok()?;
    let (header, payload) = parse_frame(encap).ok()?;
    (header.mtype == MchipType::Data).then(|| payload.to_vec())
}

/// Consume what the line-side loopback endpoint received, keeping a
/// copy for assertions and recycling the buffer into the gateway's
/// frame pool — the loopback pair passes ownership through, so the
/// consumer must balance the MPP pool census (as the testbed does).
fn collect_line_frames(
    app: &mut Appliance,
    line: &mut impl FramePhy,
    sink: &mut Vec<(Vec<u8>, bool)>,
) {
    let mut got = Vec::new();
    line.poll_frames(&mut got).unwrap();
    for (_, bytes, sync) in got {
        sink.push((bytes.clone(), sync));
        app.gateway_mut().recycle_frame(bytes);
    }
}

#[test]
fn graceful_drain_flushes_staged_tx_and_discards_partial_reassembly() {
    let (cell_gw, mut cell_line) = loopback_cell_pair();
    let (frame_gw, mut frame_line) = loopback_frame_pair();
    let mut app = Appliance::new(
        GatewayConfig::default(),
        100_000_000,
        Box::new(cell_gw),
        Box::new(frame_gw),
    );
    assert_eq!(app.apply_config(&ApplianceConfig::parse("congram 64 1 2 1 async").unwrap()), 1);

    let mut now = SimTime::ZERO;
    // Frame A: every cell arrives, so the reassembled frame is headed
    // for the staged transmit path when the drain begins.
    let payload_a = vec![0x5A; 700];
    for cell in cells_for(64, 1, &payload_a) {
        now += SimTime::from_us(2);
        cell_line.send_cell(now, &cell).unwrap();
        app.step(now);
    }
    // Frame B: a strict prefix of its cells — a reassembly left in
    // flight, exactly what a shutdown mid-transfer looks like.
    let cells_b = cells_for(64, 1, &[0xB7; 700]);
    assert!(cells_b.len() >= 2, "payload must segment into multiple cells");
    for cell in &cells_b[..cells_b.len() - 1] {
        now += SimTime::from_us(2);
        cell_line.send_cell(now, cell).unwrap();
        app.step(now);
    }

    let residue = app.gateway().residue();
    assert!(residue.reassembly_cells > 0, "partial reassembly is held: {residue:?}");
    assert!(!app.is_quiescent());

    // The drain must run the reassembly deadline forward (discarding
    // B), flush A toward the line, and leave the books balanced. The
    // line side keeps consuming while the drain runs, as a live ring
    // would.
    app.begin_drain();
    let mut delivered = Vec::new();
    let mut t = now;
    for _ in 0..300 {
        t += SimTime::from_ms(1);
        app.step(t);
        collect_line_frames(&mut app, &mut frame_line, &mut delivered);
        if app.is_quiescent() {
            break;
        }
    }
    let report = app.drain(t, SimTime::from_ms(1));
    assert!(
        report.clean(),
        "drain must reach zero residue with C1-C7 intact: residue {:?}, violations {:?}, {} in flight",
        report.residue,
        report.violations,
        report.in_flight
    );
    assert!(app.is_quiescent());
    assert!(report.end > now, "quiescence required running timers forward");

    let payloads: Vec<Vec<u8>> =
        delivered.iter().filter_map(|(bytes, _)| mchip_payload(bytes)).collect();
    assert_eq!(payloads, vec![payload_a], "A delivered intact exactly once; B discarded");

    // Draining is sticky: traffic arriving afterwards is not admitted.
    cell_line.send_cell(report.end, &cells_b[cells_b.len() - 1]).unwrap();
    app.step(report.end + SimTime::from_us(2));
    assert!(app.is_draining());
    assert!(app.gateway().residue().is_clean(), "post-drain traffic is refused");
}

#[test]
fn live_reload_adds_congrams_without_disturbing_in_flight_frames() {
    let (cell_gw, mut cell_line) = loopback_cell_pair();
    let (frame_gw, mut frame_line) = loopback_frame_pair();
    let mut app = Appliance::new(
        GatewayConfig::default(),
        100_000_000,
        Box::new(cell_gw),
        Box::new(frame_gw),
    );
    assert_eq!(app.apply_config(&ApplianceConfig::parse("congram 64 1 2 1 async").unwrap()), 1);

    // Start a transfer on the live congram and interrupt it mid-frame.
    let mut now = SimTime::ZERO;
    let payload = vec![0xC4; 900];
    let cells = cells_for(64, 1, &payload);
    let (head, tail) = cells.split_at(cells.len() - 1);
    for cell in head {
        now += SimTime::from_us(2);
        cell_line.send_cell(now, cell).unwrap();
        app.step(now);
    }
    assert!(app.gateway().residue().reassembly_cells > 0, "reassembly in flight");

    // The SIGHUP path: re-apply a config that repeats the live VCI
    // (with different parameters, which must be ignored) and adds one.
    let reload = ApplianceConfig::parse(
        "congram 64 9 9 9 sync # ignored: vci already live\ncongram 80 5 6 3 sync",
    )
    .unwrap();
    assert_eq!(app.apply_config(&reload), 1, "only the new congram installs");
    assert_eq!(app.congrams().len(), 2);
    assert_eq!(
        app.congrams()[0],
        CongramSpec { vci: 64, atm_icn: 1, fddi_icn: 2, station: 1, synchronous: false },
        "the live congram keeps its original parameters"
    );

    // The interrupted frame completes across the reload.
    now += SimTime::from_us(2);
    cell_line.send_cell(now, &tail[0]).unwrap();
    app.step(now);
    let mut delivered = Vec::new();
    for _ in 0..50 {
        now += SimTime::from_us(100);
        app.step(now);
        collect_line_frames(&mut app, &mut frame_line, &mut delivered);
        if !delivered.is_empty() {
            break;
        }
    }
    assert_eq!(delivered.len(), 1, "the in-flight frame survived the reload");
    assert_eq!(mchip_payload(&delivered[0].0).as_deref(), Some(&payload[..]));
    assert!(!delivered[0].1, "congram 64 serves the asynchronous class");

    // The newly installed congram carries traffic too, in its own
    // (synchronous) ring class.
    let payload_80 = vec![0x80; 400];
    for cell in cells_for(80, 5, &payload_80) {
        now += SimTime::from_us(2);
        cell_line.send_cell(now, &cell).unwrap();
        app.step(now);
    }
    let mut delivered = Vec::new();
    for _ in 0..50 {
        now += SimTime::from_us(100);
        app.step(now);
        collect_line_frames(&mut app, &mut frame_line, &mut delivered);
        if !delivered.is_empty() {
            break;
        }
    }
    assert_eq!(delivered.len(), 1);
    assert_eq!(mchip_payload(&delivered[0].0).as_deref(), Some(&payload_80[..]));
    assert!(delivered[0].1, "congram 80 serves the synchronous class");

    let report = app.drain(now, SimTime::from_ms(200));
    assert!(report.clean(), "reload left the books balanced: {report:?}");
}

/// A stateful line-side FDDI peer driven through raw sockets and the
/// GWP1 codec directly, so its ARQ receive state survives an outage
/// the way a real peer process would (only the wire goes away, not
/// the peer's sequence numbers).
struct RawFramePeer {
    sock: Option<UdpSocket>,
    gw_addr: std::net::SocketAddr,
    rx_next: u64,
    frames: Vec<Vec<u8>>,
}

impl RawFramePeer {
    fn bind() -> RawFramePeer {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_nonblocking(true).unwrap();
        RawFramePeer {
            sock: Some(sock),
            gw_addr: "0.0.0.0:0".parse().unwrap(),
            rx_next: 0,
            frames: Vec::new(),
        }
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        self.sock.as_ref().unwrap().local_addr().unwrap()
    }

    fn connect(&mut self, gw_addr: std::net::SocketAddr) {
        self.gw_addr = gw_addr;
        self.sock.as_ref().unwrap().connect(gw_addr).unwrap();
    }

    /// Sever the transport: the port closes, and datagrams toward it
    /// start bouncing as ICMP port-unreachable.
    fn sever(&mut self) {
        self.sock = None;
    }

    /// Restore the transport on the same port, receive state intact.
    fn restore(&mut self, at: std::net::SocketAddr) {
        let sock = UdpSocket::bind(at).unwrap();
        sock.set_nonblocking(true).unwrap();
        sock.connect(self.gw_addr).unwrap();
        self.sock = Some(sock);
    }

    /// Accept in-order frames, discard duplicates, acknowledge
    /// cumulatively.
    fn pump(&mut self) {
        let Some(sock) = &self.sock else { return };
        let mut buf = [0u8; 8192];
        let mut progressed = false;
        while let Ok(n) = sock.recv(&mut buf) {
            let Ok(d) = encap::decode(&buf[..n]) else { continue };
            if d.kind != KIND_FRAME {
                continue;
            }
            if d.seq == self.rx_next {
                self.frames.push(d.payload.to_vec());
                self.rx_next += 1;
            }
            progressed = true;
        }
        if progressed && self.rx_next > 0 {
            let mut ack = Vec::new();
            encap::encode(KIND_ACK, 0, self.rx_next - 1, SimTime::ZERO, &[], &mut ack).unwrap();
            let _ = sock.send(&ack);
        }
    }
}

#[test]
fn transport_flap_reconnects_with_observable_backoff_and_no_loss() {
    // Cell side: a normal in-process UDP pair. Frame side: the gateway
    // endpoint speaks to a raw stateful peer we can sever and restore.
    let (cell_gw, mut cell_line) = udp_cell_pair(&TransportFaultConfig::none()).unwrap();
    let mut peer = RawFramePeer::bind();
    let frame_gw = UdpFramePhy::bind(
        "127.0.0.1:0".parse().unwrap(),
        peer.local_addr(),
        TransportFaultConfig::none(),
        true,
        SimTime::ZERO,
    )
    .unwrap();
    peer.connect(frame_gw.local_addr());
    let peer_addr = peer.local_addr();

    let mut app = Appliance::new(
        GatewayConfig::default(),
        100_000_000,
        Box::new(cell_gw),
        Box::new(frame_gw),
    );
    assert_eq!(app.apply_config(&ApplianceConfig::parse("congram 64 1 2 1 async").unwrap()), 1);

    let mut now = SimTime::ZERO;
    fn step(
        app: &mut Appliance,
        now: SimTime,
        cell_line: &mut dyn CellPhy,
        peer: &mut RawFramePeer,
    ) {
        app.step(now);
        cell_line.pump(now).unwrap();
        peer.pump();
    }

    // Phase 1: a frame crosses while the link is healthy.
    let payload_a = vec![0xA1; 500];
    for cell in cells_for(64, 1, &payload_a) {
        now += SimTime::from_us(2);
        cell_line.send_cell(now, &cell).unwrap();
        step(&mut app, now, &mut cell_line, &mut peer);
    }
    for _ in 0..200 {
        now += SimTime::from_us(100);
        step(&mut app, now, &mut cell_line, &mut peer);
        if peer.frames.len() == 1 {
            break;
        }
    }
    assert_eq!(peer.frames.len(), 1, "healthy link delivers");
    assert_eq!(mchip_payload(&peer.frames[0]).as_deref(), Some(&payload_a[..]));

    // Phase 2: sever the peer, then push another frame through. The
    // gateway's sends start bouncing; the supervisor must take the
    // port to Reconnecting and start the backoff schedule.
    peer.sever();
    let payload_b = vec![0xB2; 500];
    for cell in cells_for(64, 1, &payload_b) {
        now += SimTime::from_us(2);
        cell_line.send_cell(now, &cell).unwrap();
        step(&mut app, now, &mut cell_line, &mut peer);
    }
    let mut saw_reconnecting = false;
    for _ in 0..400 {
        now += SimTime::from_ms(1);
        step(&mut app, now, &mut cell_line, &mut peer);
        let health = app.gateway().health().expect("mgmt is forced on");
        if health.fddi.state == PortState::Reconnecting {
            saw_reconnecting = true;
            if health.fddi.backoff_retries >= 2 {
                break;
            }
        }
        // The ICMP error needs a moment of wall time to surface.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(saw_reconnecting, "the FDDI port must reach Reconnecting while severed");
    let health = app.gateway().health().unwrap();
    assert!(
        health.fddi.backoff_retries >= 2,
        "backoff schedule observable in mgmt counters: {:?}",
        health.fddi
    );
    assert_eq!(health.atm.backoff_retries, 0, "the ATM port never flapped");
    let snapshot = app.gateway_mut().snapshot(now).pretty();
    assert!(
        snapshot.contains("\"backoff_retries\""),
        "reconnect counters are part of gw-snapshot/1"
    );

    // Phase 3: the peer comes back on the same port with its receive
    // state intact. The unacknowledged tail retransmits; nothing is
    // lost and the mgmt plane records the recovery.
    peer.restore(peer_addr);
    for _ in 0..400 {
        now += SimTime::from_ms(1);
        step(&mut app, now, &mut cell_line, &mut peer);
        if peer.frames.len() == 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(peer.frames.len(), 2, "the frame sent during the outage arrives after reconnect");
    assert_eq!(mchip_payload(&peer.frames[1]).as_deref(), Some(&payload_b[..]));
    let health = app.gateway().health().unwrap();
    assert!(health.fddi.reconnects >= 1, "recovery counted: {:?}", health.fddi);
    assert_ne!(health.fddi.state, PortState::Isolated);
    assert_eq!(app.gateway().check_conservation(), Vec::<String>::new());

    // And the appliance still drains clean after the flap.
    app.begin_drain();
    for _ in 0..400 {
        now += SimTime::from_ms(1);
        step(&mut app, now, &mut cell_line, &mut peer);
        if app.is_quiescent() {
            break;
        }
    }
    let report = app.drain(now, SimTime::from_ms(200));
    assert!(report.clean(), "post-flap drain: {report:?}");
}
