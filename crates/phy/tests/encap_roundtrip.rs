//! Property tests for the transport seam: the GWP1 encapsulation
//! round-trips byte-exact, and both transport pairs (in-process
//! loopback and real UDP sockets) deliver the sender's
//! `(timestamp, payload)` sequence unchanged — including the maximum
//! FDDI frame (4500 octets) and the zero-payload edges. This is the
//! property the snapshot byte-identity proof rests on: if the seam
//! preserves the sequence exactly, the cycle-accurate core cannot tell
//! transports apart.

use gw_phy::encap::{
    self, DecodeError, FLAG_SYNC, HEADER_LEN, KIND_ACK, KIND_CELL, KIND_FRAME, MAX_PAYLOAD,
};
use gw_phy::{
    loopback_cell_pair, loopback_frame_pair, udp_cell_pair, udp_frame_pair, CellPhy, FramePhy,
    PhyError, TransportFaultConfig,
};
use gw_sim::time::SimTime;
use gw_wire::atm::CELL_SIZE;
use gw_wire::fddi::MAX_FRAME_SIZE;
use proptest::prelude::*;

/// Pump a pair until nothing is unacknowledged (no-op for loopback,
/// runs the lockstep ARQ for UDP).
fn flush_cells(a: &mut impl CellPhy, b: &mut impl CellPhy) {
    for _ in 0..256 {
        a.pump(SimTime::from_us(1)).expect("pump");
        b.pump(SimTime::from_us(1)).expect("pump");
        if a.in_flight() == 0 && b.in_flight() == 0 {
            return;
        }
    }
    panic!("cell pair failed to quiesce");
}

fn flush_frames(a: &mut impl FramePhy, b: &mut impl FramePhy) {
    for _ in 0..256 {
        a.pump(SimTime::from_us(1)).expect("pump");
        b.pump(SimTime::from_us(1)).expect("pump");
        if a.in_flight() == 0 && b.in_flight() == 0 {
            return;
        }
    }
    panic!("frame pair failed to quiesce");
}

/// Drive one batch of frames through a pair and assert the receiver
/// observes exactly the sent `(time, bytes, class)` sequence.
fn assert_frames_cross_exact(
    a: &mut impl FramePhy,
    b: &mut impl FramePhy,
    frames: &[(Vec<u8>, bool)],
) {
    for (i, (bytes, sync)) in frames.iter().enumerate() {
        a.send_frame(SimTime::from_us(i as u64), bytes.clone(), *sync).expect("send");
    }
    flush_frames(a, b);
    let mut got = Vec::new();
    b.poll_frames(&mut got).expect("poll");
    assert_eq!(got.len(), frames.len());
    for (i, ((at, bytes, sync), (sent, sent_sync))) in got.iter().zip(frames).enumerate() {
        assert_eq!(*at, SimTime::from_us(i as u64), "timestamp preserved");
        assert_eq!(bytes, sent, "frame {i} byte-exact");
        assert_eq!(sync, sent_sync, "ring class preserved");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every header field and payload octet survives encode/decode.
    #[test]
    fn gwp1_encode_decode_round_trips(
        kind in 0u8..3,
        flags: u8,
        seq: u64,
        at_ns: u64,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut wire = Vec::new();
        encap::encode(kind, flags, seq, SimTime::from_ns(at_ns), &payload, &mut wire).unwrap();
        prop_assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let d = encap::decode(&wire).unwrap();
        prop_assert_eq!(d.kind, kind);
        prop_assert_eq!(d.flags, flags);
        prop_assert_eq!(d.seq, seq);
        prop_assert_eq!(d.at, SimTime::from_ns(at_ns));
        prop_assert_eq!(d.payload, &payload[..]);
    }

    /// No strict prefix of a valid datagram decodes — in-flight
    /// truncation is always caught by the length check, so a truncated
    /// payload can never masquerade as a shorter valid one.
    #[test]
    fn every_truncation_of_a_datagram_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        seq: u64,
    ) {
        let mut wire = Vec::new();
        encap::encode(KIND_FRAME, FLAG_SYNC, seq, SimTime::from_ns(7), &payload, &mut wire)
            .unwrap();
        for keep in 0..wire.len() {
            let err = encap::decode(&wire[..keep]).unwrap_err();
            prop_assert!(
                matches!(err, DecodeError::Runt | DecodeError::Truncated),
                "prefix of {} octets gave {:?}", keep, err
            );
        }
        prop_assert!(encap::decode(&wire).is_ok());
    }

    /// Arbitrary cells cross the loopback pair byte-exact and in order
    /// with their timestamps.
    #[test]
    fn loopback_cells_cross_byte_exact(
        cells in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), CELL_SIZE), 1..12),
    ) {
        let (mut a, mut b) = loopback_cell_pair();
        for (i, bytes) in cells.iter().enumerate() {
            let mut cell = [0u8; CELL_SIZE];
            cell.copy_from_slice(bytes);
            a.send_cell(SimTime::from_ns(i as u64 * 40), &cell).unwrap();
        }
        flush_cells(&mut a, &mut b);
        let mut got = Vec::new();
        b.poll_cells(&mut got).unwrap();
        prop_assert_eq!(got.len(), cells.len());
        for (i, ((at, cell), sent)) in got.iter().zip(&cells).enumerate() {
            prop_assert_eq!(*at, SimTime::from_ns(i as u64 * 40));
            prop_assert_eq!(&cell[..], &sent[..]);
        }
    }

    /// The same property over real UDP sockets with injected datagram
    /// faults: the ARQ presents the identical byte-exact in-order
    /// sequence above the seam.
    #[test]
    fn udp_cells_cross_byte_exact(
        cells in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), CELL_SIZE), 1..12),
        seed: u64,
    ) {
        let faults = TransportFaultConfig { drop: 0.1, duplicate: 0.1, truncate: 0.05, seed };
        let (mut a, mut b) = udp_cell_pair(&faults).expect("bind");
        for (i, bytes) in cells.iter().enumerate() {
            let mut cell = [0u8; CELL_SIZE];
            cell.copy_from_slice(bytes);
            a.send_cell(SimTime::from_ns(i as u64 * 40), &cell).unwrap();
        }
        flush_cells(&mut a, &mut b);
        let mut got = Vec::new();
        b.poll_cells(&mut got).unwrap();
        prop_assert_eq!(got.len(), cells.len());
        for (i, ((at, cell), sent)) in got.iter().zip(&cells).enumerate() {
            prop_assert_eq!(*at, SimTime::from_ns(i as u64 * 40));
            prop_assert_eq!(&cell[..], &sent[..]);
        }
    }

    /// Arbitrary frames — lengths drawn across the whole legal range,
    /// zero included — cross both transports byte-exact with their
    /// ring service class intact.
    #[test]
    fn frames_cross_both_transports_byte_exact(
        lens in proptest::collection::vec((0usize..=MAX_FRAME_SIZE, any::<bool>()), 1..6),
        fill: u8,
    ) {
        let frames: Vec<(Vec<u8>, bool)> = lens
            .iter()
            .enumerate()
            .map(|(i, (len, sync))| (vec![fill.wrapping_add(i as u8); *len], *sync))
            .collect();
        let (mut la, mut lb) = loopback_frame_pair();
        assert_frames_cross_exact(&mut la, &mut lb, &frames);
        let (mut ua, mut ub) = udp_frame_pair(&TransportFaultConfig::none()).expect("bind");
        assert_frames_cross_exact(&mut ua, &mut ub, &frames);
    }
}

/// The two boundary payloads the property sampler may miss: exactly
/// [`MAX_FRAME_SIZE`] octets and the empty frame.
#[test]
fn max_size_and_zero_payload_edges_cross_both_transports() {
    let max: Vec<u8> = (0..MAX_FRAME_SIZE).map(|i| i as u8).collect();
    assert_eq!(max.len(), 4500, "FDDI maximum per the spec");
    let frames = vec![(max, true), (Vec::new(), false), (Vec::new(), true)];

    let (mut la, mut lb) = loopback_frame_pair();
    assert_frames_cross_exact(&mut la, &mut lb, &frames);

    let faults = TransportFaultConfig { drop: 0.2, duplicate: 0.2, truncate: 0.1, seed: 0xED6E };
    let (mut ua, mut ub) = udp_frame_pair(&faults).expect("bind");
    assert_frames_cross_exact(&mut ua, &mut ub, &frames);
}

/// Encoding edges: an ack is exactly one bare header; the payload
/// ceiling is enforced at the trait surface, not just in `encode`.
#[test]
fn ack_and_payload_ceiling_edges() {
    let mut wire = Vec::new();
    encap::encode(KIND_ACK, 0, u64::MAX, SimTime::ZERO, &[], &mut wire).unwrap();
    assert_eq!(wire.len(), HEADER_LEN);
    let d = encap::decode(&wire).unwrap();
    assert_eq!((d.kind, d.seq, d.payload.len()), (KIND_ACK, u64::MAX, 0));

    let mut wire = Vec::new();
    encap::encode(KIND_CELL, 0, 0, SimTime::ZERO, &[0xAA; MAX_PAYLOAD], &mut wire).unwrap();
    assert_eq!(encap::decode(&wire).unwrap().payload.len(), MAX_PAYLOAD);

    let (mut a, _b) = udp_frame_pair(&TransportFaultConfig::none()).expect("bind");
    let err = a.send_frame(SimTime::ZERO, vec![0; MAX_PAYLOAD + 1], false).unwrap_err();
    assert_eq!(err, PhyError::TooLarge(MAX_PAYLOAD + 1));
}
