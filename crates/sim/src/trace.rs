//! A bounded, optional event trace.
//!
//! Component models emit [`TraceEvent`]s describing interesting moments
//! (cell discarded, timer expired, token captured…). The trace is a ring
//! buffer: cheap when enabled, free when disabled, and never grows
//! without bound. Tests and the figure self-checks read it back.
//!
//! [`EventRing`] is the typed generalization: the same bounded-ring
//! semantics over any event type, used by the management plane for
//! structured (non-`String`) trace events.

use crate::time::SimTime;

/// A bounded ring of typed events: retains the most recent `capacity`
/// entries, counts evictions exactly, and records nothing when disabled.
///
/// Storage is reserved up front, so a ring at steady state (full and
/// evicting) performs no allocation per event — a requirement for
/// tracing on a critical path.
#[derive(Debug, Clone)]
pub struct EventRing<E> {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<E>,
    dropped: u64,
}

impl<E> EventRing<E> {
    /// A disabled ring (records nothing, holds nothing).
    pub fn disabled() -> EventRing<E> {
        EventRing { enabled: false, capacity: 0, events: Default::default(), dropped: 0 }
    }

    /// An enabled ring retaining the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> EventRing<E> {
        EventRing {
            enabled: true,
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled). When the ring is full the
    /// oldest event is evicted and counted in [`EventRing::dropped`].
    pub fn push(&mut self, event: E) {
        if !self.enabled {
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &E> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// One traced moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which component reported it (static names like `"spp"`, `"mpp"`).
    pub component: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// A bounded trace buffer.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Trace {
        Trace { enabled: false, capacity: 0, events: Default::default(), dropped: 0 }
    }

    /// An enabled trace retaining the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Trace {
        Trace { enabled: true, capacity, events: Default::default(), dropped: 0 }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn emit(&mut self, time: SimTime, component: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { time, component, detail: detail.into() });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events from one component, oldest first.
    pub fn by_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.component == component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(SimTime::from_ns(1), "spp", "cell");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_keeps_most_recent() {
        let mut t = Trace::bounded(3);
        for i in 0..5u64 {
            t.emit(SimTime::from_ns(i), "mpp", format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let details: Vec<&str> = t.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, ["e2", "e3", "e4"]);
    }

    #[test]
    fn by_component_filters() {
        let mut t = Trace::bounded(10);
        t.emit(SimTime::ZERO, "spp", "a");
        t.emit(SimTime::ZERO, "mpp", "b");
        t.emit(SimTime::ZERO, "spp", "c");
        assert_eq!(t.by_component("spp").count(), 2);
        assert_eq!(t.by_component("mpp").count(), 1);
        assert_eq!(t.by_component("npe").count(), 0);
    }

    #[test]
    fn events_carry_time() {
        let mut t = Trace::bounded(2);
        t.emit(SimTime::from_us(5), "aic", "x");
        assert_eq!(t.events().next().unwrap().time, SimTime::from_us(5));
    }

    #[test]
    fn overflow_dropped_count_stays_exact() {
        // Push far past capacity: `dropped` must equal exactly the
        // number of evictions, and the retained window must be the most
        // recent `capacity` events in order.
        let capacity = 7;
        let total = 1000u64;
        let mut t = Trace::bounded(capacity);
        for i in 0..total {
            t.emit(SimTime::from_ns(i), "spp", format!("e{i}"));
        }
        assert_eq!(t.len(), capacity);
        assert_eq!(t.dropped(), total - capacity as u64);
        let details: Vec<String> = t.events().map(|e| e.detail.clone()).collect();
        let expected: Vec<String> =
            (total - capacity as u64..total).map(|i| format!("e{i}")).collect();
        assert_eq!(details, expected, "retained window is the most recent {capacity} events");
    }

    #[test]
    fn overflow_window_slides_one_event_at_a_time() {
        let mut t = Trace::bounded(3);
        for i in 0..3u64 {
            t.emit(SimTime::from_ns(i), "mpp", format!("e{i}"));
        }
        assert_eq!(t.dropped(), 0, "no drop until the first eviction");
        for i in 3..6u64 {
            t.emit(SimTime::from_ns(i), "mpp", format!("e{i}"));
            assert_eq!(t.dropped(), i - 2, "one eviction per overflowing emit");
            assert_eq!(t.len(), 3, "length pinned at capacity");
        }
    }

    #[test]
    fn event_ring_matches_trace_semantics() {
        let mut r: EventRing<u64> = EventRing::bounded(4);
        assert!(r.is_enabled());
        assert!(r.is_empty());
        for i in 0..10u64 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.events().copied().collect::<Vec<_>>(), [6, 7, 8, 9]);
    }

    #[test]
    fn event_ring_disabled_and_zero_capacity() {
        let mut d: EventRing<u8> = EventRing::disabled();
        d.push(1);
        assert!(d.is_empty());
        assert_eq!(d.dropped(), 0);
        // A zero-capacity enabled ring retains nothing but counts every
        // event as dropped (it was offered and evicted immediately).
        let mut z: EventRing<u8> = EventRing::bounded(0);
        z.push(1);
        z.push(2);
        assert!(z.is_empty());
        assert_eq!(z.dropped(), 2);
    }
}
