//! A bounded, optional event trace.
//!
//! Component models emit [`TraceEvent`]s describing interesting moments
//! (cell discarded, timer expired, token captured…). The trace is a ring
//! buffer: cheap when enabled, free when disabled, and never grows
//! without bound. Tests and the figure self-checks read it back.

use crate::time::SimTime;

/// One traced moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which component reported it (static names like `"spp"`, `"mpp"`).
    pub component: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// A bounded trace buffer.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Trace {
        Trace { enabled: false, capacity: 0, events: Default::default(), dropped: 0 }
    }

    /// An enabled trace retaining the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Trace {
        Trace { enabled: true, capacity, events: Default::default(), dropped: 0 }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn emit(&mut self, time: SimTime, component: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { time, component, detail: detail.into() });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events from one component, oldest first.
    pub fn by_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.component == component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(SimTime::from_ns(1), "spp", "cell");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_keeps_most_recent() {
        let mut t = Trace::bounded(3);
        for i in 0..5u64 {
            t.emit(SimTime::from_ns(i), "mpp", format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let details: Vec<&str> = t.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, ["e2", "e3", "e4"]);
    }

    #[test]
    fn by_component_filters() {
        let mut t = Trace::bounded(10);
        t.emit(SimTime::ZERO, "spp", "a");
        t.emit(SimTime::ZERO, "mpp", "b");
        t.emit(SimTime::ZERO, "spp", "c");
        assert_eq!(t.by_component("spp").count(), 2);
        assert_eq!(t.by_component("mpp").count(), 1);
        assert_eq!(t.by_component("npe").count(), 0);
    }

    #[test]
    fn events_carry_time() {
        let mut t = Trace::bounded(2);
        t.emit(SimTime::from_us(5), "aic", "x");
        assert_eq!(t.events().next().unwrap().time, SimTime::from_us(5));
    }
}
