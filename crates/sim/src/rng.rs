//! Deterministic pseudo-random numbers for workloads and fault injection.
//!
//! A xoshiro256++ core seeded through SplitMix64 — small, fast, and
//! entirely reproducible: a simulation's behaviour is a pure function of
//! its seed. The distributions implemented are exactly those the
//! traffic models need (uniform, exponential for Poisson processes,
//! geometric on/off periods, Pareto for heavy-tailed bursts).

/// A deterministic PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Derive an independent stream (for giving each traffic source its
    /// own generator while keeping a single top-level seed).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p
    }

    /// Exponential variate with the given mean (inter-arrival times of a
    /// Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto variate with scale `xm` and shape `alpha` (heavy-tailed
    /// burst lengths).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// Fill a byte buffer with pseudo-random data (payload synthesis).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut g1 = root1.fork(2);
        assert_ne!(g1.next_u64(), f1.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.range(10, 12);
            assert!((10..=12).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 12;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(8);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.1)));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(250.0)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = SimRng::new(14);
        for _ in 0..10_000 {
            assert!(r.exponential(1.0) > 0.0);
        }
    }

    #[test]
    fn pareto_at_least_scale() {
        let mut r = SimRng::new(15);
        for _ in 0..10_000 {
            assert!(r.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn fill_bytes_deterministic_all_lengths() {
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let mut a = SimRng::new(99);
            let mut b = SimRng::new(99);
            let mut ba = vec![0u8; len];
            let mut bb = vec![0u8; len];
            a.fill_bytes(&mut ba);
            b.fill_bytes(&mut bb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn fill_bytes_not_constant() {
        let mut r = SimRng::new(100);
        let mut buf = vec![0u8; 256];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != buf[0]));
    }
}
