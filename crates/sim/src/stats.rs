//! Measurement primitives for the simulation study (§7).
//!
//! * [`Counter`] — events and octets.
//! * [`TimeWeighted`] — a gauge integrated over simulated time; its mean
//!   is the time-average (used for buffer occupancy, E6).
//! * [`Histogram`] — fixed-width bins plus exact min/max/mean and
//!   approximate quantiles (used for latency distributions, E5/E13).

use crate::time::SimTime;

/// A monotone event/octet counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
    octets: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Record one event of `octets` size.
    pub fn record(&mut self, octets: usize) {
        self.count += 1;
        self.octets += octets as u64;
    }

    /// Record one unit-size event.
    pub fn tick(&mut self) {
        self.count += 1;
    }

    /// Record `events` events totalling `octets` octets in one call
    /// (bulk accounting, e.g. all cells of a segmented frame).
    pub fn add(&mut self, events: u64, octets: u64) {
        self.count += events;
        self.octets += octets;
    }

    /// Number of events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total octets recorded.
    pub fn octets(&self) -> u64 {
        self.octets
    }

    /// Throughput in bits per second over the interval `[0, elapsed]`.
    pub fn bps(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.octets as f64 * 8.0 / elapsed.as_secs_f64()
    }

    /// Event rate per second over the interval `[0, elapsed]`.
    pub fn rate(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.count as f64 / elapsed.as_secs_f64()
    }
}

/// A gauge whose value is integrated over simulated time.
///
/// `set(t, v)` records that the gauge held its previous value until `t`
/// and holds `v` from `t` on. `mean(t_end)` is the time-average over
/// `[t0, t_end]`.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A gauge at value 0 that starts integrating at the first `set`.
    pub fn new() -> TimeWeighted {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            integral: 0.0,
            max: 0.0,
            started: false,
        }
    }

    /// Record the gauge changing to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes an earlier sample.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(now >= self.last_time, "time went backwards");
        if self.started {
            self.integral += self.last_value * (now - self.last_time).as_ns() as f64;
        } else {
            self.started = true;
        }
        self.last_time = now;
        self.last_value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// The most recent value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The maximum value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-averaged value over `[first_sample, t_end]`.
    pub fn mean(&self, t_end: SimTime) -> f64 {
        if !self.started || t_end <= self.last_time {
            return self.last_value;
        }
        let total = self.integral + self.last_value * (t_end - self.last_time).as_ns() as f64;
        let span = (t_end - SimTime::ZERO).as_ns() as f64;
        if span == 0.0 {
            self.last_value
        } else {
            total / span
        }
    }
}

/// A histogram with fixed-width bins over `[0, bin_width * bins)`;
/// values beyond the top bin land in an overflow bin but still count in
/// the exact min/max/mean.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create with `bins` bins of `bin_width` each. `bin_width` must be
    /// nonzero.
    pub fn new(bin_width: u64, bins: usize) -> Histogram {
        assert!(bin_width > 0, "bin width must be positive");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = (value / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum, or 0 with no samples.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (upper edge of the bin containing it).
    /// `q` in `[0, 1]`. Samples in the overflow bin report the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target && c > 0 {
                return (i as u64 + 1) * self.bin_width;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.record(100);
        c.record(53);
        c.tick();
        assert_eq!(c.count(), 3);
        assert_eq!(c.octets(), 153);
    }

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        for _ in 0..100 {
            c.record(125); // 1000 bits each
        }
        let t = SimTime::from_secs(1);
        assert!((c.bps(t) - 100_000.0).abs() < 1e-6);
        assert!((c.rate(t) - 100.0).abs() < 1e-9);
        assert_eq!(c.bps(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_mean_simple() {
        let mut g = TimeWeighted::new();
        g.set(SimTime::from_ns(0), 10.0);
        g.set(SimTime::from_ns(50), 20.0);
        // 0..50 at 10, 50..100 at 20 -> mean 15 over [0,100].
        assert!((g.mean(SimTime::from_ns(100)) - 15.0).abs() < 1e-9);
        assert_eq!(g.max(), 20.0);
        assert_eq!(g.current(), 20.0);
    }

    #[test]
    fn time_weighted_step_function() {
        let mut g = TimeWeighted::new();
        g.set(SimTime::from_ns(0), 0.0);
        g.set(SimTime::from_ns(25), 4.0);
        g.set(SimTime::from_ns(75), 0.0);
        // 25..75 at 4 over [0,100] -> 2.0
        assert!((g.mean(SimTime::from_ns(100)) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards() {
        let mut g = TimeWeighted::new();
        g.set(SimTime::from_ns(100), 1.0);
        g.set(SimTime::from_ns(50), 2.0);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(10, 10);
        for v in [5u64, 15, 15, 25, 99] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 99);
        assert!((h.mean() - 31.8).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1, 1000);
        for v in 0..100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((49..=51).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((98..=100).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn histogram_overflow_counts_in_stats() {
        let mut h = Histogram::new(10, 2); // covers [0,20)
        h.record(1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 1000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new(10, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_rejected() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = Histogram::new(40, 64);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn one_sample_histogram_quantiles() {
        // A single in-range sample: every quantile reports the upper
        // edge of its bin; min/max/mean are exact.
        let mut h = Histogram::new(10, 8);
        h.record(42);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 50, "q={q}: the 40..50 bin's upper edge");
        }
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert!((h.mean() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn one_sample_in_overflow_bin_reports_exact_max() {
        let mut h = Histogram::new(10, 2); // covers [0, 20)
        h.record(35);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 35, "overflow samples report the exact max");
        }
    }

    #[test]
    fn quantile_q_is_clamped() {
        let mut h = Histogram::new(10, 8);
        h.record(5);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }
}
