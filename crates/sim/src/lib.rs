//! Deterministic discrete-event simulation engine for the ATM-FDDI
//! gateway reproduction.
//!
//! The paper's gateway was to be evaluated through a simulation model
//! ("to do the functional verification of the design and to quantify its
//! performance with various application traffic patterns", §7). This
//! crate is that model's substrate:
//!
//! * [`time`] — nanosecond-resolution simulated time, with conversions
//!   to the gateway's 25 MHz / 40 ns clock cycles (§5.5).
//! * [`event`] — a generic priority event queue with stable FIFO
//!   ordering among simultaneous events, so runs are reproducible.
//! * [`rng`] — a small, fully deterministic PRNG (SplitMix64 seeding a
//!   xoshiro256++ core) plus the distributions the workload generators
//!   need. Same seed ⇒ identical traces, byte for byte.
//! * [`stats`] — counters, time-weighted gauges (for buffer-occupancy
//!   integrals), and histograms with quantile summaries.
//! * [`timer`] — a hierarchical timer wheel so deadline-heavy components
//!   (reassembly timeouts, VC liveness) pay O(expired) per advance, not
//!   O(armed).
//! * [`trace`] — an optional bounded event trace for debugging and for
//!   the figure self-checks.
//! * [`fault`] — fault injection (drop / corrupt / delay) used by the
//!   loss experiments (E10).
//!
//! No wall-clock time, no global state, no threads: simulations are pure
//! functions of their configuration and seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timer;
pub mod trace;

pub use event::EventQueue;
pub use fault::{FaultConfig, FaultConfigBuilder, FaultInjector, FaultOutcome, GilbertElliott};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, TimeWeighted};
pub use time::{SimTime, CYCLE_NS, NS_PER_SEC};
pub use timer::{TimerId, TimerWheel};
pub use trace::{EventRing, Trace, TraceEvent};
