//! Fault injection for loss and corruption experiments (E10).
//!
//! ATM networks are characterized by very low — but nonzero — cell loss
//! (§5.2 assumes "very low cell loss rate"); the SPP must detect lost
//! cells by sequence number and corrupted payloads by CRC. The
//! [`FaultInjector`] perturbs a byte stream the same way the smoltcp
//! examples do: independent per-unit drop and corrupt probabilities,
//! plus optional uniform extra delay.

use crate::rng::SimRng;
use crate::time::SimTime;

/// Fault probabilities applied per transmission unit (cell or frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability the unit is silently dropped.
    pub drop_probability: f64,
    /// Probability exactly one bit of the unit is flipped.
    pub corrupt_probability: f64,
    /// Maximum extra delay (uniform in `[0, max_extra_delay]`).
    pub max_extra_delay: SimTime,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            max_extra_delay: SimTime::ZERO,
        }
    }
}

impl FaultConfig {
    /// A fault-free configuration.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Drop-only faults.
    pub fn drops(p: f64) -> FaultConfig {
        FaultConfig { drop_probability: p, ..Default::default() }
    }

    /// Corrupt-only faults.
    pub fn corruption(p: f64) -> FaultConfig {
        FaultConfig { corrupt_probability: p, ..Default::default() }
    }
}

/// What happened to one unit passed through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered unmodified after `extra_delay`.
    Delivered {
        /// Additional queueing/jitter delay to apply.
        extra_delay: SimTime,
    },
    /// Dropped; nothing arrives.
    Dropped,
    /// Delivered after `extra_delay` with one bit flipped in place.
    Corrupted {
        /// Additional queueing/jitter delay to apply.
        extra_delay: SimTime,
    },
}

/// A deterministic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SimRng,
    drops: u64,
    corruptions: u64,
    passed: u64,
}

impl FaultInjector {
    /// Create with the given config and seed.
    pub fn new(config: FaultConfig, rng: SimRng) -> FaultInjector {
        FaultInjector { config, rng, drops: 0, corruptions: 0, passed: 0 }
    }

    /// Pass one unit through the injector, possibly mutating it.
    pub fn apply(&mut self, unit: &mut [u8]) -> FaultOutcome {
        if self.rng.chance(self.config.drop_probability) {
            self.drops += 1;
            return FaultOutcome::Dropped;
        }
        let extra_delay = if self.config.max_extra_delay == SimTime::ZERO {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.rng.below(self.config.max_extra_delay.as_ns() + 1))
        };
        if !unit.is_empty() && self.rng.chance(self.config.corrupt_probability) {
            let bit = self.rng.below(unit.len() as u64 * 8);
            unit[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.corruptions += 1;
            return FaultOutcome::Corrupted { extra_delay };
        }
        self.passed += 1;
        FaultOutcome::Delivered { extra_delay }
    }

    /// Units dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Units corrupted so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Units passed unmodified so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(config: FaultConfig) -> FaultInjector {
        FaultInjector::new(config, SimRng::new(1234))
    }

    #[test]
    fn no_faults_passes_everything() {
        let mut inj = injector(FaultConfig::none());
        let original = [1u8, 2, 3, 4];
        for _ in 0..1000 {
            let mut unit = original;
            assert_eq!(inj.apply(&mut unit), FaultOutcome::Delivered { extra_delay: SimTime::ZERO });
            assert_eq!(unit, original);
        }
        assert_eq!(inj.passed(), 1000);
        assert_eq!(inj.drops(), 0);
    }

    #[test]
    fn drop_rate_converges() {
        let mut inj = injector(FaultConfig::drops(0.1));
        let n = 100_000;
        for _ in 0..n {
            let mut unit = [0u8; 53];
            inj.apply(&mut unit);
        }
        let rate = inj.drops() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = injector(FaultConfig::corruption(1.0));
        let original = [0u8; 53];
        let mut unit = original;
        match inj.apply(&mut unit) {
            FaultOutcome::Corrupted { .. } => {}
            other => panic!("expected corruption, got {other:?}"),
        }
        let flipped: u32 = unit
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn delay_bounded() {
        let cfg = FaultConfig {
            max_extra_delay: SimTime::from_ns(500),
            ..FaultConfig::none()
        };
        let mut inj = injector(cfg);
        let mut saw_nonzero = false;
        for _ in 0..1000 {
            let mut unit = [0u8; 10];
            if let FaultOutcome::Delivered { extra_delay } = inj.apply(&mut unit) {
                assert!(extra_delay <= SimTime::from_ns(500));
                saw_nonzero |= extra_delay > SimTime::ZERO;
            }
        }
        assert!(saw_nonzero);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut inj = FaultInjector::new(
                FaultConfig { drop_probability: 0.2, corrupt_probability: 0.2, max_extra_delay: SimTime::from_ns(100) },
                SimRng::new(77),
            );
            let mut outcomes = Vec::new();
            for i in 0..500u32 {
                let mut unit = i.to_le_bytes();
                outcomes.push((inj.apply(&mut unit), unit));
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_unit_never_corrupted() {
        let mut inj = injector(FaultConfig::corruption(1.0));
        let mut unit: [u8; 0] = [];
        assert!(matches!(inj.apply(&mut unit), FaultOutcome::Delivered { .. }));
    }
}
