//! Fault injection for loss and corruption experiments (E10) and the
//! robustness suite (link flaps, loss bursts, duplication).
//!
//! ATM networks are characterized by very low — but nonzero — cell loss
//! (§5.2 assumes "very low cell loss rate"); the SPP must detect lost
//! cells by sequence number and corrupted payloads by CRC. The
//! [`FaultInjector`] perturbs a byte stream the same way the smoltcp
//! examples do: independent per-unit drop and corrupt probabilities,
//! plus optional uniform extra delay. On top of that it models the
//! failure modes plesio-reliable congrams (§2.4) must survive:
//!
//! * **burst loss** — a two-state Gilbert–Elliott channel whose bad
//!   state drops runs of consecutive units, unlike the independent
//!   (Bernoulli) drop;
//! * **link flaps** — a `[down, up)` window during which every unit is
//!   lost, standing in for a failed switch or unplugged fiber;
//! * **duplication** — the same unit arriving twice, as misrouted or
//!   retransmitted cells do — optionally in **bursts** of several
//!   copies, the pathological replay a misbehaving switch produces;
//! * **reordering** — a unit held back and delivered after its
//!   successor, defeating any in-order assumption in reassembly;
//! * **misinsertion** — a unit whose addressing is corrupted so it
//!   lands on a different live connection (the classic AAL hazard:
//!   a header bit-flip pattern that defeats the HEC). The injector is
//!   format-agnostic, so it reports the event and leaves the readdress
//!   to the caller, which knows the live connection set;
//! * **delay skew** — a deterministic sawtooth added to every
//!   delivered unit's delay, modeling clock drift between the network
//!   and the gateway's timer base so arrivals bunch up against
//!   reassembly deadlines.
//!
//! Compose the pieces with [`FaultConfig::builder`].

use crate::rng::SimRng;
use crate::time::SimTime;

/// A two-state Gilbert–Elliott loss channel: a `Good` state with low
/// (usually zero) loss and a `Bad` state with high loss, with geometric
/// sojourn times in each. Produces the bursty loss patterns real ATM
/// links exhibit under congestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-unit probability of moving Good → Bad.
    pub p_good_to_bad: f64,
    /// Per-unit probability of moving Bad → Good.
    pub p_bad_to_good: f64,
    /// Loss probability while Good (usually 0).
    pub loss_good: f64,
    /// Loss probability while Bad (usually near 1).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A bursty channel that is loss-free when Good and loses
    /// everything when Bad, with the given transition probabilities.
    pub fn bursty(p_good_to_bad: f64, p_bad_to_good: f64) -> GilbertElliott {
        GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good: 0.0, loss_bad: 1.0 }
    }
}

/// A deterministic sawtooth added to every delivered unit's delay:
/// the extra delay ramps from zero to `magnitude` over each `period`,
/// then snaps back. Models clock drift between the network and the
/// gateway's timer base ("timer-deadline skew"): arrivals late in a
/// period land bunched against reassembly deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySkew {
    /// Sawtooth period (must be nonzero to have any effect).
    pub period: SimTime,
    /// Peak extra delay, reached at the end of each period.
    pub magnitude: SimTime,
}

impl DelaySkew {
    /// The skew contribution at `now` — a pure function of time, so it
    /// consumes no randomness and replays bit-for-bit.
    pub fn at(&self, now: SimTime) -> SimTime {
        let period = self.period.as_ns();
        if period == 0 {
            return SimTime::ZERO;
        }
        let phase = now.as_ns() % period;
        SimTime::from_ns((self.magnitude.as_ns() as u128 * phase as u128 / period as u128) as u64)
    }
}

/// Fault probabilities applied per transmission unit (cell or frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability the unit is silently dropped (independent loss).
    pub drop_probability: f64,
    /// Probability exactly one bit of the unit is flipped.
    pub corrupt_probability: f64,
    /// Maximum extra delay (uniform in `[0, max_extra_delay]`).
    pub max_extra_delay: SimTime,
    /// Probability the unit is delivered twice (or more; see
    /// [`FaultConfig::duplicate_burst_max`]).
    pub duplicate_probability: f64,
    /// Upper bound on total copies delivered when duplication fires
    /// (uniform in `[2, max]`; values below 2 behave as 2).
    pub duplicate_burst_max: u32,
    /// Probability the unit is held back and delivered after its
    /// successor (the caller performs the swap).
    pub reorder_probability: f64,
    /// Probability the unit's addressing is corrupted so it lands on a
    /// live foreign connection (the caller performs the readdress).
    pub misinsert_probability: f64,
    /// Deterministic sawtooth delay added to every delivered unit.
    pub delay_skew: Option<DelaySkew>,
    /// Burst (Gilbert–Elliott) loss channel, applied on top of the
    /// independent drop probability.
    pub burst: Option<GilbertElliott>,
    /// Link flap: every unit offered in `[down, up)` is lost.
    pub link_down: Option<(SimTime, SimTime)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            max_extra_delay: SimTime::ZERO,
            duplicate_probability: 0.0,
            duplicate_burst_max: 2,
            reorder_probability: 0.0,
            misinsert_probability: 0.0,
            delay_skew: None,
            burst: None,
            link_down: None,
        }
    }
}

impl FaultConfig {
    /// A fault-free configuration.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Drop-only faults.
    pub fn drops(p: f64) -> FaultConfig {
        FaultConfig { drop_probability: p, ..Default::default() }
    }

    /// Corrupt-only faults.
    pub fn corruption(p: f64) -> FaultConfig {
        FaultConfig { corrupt_probability: p, ..Default::default() }
    }

    /// Compose faults fluently: drops, corruption, bursts, flaps, and
    /// duplication in one config.
    pub fn builder() -> FaultConfigBuilder {
        FaultConfigBuilder { config: FaultConfig::default() }
    }
}

/// Builder returned by [`FaultConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct FaultConfigBuilder {
    config: FaultConfig,
}

impl FaultConfigBuilder {
    /// Independent per-unit drop probability.
    pub fn drops(mut self, p: f64) -> Self {
        self.config.drop_probability = p;
        self
    }

    /// Single-bit corruption probability.
    pub fn corruption(mut self, p: f64) -> Self {
        self.config.corrupt_probability = p;
        self
    }

    /// Maximum uniform extra delay.
    pub fn max_extra_delay(mut self, d: SimTime) -> Self {
        self.config.max_extra_delay = d;
        self
    }

    /// Per-unit duplication probability.
    pub fn duplication(mut self, p: f64) -> Self {
        self.config.duplicate_probability = p;
        self
    }

    /// Cap on total copies delivered when duplication fires (≥ 2).
    pub fn duplication_burst(mut self, max_copies: u32) -> Self {
        self.config.duplicate_burst_max = max_copies;
        self
    }

    /// Per-unit reordering probability (unit delivered after its
    /// successor).
    pub fn reordering(mut self, p: f64) -> Self {
        self.config.reorder_probability = p;
        self
    }

    /// Per-unit misinsertion probability (unit readdressed onto a live
    /// foreign connection by the caller).
    pub fn misinsertion(mut self, p: f64) -> Self {
        self.config.misinsert_probability = p;
        self
    }

    /// Deterministic sawtooth delay skew.
    pub fn delay_skew(mut self, period: SimTime, magnitude: SimTime) -> Self {
        self.config.delay_skew = Some(DelaySkew { period, magnitude });
        self
    }

    /// Gilbert–Elliott burst-loss channel.
    pub fn burst(mut self, ge: GilbertElliott) -> Self {
        self.config.burst = Some(ge);
        self
    }

    /// One link flap: all units in `[down, up)` are lost.
    pub fn link_flap(mut self, down: SimTime, up: SimTime) -> Self {
        self.config.link_down = Some((down, up));
        self
    }

    /// The finished configuration.
    pub fn build(self) -> FaultConfig {
        self.config
    }
}

/// What happened to one unit passed through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered unmodified after `extra_delay`.
    Delivered {
        /// Additional queueing/jitter delay to apply.
        extra_delay: SimTime,
    },
    /// Dropped; nothing arrives.
    Dropped,
    /// Delivered after `extra_delay` with one bit flipped in place.
    Corrupted {
        /// Additional queueing/jitter delay to apply.
        extra_delay: SimTime,
    },
    /// Delivered unmodified after `extra_delay` — `copies` times.
    Duplicated {
        /// Additional queueing/jitter delay to apply (to every copy).
        extra_delay: SimTime,
        /// Total number of deliveries (≥ 2).
        copies: u32,
    },
    /// Delivered after `extra_delay`, but out of order: the caller must
    /// hold the unit back and deliver it after its successor.
    Reordered {
        /// Additional queueing/jitter delay to apply.
        extra_delay: SimTime,
    },
    /// Delivered after `extra_delay` onto the wrong connection: the
    /// caller must corrupt the unit's addressing so it lands on a live
    /// foreign connection (for ATM cells: rewrite the VCI and restamp
    /// the HEC, modeling a header bit-flip pattern the HEC cannot
    /// catch).
    Misinserted {
        /// Additional queueing/jitter delay to apply.
        extra_delay: SimTime,
    },
}

/// A deterministic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SimRng,
    /// Gilbert–Elliott channel currently in its Bad state.
    ge_bad: bool,
    drops: u64,
    burst_drops: u64,
    flap_drops: u64,
    corruptions: u64,
    duplicates: u64,
    reorders: u64,
    misinserts: u64,
    passed: u64,
}

impl FaultInjector {
    /// Create with the given config and seed.
    pub fn new(config: FaultConfig, rng: SimRng) -> FaultInjector {
        FaultInjector {
            config,
            rng,
            ge_bad: false,
            drops: 0,
            burst_drops: 0,
            flap_drops: 0,
            corruptions: 0,
            duplicates: 0,
            reorders: 0,
            misinserts: 0,
            passed: 0,
        }
    }

    /// True while the configured link flap holds the link down at `now`.
    pub fn link_down(&self, now: SimTime) -> bool {
        matches!(self.config.link_down, Some((down, up)) if down <= now && now < up)
    }

    /// Pass one unit through the injector at `now`, possibly mutating
    /// it. Fault order: link flap → burst loss → independent drop →
    /// delay (uniform jitter + deterministic skew) → corruption →
    /// misinsertion → reordering → duplication.
    pub fn apply(&mut self, now: SimTime, unit: &mut [u8]) -> FaultOutcome {
        if self.link_down(now) {
            self.flap_drops += 1;
            return FaultOutcome::Dropped;
        }
        if let Some(ge) = self.config.burst {
            if self.ge_bad {
                if self.rng.chance(ge.p_bad_to_good) {
                    self.ge_bad = false;
                }
            } else if self.rng.chance(ge.p_good_to_bad) {
                self.ge_bad = true;
            }
            let loss = if self.ge_bad { ge.loss_bad } else { ge.loss_good };
            if self.rng.chance(loss) {
                self.burst_drops += 1;
                return FaultOutcome::Dropped;
            }
        }
        if self.rng.chance(self.config.drop_probability) {
            self.drops += 1;
            return FaultOutcome::Dropped;
        }
        let jitter = if self.config.max_extra_delay == SimTime::ZERO {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.rng.below(self.config.max_extra_delay.as_ns() + 1))
        };
        let skew = self.config.delay_skew.map(|s| s.at(now)).unwrap_or(SimTime::ZERO);
        let extra_delay = jitter + skew;
        if !unit.is_empty() && self.rng.chance(self.config.corrupt_probability) {
            let bit = self.rng.below(unit.len() as u64 * 8);
            unit[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.corruptions += 1;
            return FaultOutcome::Corrupted { extra_delay };
        }
        if self.rng.chance(self.config.misinsert_probability) {
            self.misinserts += 1;
            return FaultOutcome::Misinserted { extra_delay };
        }
        if self.rng.chance(self.config.reorder_probability) {
            self.reorders += 1;
            return FaultOutcome::Reordered { extra_delay };
        }
        if self.rng.chance(self.config.duplicate_probability) {
            let max = self.config.duplicate_burst_max.max(2);
            let copies = if max == 2 { 2 } else { 2 + self.rng.below(u64::from(max) - 1) as u32 };
            self.duplicates += u64::from(copies) - 1;
            return FaultOutcome::Duplicated { extra_delay, copies };
        }
        self.passed += 1;
        FaultOutcome::Delivered { extra_delay }
    }

    /// Units dropped by the independent (Bernoulli) loss so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Units dropped by the burst (Gilbert–Elliott) channel so far.
    pub fn burst_drops(&self) -> u64 {
        self.burst_drops
    }

    /// Units dropped by the link flap so far.
    pub fn flap_drops(&self) -> u64 {
        self.flap_drops
    }

    /// Units corrupted so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Extra copies produced by duplication so far (a burst of `c`
    /// copies counts `c − 1`).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Units marked for out-of-order delivery so far.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Units marked for misinsertion onto a foreign connection so far.
    pub fn misinserts(&self) -> u64 {
        self.misinserts
    }

    /// Units passed unmodified (and unduplicated) so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(config: FaultConfig) -> FaultInjector {
        FaultInjector::new(config, SimRng::new(1234))
    }

    #[test]
    fn no_faults_passes_everything() {
        let mut inj = injector(FaultConfig::none());
        let original = [1u8, 2, 3, 4];
        for _ in 0..1000 {
            let mut unit = original;
            assert_eq!(
                inj.apply(SimTime::ZERO, &mut unit),
                FaultOutcome::Delivered { extra_delay: SimTime::ZERO }
            );
            assert_eq!(unit, original);
        }
        assert_eq!(inj.passed(), 1000);
        assert_eq!(inj.drops(), 0);
    }

    #[test]
    fn drop_rate_converges() {
        let mut inj = injector(FaultConfig::drops(0.1));
        let n = 100_000;
        for _ in 0..n {
            let mut unit = [0u8; 53];
            inj.apply(SimTime::ZERO, &mut unit);
        }
        let rate = inj.drops() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = injector(FaultConfig::corruption(1.0));
        let original = [0u8; 53];
        let mut unit = original;
        match inj.apply(SimTime::ZERO, &mut unit) {
            FaultOutcome::Corrupted { .. } => {}
            other => panic!("expected corruption, got {other:?}"),
        }
        let flipped: u32 =
            unit.iter().zip(original.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn delay_bounded() {
        let cfg = FaultConfig { max_extra_delay: SimTime::from_ns(500), ..FaultConfig::none() };
        let mut inj = injector(cfg);
        let mut saw_nonzero = false;
        for _ in 0..1000 {
            let mut unit = [0u8; 10];
            if let FaultOutcome::Delivered { extra_delay } = inj.apply(SimTime::ZERO, &mut unit) {
                assert!(extra_delay <= SimTime::from_ns(500));
                saw_nonzero |= extra_delay > SimTime::ZERO;
            }
        }
        assert!(saw_nonzero);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let config = FaultConfig::builder()
                .drops(0.2)
                .corruption(0.2)
                .max_extra_delay(SimTime::from_ns(100))
                .duplication(0.1)
                .burst(GilbertElliott::bursty(0.05, 0.3))
                .build();
            let mut inj = FaultInjector::new(config, SimRng::new(77));
            let mut outcomes = Vec::new();
            for i in 0..500u32 {
                let mut unit = i.to_le_bytes();
                outcomes.push((inj.apply(SimTime::from_us(i as u64), &mut unit), unit));
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_unit_never_corrupted() {
        let mut inj = injector(FaultConfig::corruption(1.0));
        let mut unit: [u8; 0] = [];
        assert!(matches!(inj.apply(SimTime::ZERO, &mut unit), FaultOutcome::Delivered { .. }));
    }

    #[test]
    fn link_flap_loses_everything_in_window() {
        let cfg =
            FaultConfig::builder().link_flap(SimTime::from_ms(10), SimTime::from_ms(20)).build();
        let mut inj = injector(cfg);
        assert!(!inj.link_down(SimTime::from_ms(9)));
        assert!(inj.link_down(SimTime::from_ms(10)));
        assert!(inj.link_down(SimTime::from_ms(19)));
        assert!(!inj.link_down(SimTime::from_ms(20)));
        for ms in 0..30u64 {
            let mut unit = [0u8; 53];
            let outcome = inj.apply(SimTime::from_ms(ms), &mut unit);
            if (10..20).contains(&ms) {
                assert_eq!(outcome, FaultOutcome::Dropped);
            } else {
                assert!(matches!(outcome, FaultOutcome::Delivered { .. }));
            }
        }
        assert_eq!(inj.flap_drops(), 10);
        assert_eq!(inj.drops(), 0, "flap drops are counted separately");
    }

    #[test]
    fn burst_loss_is_bursty_not_independent() {
        // Mean bad sojourn 1/0.25 = 4 units; overall loss ≈
        // p_gb/(p_gb+p_bg) ≈ 17%. Bernoulli loss at the same rate would
        // almost never produce runs of ≥ 4 consecutive drops at the
        // observed frequency.
        let cfg = FaultConfig::builder().burst(GilbertElliott::bursty(0.05, 0.25)).build();
        let mut inj = injector(cfg);
        let n = 100_000;
        let mut run = 0u32;
        let mut long_runs = 0u32;
        for _ in 0..n {
            let mut unit = [0u8; 53];
            match inj.apply(SimTime::ZERO, &mut unit) {
                FaultOutcome::Dropped => run += 1,
                _ => {
                    if run >= 4 {
                        long_runs += 1;
                    }
                    run = 0;
                }
            }
        }
        let rate = inj.burst_drops() as f64 / n as f64;
        assert!((rate - 0.167).abs() < 0.05, "overall loss near p_gb/(p_gb+p_bg): {rate}");
        // ≈ p_gb · P(sojourn ≥ 4) · n ≈ 0.05·0.42·83k ≈ 1.7k runs.
        assert!(long_runs > 500, "bursts of ≥4 consecutive losses: {long_runs}");
    }

    #[test]
    fn duplication_emits_duplicated_outcome() {
        let cfg = FaultConfig::builder().duplication(1.0).build();
        let mut inj = injector(cfg);
        let mut unit = [7u8; 53];
        assert_eq!(
            inj.apply(SimTime::ZERO, &mut unit),
            FaultOutcome::Duplicated { extra_delay: SimTime::ZERO, copies: 2 }
        );
        assert_eq!(inj.duplicates(), 1);
        assert_eq!(unit, [7u8; 53], "duplicates are not corrupted");
    }

    #[test]
    fn duplication_bursts_stay_within_cap() {
        let cfg = FaultConfig::builder().duplication(1.0).duplication_burst(5).build();
        let mut inj = injector(cfg);
        let mut saw_burst = false;
        for _ in 0..500 {
            let mut unit = [7u8; 53];
            match inj.apply(SimTime::ZERO, &mut unit) {
                FaultOutcome::Duplicated { copies, .. } => {
                    assert!((2..=5).contains(&copies), "copies {copies}");
                    saw_burst |= copies > 2;
                }
                other => panic!("expected duplication, got {other:?}"),
            }
        }
        assert!(saw_burst, "a cap of 5 should produce some bursts above 2");
    }

    #[test]
    fn reordering_emits_reordered_outcome() {
        let cfg = FaultConfig::builder().reordering(0.5).build();
        let mut inj = injector(cfg);
        let mut reordered = 0u32;
        for _ in 0..1000 {
            let mut unit = [3u8; 53];
            match inj.apply(SimTime::ZERO, &mut unit) {
                FaultOutcome::Reordered { .. } => reordered += 1,
                FaultOutcome::Delivered { .. } => {}
                other => panic!("unexpected outcome {other:?}"),
            }
            assert_eq!(unit, [3u8; 53], "reordering never mutates the unit");
        }
        assert_eq!(u64::from(reordered), inj.reorders());
        assert!((400..600).contains(&reordered), "rate near 0.5: {reordered}");
    }

    #[test]
    fn misinsertion_emits_misinserted_outcome() {
        let cfg = FaultConfig::builder().misinsertion(1.0).build();
        let mut inj = injector(cfg);
        let mut unit = [9u8; 53];
        assert_eq!(
            inj.apply(SimTime::ZERO, &mut unit),
            FaultOutcome::Misinserted { extra_delay: SimTime::ZERO }
        );
        assert_eq!(unit, [9u8; 53], "the readdress is the caller's job");
        assert_eq!(inj.misinserts(), 1);
    }

    #[test]
    fn delay_skew_is_a_sawtooth_of_time_only() {
        let cfg =
            FaultConfig::builder().delay_skew(SimTime::from_us(100), SimTime::from_us(10)).build();
        let mut inj = injector(cfg);
        let probe = |inj: &mut FaultInjector, now| {
            let mut unit = [0u8; 53];
            match inj.apply(now, &mut unit) {
                FaultOutcome::Delivered { extra_delay } => extra_delay,
                other => panic!("unexpected outcome {other:?}"),
            }
        };
        assert_eq!(probe(&mut inj, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(probe(&mut inj, SimTime::from_us(50)), SimTime::from_us(5));
        assert_eq!(probe(&mut inj, SimTime::from_us(99)), SimTime::from_ns(9900));
        // The sawtooth snaps back at each period boundary.
        assert_eq!(probe(&mut inj, SimTime::from_us(100)), SimTime::ZERO);
        assert_eq!(probe(&mut inj, SimTime::from_us(150)), SimTime::from_us(5));
    }

    #[test]
    fn deterministic_with_extended_faults() {
        let run = || {
            let config = FaultConfig::builder()
                .drops(0.1)
                .corruption(0.1)
                .max_extra_delay(SimTime::from_ns(100))
                .duplication(0.1)
                .duplication_burst(4)
                .reordering(0.1)
                .misinsertion(0.05)
                .delay_skew(SimTime::from_us(10), SimTime::from_ns(400))
                .burst(GilbertElliott::bursty(0.05, 0.3))
                .build();
            let mut inj = FaultInjector::new(config, SimRng::new(99));
            let mut outcomes = Vec::new();
            for i in 0..500u32 {
                let mut unit = i.to_le_bytes();
                outcomes.push((inj.apply(SimTime::from_us(i as u64), &mut unit), unit));
            }
            (outcomes, inj.reorders(), inj.misinserts(), inj.duplicates())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn builder_composes_all_faults() {
        let cfg = FaultConfig::builder()
            .drops(0.1)
            .corruption(0.2)
            .max_extra_delay(SimTime::from_us(3))
            .duplication(0.3)
            .duplication_burst(4)
            .reordering(0.05)
            .misinsertion(0.02)
            .delay_skew(SimTime::from_ms(1), SimTime::from_us(5))
            .burst(GilbertElliott::bursty(0.01, 0.5))
            .link_flap(SimTime::from_ms(1), SimTime::from_ms(2))
            .build();
        assert_eq!(cfg.drop_probability, 0.1);
        assert_eq!(cfg.corrupt_probability, 0.2);
        assert_eq!(cfg.max_extra_delay, SimTime::from_us(3));
        assert_eq!(cfg.duplicate_probability, 0.3);
        assert_eq!(cfg.duplicate_burst_max, 4);
        assert_eq!(cfg.reorder_probability, 0.05);
        assert_eq!(cfg.misinsert_probability, 0.02);
        assert_eq!(
            cfg.delay_skew,
            Some(DelaySkew { period: SimTime::from_ms(1), magnitude: SimTime::from_us(5) })
        );
        assert_eq!(cfg.burst, Some(GilbertElliott::bursty(0.01, 0.5)));
        assert_eq!(cfg.link_down, Some((SimTime::from_ms(1), SimTime::from_ms(2))));
    }
}
