//! A generic, deterministic discrete-event queue.
//!
//! Events are ordered by timestamp; events bearing the same timestamp
//! pop in the order they were pushed (a monotone sequence number breaks
//! ties), which keeps simulations reproducible regardless of heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue over event type `E`.
///
/// ```
/// # use gw_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(200), "late");
/// q.push(SimTime::from_ns(100), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(100), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(200), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is before the current simulation time: the past
    /// is immutable in a causal simulation, and silently reordering
    /// would corrupt results.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {} < now {}",
            time.as_ns(),
            self.now.as_ns()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedule `event` a relative `delay` after the current time.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(100);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(500), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(500));
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(100), "a");
        q.pop();
        q.push_after(SimTime::from_ns(50), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(150), "b")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(100), ());
        q.pop();
        q.push(SimTime::from_ns(50), ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(7), ());
        q.push(SimTime::from_ns(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(3)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(30), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
