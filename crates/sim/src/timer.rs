//! Hierarchical timer wheel: O(1) arm/cancel, O(expired) expiry.
//!
//! The gateway's control path needs two kinds of deadlines — per-frame
//! reassembly timeouts in the SPP (§5.2's reassembly timer) and per-VC
//! liveness windows in the NPE — and the paper's hardware charges a
//! fixed, bounded cost per cell regardless of how many connections are
//! programmed. Scanning every VC's deadline on every `advance` violates
//! that contract; this wheel restores it. Deadlines hash into one of
//! six levels of 64 slots (level-0 slot = 64 ns, one level-5 slot ≈
//! 69 s, total span ≈ 73 min), entries live in a slab of doubly-linked
//! nodes so `cancel` is O(1) without allocation, and [`TimerWheel::poll`]
//! touches only slots that actually expired. Deadlines beyond the wheel's
//! span park in an overflow list and migrate inward as time advances.
//!
//! Entries carry their exact [`SimTime`] deadline: expiry fires an entry
//! only once `now >= deadline` (never early, even mid-tick), and
//! [`TimerWheel::next_deadline`] reports the exact earliest deadline, so
//! callers that previously scanned a map for the minimum see identical
//! values.

use crate::time::SimTime;

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels. Spans `64^6` ticks ≈ 73 minutes of simulated time.
const LEVELS: usize = 6;
/// log2 of the level-0 tick in nanoseconds (64 ns — fine enough that a
/// 40 ns cycle deadline lands at most one tick away, coarse enough that
/// millisecond timeouts stay in the low levels).
const TICK_SHIFT: u32 = 6;
/// Null link in the entry slab.
const NIL: u32 = u32::MAX;

/// `home` tag: entry is on the free list.
const HOME_FREE: u16 = u16::MAX;
/// `home` tag: entry is on the overflow list.
const HOME_OVERFLOW: u16 = u16::MAX - 1;

/// Handle to an armed timer, returned by [`TimerWheel::insert`].
///
/// Generation-tagged: after the entry fires or is cancelled its slab
/// slot may be reused, and a stale `TimerId` is then recognised and
/// rejected by [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Entry<T> {
    deadline: SimTime,
    item: Option<T>,
    generation: u32,
    next: u32,
    prev: u32,
    /// Which list the entry is on: `level * SLOTS + slot`,
    /// [`HOME_OVERFLOW`], or [`HOME_FREE`].
    home: u16,
}

/// A hierarchical timer wheel over [`SimTime`] deadlines.
///
/// Steady state performs no heap allocation: the slab grows only when
/// more timers are simultaneously armed than ever before, expired and
/// cancelled entries recycle through an intrusive free list, and
/// [`TimerWheel::poll`] writes into a caller-owned scratch vector.
#[derive(Debug)]
pub struct TimerWheel<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    heads: [[u32; SLOTS]; LEVELS],
    /// Per-level bitmap of occupied slots.
    occupied: [u64; LEVELS],
    overflow_head: u32,
    /// Last tick the wheel has advanced to; never decreases.
    current_tick: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

fn tick_of(t: SimTime) -> u64 {
    t.as_ns() >> TICK_SHIFT
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            entries: Vec::new(),
            free_head: NIL,
            heads: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow_head: NIL,
            current_tick: 0,
            len: 0,
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm a timer for `deadline`. A deadline at or before the wheel's
    /// current position fires on the next [`TimerWheel::poll`] whose
    /// `now` reaches it.
    pub fn insert(&mut self, deadline: SimTime, item: T) -> TimerId {
        let index = self.alloc(deadline, item);
        self.place(index);
        self.len += 1;
        TimerId { index, generation: self.entries[index as usize].generation }
    }

    /// Disarm `id`, returning its item, or `None` when the timer has
    /// already fired, was already cancelled, or the id is stale.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let entry = self.entries.get(id.index as usize)?;
        if entry.generation != id.generation || entry.home == HOME_FREE {
            return None;
        }
        self.unlink(id.index);
        let item = self.release(id.index);
        self.len -= 1;
        Some(item)
    }

    /// The exact deadline `id` is armed for, or `None` when stale.
    pub fn deadline(&self, id: TimerId) -> Option<SimTime> {
        let entry = self.entries.get(id.index as usize)?;
        if entry.generation != id.generation || entry.home == HOME_FREE {
            return None;
        }
        Some(entry.deadline)
    }

    /// The exact earliest armed deadline, or `None` when empty.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for level in 0..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            let cur_pos = ((self.current_tick >> shift) & (SLOTS as u64 - 1)) as u32;
            let masked = self.occupied[level] & !((1u64 << cur_pos) - 1);
            debug_assert_eq!(masked, self.occupied[level], "no slot may lag the cursor");
            if masked == 0 {
                continue;
            }
            let slot = masked.trailing_zeros() as usize;
            // Slot ranges within a level are disjoint and ordered, so the
            // first occupied slot holds the level's earliest entry.
            let mut idx = self.heads[level][slot];
            while idx != NIL {
                let dl = self.entries[idx as usize].deadline;
                if best.is_none_or(|b| dl < b) {
                    best = Some(dl);
                }
                idx = self.entries[idx as usize].next;
            }
        }
        let mut idx = self.overflow_head;
        while idx != NIL {
            let dl = self.entries[idx as usize].deadline;
            if best.is_none_or(|b| dl < b) {
                best = Some(dl);
            }
            idx = self.entries[idx as usize].next;
        }
        best
    }

    /// Advance the wheel to `now`, appending every entry whose deadline
    /// is `<= now` to `expired` as `(deadline, item)` pairs, in no
    /// particular order. Cost is proportional to the number of expired
    /// entries plus the slots they occupied — independent of how many
    /// timers remain armed.
    pub fn poll(&mut self, now: SimTime, expired: &mut Vec<(SimTime, T)>) {
        let target = tick_of(now).max(self.current_tick);
        while let Some((level, slot, start)) = self.earliest_slot() {
            if start > target {
                break;
            }
            self.current_tick = start;
            if level == 0 {
                // Every entry in a level-0 slot shares the tick `start`;
                // when `start < target` the whole tick is past, and when
                // `start == target` only sub-tick stragglers may remain.
                let mut idx = self.heads[0][slot];
                while idx != NIL {
                    let next = self.entries[idx as usize].next;
                    if self.entries[idx as usize].deadline <= now {
                        self.unlink(idx);
                        let deadline = self.entries[idx as usize].deadline;
                        let item = self.release(idx);
                        self.len -= 1;
                        expired.push((deadline, item));
                    }
                    idx = next;
                }
                if start == target {
                    break;
                }
                self.current_tick = start + 1;
            } else {
                // Cascade: redistribute the slot's entries downward. Each
                // lands at a strictly lower level, so this terminates.
                let mut idx = self.heads[level][slot];
                while idx != NIL {
                    let next = self.entries[idx as usize].next;
                    self.unlink(idx);
                    self.place(idx);
                    idx = next;
                }
            }
        }
        self.current_tick = self.current_tick.max(target);
        // Overflow entries migrate inward (or fire) once in range.
        let mut idx = self.overflow_head;
        while idx != NIL {
            let next = self.entries[idx as usize].next;
            let deadline = self.entries[idx as usize].deadline;
            if deadline <= now {
                self.unlink(idx);
                let item = self.release(idx);
                self.len -= 1;
                expired.push((deadline, item));
            } else if self.level_slot(tick_of(deadline)).is_some() {
                self.unlink(idx);
                self.place(idx);
            }
            idx = next;
        }
    }

    /// Earliest occupied wheel slot as `(level, slot, start_tick)`.
    fn earliest_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            let cur_pos = ((self.current_tick >> shift) & (SLOTS as u64 - 1)) as u32;
            let masked = self.occupied[level] & !((1u64 << cur_pos) - 1);
            debug_assert_eq!(masked, self.occupied[level], "no slot may lag the cursor");
            if masked == 0 {
                continue;
            }
            let slot = masked.trailing_zeros() as usize;
            let lap_mask = !((1u64 << (shift + LEVEL_BITS)) - 1);
            let start = (self.current_tick & lap_mask) | ((slot as u64) << shift);
            if best.is_none_or(|(_, _, s)| start < s) {
                best = Some((level, slot, start));
            }
        }
        best
    }

    /// Level and slot for a deadline tick, or `None` when it lies beyond
    /// the wheel's span (→ overflow list). Uses the highest bit-group in
    /// which the deadline differs from the cursor, which guarantees the
    /// chosen slot is never behind the cursor at its level.
    fn level_slot(&self, deadline_tick: u64) -> Option<(usize, usize)> {
        let tick = deadline_tick.max(self.current_tick);
        let diff = tick ^ self.current_tick;
        if diff == 0 {
            return Some((0, (tick & (SLOTS as u64 - 1)) as usize));
        }
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            return None;
        }
        let slot = ((tick >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        Some((level, slot))
    }

    fn place(&mut self, index: u32) {
        let deadline_tick = tick_of(self.entries[index as usize].deadline);
        match self.level_slot(deadline_tick) {
            Some((level, slot)) => self.link_slot(index, level, slot),
            None => self.link_overflow(index),
        }
    }

    fn alloc(&mut self, deadline: SimTime, item: T) -> u32 {
        if self.free_head != NIL {
            let index = self.free_head;
            let entry = &mut self.entries[index as usize];
            self.free_head = entry.next;
            entry.deadline = deadline;
            entry.item = Some(item);
            entry.next = NIL;
            entry.prev = NIL;
            index
        } else {
            let index = self.entries.len() as u32;
            self.entries.push(Entry {
                deadline,
                item: Some(item),
                generation: 0,
                next: NIL,
                prev: NIL,
                home: HOME_FREE,
            });
            index
        }
    }

    /// Return an unlinked entry's item and recycle its slab slot.
    fn release(&mut self, index: u32) -> T {
        let entry = &mut self.entries[index as usize];
        let item = entry.item.take().expect("armed entry holds an item");
        entry.generation = entry.generation.wrapping_add(1);
        entry.home = HOME_FREE;
        entry.prev = NIL;
        entry.next = self.free_head;
        self.free_head = index;
        item
    }

    fn link_slot(&mut self, index: u32, level: usize, slot: usize) {
        let head = self.heads[level][slot];
        {
            let entry = &mut self.entries[index as usize];
            entry.home = (level * SLOTS + slot) as u16;
            entry.prev = NIL;
            entry.next = head;
        }
        if head != NIL {
            self.entries[head as usize].prev = index;
        }
        self.heads[level][slot] = index;
        self.occupied[level] |= 1u64 << slot;
    }

    fn link_overflow(&mut self, index: u32) {
        let head = self.overflow_head;
        {
            let entry = &mut self.entries[index as usize];
            entry.home = HOME_OVERFLOW;
            entry.prev = NIL;
            entry.next = head;
        }
        if head != NIL {
            self.entries[head as usize].prev = index;
        }
        self.overflow_head = index;
    }

    /// Remove an entry from its slot or overflow list (not the free list).
    fn unlink(&mut self, index: u32) {
        let (home, prev, next) = {
            let entry = &self.entries[index as usize];
            (entry.home, entry.prev, entry.next)
        };
        debug_assert_ne!(home, HOME_FREE, "cannot unlink a free entry");
        if prev != NIL {
            self.entries[prev as usize].next = next;
        } else if home == HOME_OVERFLOW {
            self.overflow_head = next;
        } else {
            let (level, slot) = ((home as usize) / SLOTS, (home as usize) % SLOTS);
            self.heads[level][slot] = next;
            if next == NIL {
                self.occupied[level] &= !(1u64 << slot);
            }
        }
        if next != NIL {
            self.entries[next as usize].prev = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(wheel: &mut TimerWheel<T>, now: SimTime) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        wheel.poll(now, &mut out);
        out
    }

    #[test]
    fn fires_at_exact_deadline_never_early() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::from_ns(100), "a");
        // 99 ns: same 64 ns tick as the deadline, but still early.
        assert!(drain(&mut w, SimTime::from_ns(99)).is_empty());
        let fired = drain(&mut w, SimTime::from_ns(100));
        assert_eq!(fired, vec![(SimTime::from_ns(100), "a")]);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_is_exact() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.insert(SimTime::from_us(50), 1u32);
        w.insert(SimTime::from_us(20), 2u32);
        w.insert(SimTime::from_ms(10), 3u32);
        assert_eq!(w.next_deadline(), Some(SimTime::from_us(20)));
        drain(&mut w, SimTime::from_us(20));
        assert_eq!(w.next_deadline(), Some(SimTime::from_us(50)));
        drain(&mut w, SimTime::from_us(50));
        assert_eq!(w.next_deadline(), Some(SimTime::from_ms(10)));
    }

    #[test]
    fn cancel_disarms_and_stale_ids_are_rejected() {
        let mut w = TimerWheel::new();
        let a = w.insert(SimTime::from_us(10), "a");
        let b = w.insert(SimTime::from_us(20), "b");
        assert_eq!(w.cancel(a), Some("a"));
        assert_eq!(w.cancel(a), None, "double cancel");
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(SimTime::from_us(20)));
        // The slab slot is recycled; the old id must not cancel the new
        // tenant.
        let c = w.insert(SimTime::from_us(5), "c");
        assert_eq!(w.cancel(a), None, "stale generation");
        assert_eq!(w.deadline(a), None);
        assert_eq!(w.deadline(c), Some(SimTime::from_us(5)));
        let mut fired = drain(&mut w, SimTime::from_ms(1));
        fired.sort_by_key(|(t, _)| *t);
        assert_eq!(fired, vec![(SimTime::from_us(5), "c"), (SimTime::from_us(20), "b")]);
        assert_eq!(w.cancel(b), None, "already fired");
    }

    #[test]
    fn long_deadlines_cascade_down_levels() {
        let mut w = TimerWheel::new();
        // Spread deadlines across every level: 64 ns tick ⇒ level k
        // covers up to 64^(k+1) ticks.
        let deadlines = [
            SimTime::from_ns(640),     // level 0
            SimTime::from_us(100),     // level 1
            SimTime::from_ms(5),       // level 2
            SimTime::from_ms(400),     // level 3
            SimTime::from_secs(30),    // level 4
            SimTime::from_secs(2_000), // level 5
        ];
        for (i, dl) in deadlines.iter().enumerate() {
            w.insert(*dl, i);
        }
        assert_eq!(w.next_deadline(), Some(deadlines[0]));
        for (i, dl) in deadlines.iter().enumerate() {
            // Step to just before, then exactly at, each deadline.
            assert!(drain(&mut w, dl.saturating_sub(SimTime::from_ns(1))).is_empty());
            assert_eq!(drain(&mut w, *dl), vec![(*dl, i)]);
        }
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn big_jump_fires_everything_once() {
        let mut w = TimerWheel::new();
        for i in 0..1000u64 {
            w.insert(SimTime::from_us(i * 7 + 1), i);
        }
        let mut fired = drain(&mut w, SimTime::from_secs(1));
        assert_eq!(fired.len(), 1000);
        fired.sort_by_key(|(_, i)| *i);
        for (i, (dl, item)) in fired.iter().enumerate() {
            assert_eq!(*item, i as u64);
            assert_eq!(*dl, SimTime::from_us(i as u64 * 7 + 1));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_deadlines_park_and_migrate() {
        let mut w = TimerWheel::new();
        // Beyond 64^6 ticks × 64 ns ≈ 78 min: parks in overflow.
        let far = SimTime::from_secs(10_000);
        w.insert(far, "far");
        w.insert(SimTime::from_us(1), "near");
        assert_eq!(w.next_deadline(), Some(SimTime::from_us(1)));
        assert_eq!(drain(&mut w, SimTime::from_us(1)).len(), 1);
        assert_eq!(w.next_deadline(), Some(far));
        // Advance to within wheel range of `far`: still armed, exact.
        assert!(drain(&mut w, SimTime::from_secs(9_999)).is_empty());
        assert_eq!(w.next_deadline(), Some(far));
        assert_eq!(drain(&mut w, far), vec![(far, "far")]);
    }

    #[test]
    fn same_tick_entries_fire_together() {
        let mut w = TimerWheel::new();
        // 64–127 ns share tick 1.
        w.insert(SimTime::from_ns(80), "a");
        w.insert(SimTime::from_ns(100), "b");
        let fired = drain(&mut w, SimTime::from_ns(90));
        assert_eq!(fired, vec![(SimTime::from_ns(80), "a")]);
        assert_eq!(w.next_deadline(), Some(SimTime::from_ns(100)));
        let fired = drain(&mut w, SimTime::from_ns(100));
        assert_eq!(fired, vec![(SimTime::from_ns(100), "b")]);
    }

    #[test]
    fn late_insert_fires_on_next_poll() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::from_us(1), "x");
        drain(&mut w, SimTime::from_ms(1));
        // Deadline already in the past relative to the wheel cursor.
        w.insert(SimTime::from_us(500), "late");
        assert_eq!(w.next_deadline(), Some(SimTime::from_us(500)));
        assert_eq!(drain(&mut w, SimTime::from_ms(1)), vec![(SimTime::from_us(500), "late")]);
    }

    #[test]
    fn slab_recycles_without_growth() {
        let mut w = TimerWheel::new();
        // Steady state: arm/fire churn reuses the same slab entries.
        for round in 0..100u64 {
            for k in 0..8u64 {
                w.insert(SimTime::from_us(round * 10 + k + 1), k);
            }
            let fired = drain(&mut w, SimTime::from_us(round * 10 + 9));
            assert_eq!(fired.len(), 8);
        }
        assert!(w.entries.len() <= 16, "slab grew to {}", w.entries.len());
    }
}
