//! Simulated time in integer nanoseconds.
//!
//! The gateway hardware runs at 25 MHz, so one clock cycle is exactly
//! 40 ns (§5.5 "The SPP is designed to operate at a clock rate of 25
//! Mhz, with a 40ns clock cycle"); integer nanoseconds represent every
//! quantity in the paper without rounding. FDDI's 100 Mb/s data rate
//! makes one octet 80 ns on the ring; ATM at 155.52 Mb/s makes one
//! 53-octet cell ≈ 2726 ns.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Nanoseconds per gateway clock cycle (25 MHz, §5.5).
pub const CYCLE_NS: u64 = 40;
/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * NS_PER_SEC)
    }

    /// From gateway clock cycles at 25 MHz (40 ns each).
    pub const fn from_cycles(cycles: u64) -> SimTime {
        SimTime(cycles * CYCLE_NS)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Whole gateway clock cycles elapsed.
    pub const fn as_cycles(self) -> u64 {
        self.0 / CYCLE_NS
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Round *up* to the next cycle boundary — hardware latches inputs on
    /// clock edges, so an event between edges takes effect at the next.
    pub const fn ceil_to_cycle(self) -> SimTime {
        SimTime(self.0.div_ceil(CYCLE_NS) * CYCLE_NS)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Transmission time of `bytes` octets at `bits_per_sec`, rounded up to
/// a whole nanosecond.
pub fn tx_time(bytes: usize, bits_per_sec: u64) -> SimTime {
    let bits = bytes as u64 * 8;
    SimTime((bits * NS_PER_SEC).div_ceil(bits_per_sec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_40ns() {
        assert_eq!(SimTime::from_cycles(1).as_ns(), 40);
        assert_eq!(SimTime::from_cycles(10).as_ns(), 400); // §5.5 latch+decode
        assert_eq!(SimTime::from_cycles(15).as_ns(), 600); // §6.3 MPP data path
        assert_eq!(SimTime::from_cycles(2).as_ns(), 80); //   §6.3 MPP control
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), NS_PER_SEC);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 140);
    }

    #[test]
    fn ceil_to_cycle() {
        assert_eq!(SimTime::from_ns(0).ceil_to_cycle().as_ns(), 0);
        assert_eq!(SimTime::from_ns(1).ceil_to_cycle().as_ns(), 40);
        assert_eq!(SimTime::from_ns(40).ceil_to_cycle().as_ns(), 40);
        assert_eq!(SimTime::from_ns(41).ceil_to_cycle().as_ns(), 80);
    }

    #[test]
    fn as_cycles_floors() {
        assert_eq!(SimTime::from_ns(79).as_cycles(), 1);
        assert_eq!(SimTime::from_ns(80).as_cycles(), 2);
    }

    #[test]
    fn tx_time_fddi_and_atm() {
        // One octet at 100 Mb/s is 80 ns.
        assert_eq!(tx_time(1, 100_000_000).as_ns(), 80);
        // A max FDDI frame: 4500 * 80 ns = 360 us.
        assert_eq!(tx_time(4500, 100_000_000).as_ns(), 360_000);
        // A 53-octet cell at 155.52 Mb/s ≈ 2726 ns.
        let t = tx_time(53, 155_520_000).as_ns();
        assert!((2726..=2727).contains(&t), "got {t}");
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 bit at 3 bps = 333333333.33 ns -> rounds up.
        assert_eq!(tx_time(1, 24_000_000_000).as_ns(), 1); // 8 bits at 24 Gbps = 0.33ns -> 1
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_ns(5).to_string(), "5ns");
        assert_eq!(SimTime::from_ns(5_000).to_string(), "5.000us");
        assert_eq!(SimTime::from_ns(5_000_000).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert_eq!(SimTime::ZERO, SimTime::from_ns(0));
    }
}
