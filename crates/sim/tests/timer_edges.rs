//! Timer-wheel edge cases: deadlines beyond the outer wheel's span
//! (overflow parking and inward migration), re-arming at the cursor's
//! current tick, slot collisions, and cancelling already-expired
//! entries.

use gw_sim::time::SimTime;
use gw_sim::timer::TimerWheel;

/// The wheel covers 6 levels × 6 bits of 64 ns ticks: 2^36 ticks of
/// 2^6 ns each, ≈ 73 minutes. Anything past `current + SPAN` parks in
/// the overflow list.
const WHEEL_SPAN_NS: u64 = 1 << 42;

fn drain(w: &mut TimerWheel<u32>, now: SimTime) -> Vec<(SimTime, u32)> {
    let mut out = Vec::new();
    w.poll(now, &mut out);
    out
}

#[test]
fn far_future_deadline_parks_in_overflow_and_still_fires_exactly() {
    let mut w = TimerWheel::new();
    let far = SimTime::from_ns(WHEEL_SPAN_NS + 12_345);
    let id = w.insert(far, 1);

    // Parked or not, the bookkeeping reports the exact deadline.
    assert_eq!(w.len(), 1);
    assert_eq!(w.deadline(id), Some(far));
    assert_eq!(w.next_deadline(), Some(far));

    // Nothing fires early, even a whisker before the deadline.
    assert!(drain(&mut w, SimTime::from_ns(WHEEL_SPAN_NS)).is_empty());
    assert!(drain(&mut w, SimTime::from_ns(far.as_ns() - 1)).is_empty());
    assert_eq!(w.next_deadline(), Some(far));

    // At the deadline it fires once, with its exact timestamp.
    assert_eq!(drain(&mut w, far), vec![(far, 1)]);
    assert!(w.is_empty());
    assert!(drain(&mut w, SimTime::from_ns(far.as_ns() + WHEEL_SPAN_NS)).is_empty());
}

#[test]
fn far_future_deadline_can_be_cancelled_while_parked_or_after_migrating() {
    let mut w = TimerWheel::new();
    let far = SimTime::from_ns(WHEEL_SPAN_NS + 999);

    // Cancel straight out of the overflow list.
    let id = w.insert(far, 7);
    assert_eq!(w.cancel(id), Some(7));
    assert!(w.is_empty());

    // Cancel after time advanced enough for the entry to migrate into
    // the wheel proper.
    let id = w.insert(far, 8);
    assert!(drain(&mut w, SimTime::from_ns(WHEEL_SPAN_NS / 2)).is_empty());
    assert_eq!(w.deadline(id), Some(far));
    assert_eq!(w.cancel(id), Some(8));
    assert!(w.is_empty());
    assert!(drain(&mut w, SimTime::from_ns(2 * WHEEL_SPAN_NS)).is_empty());
}

#[test]
fn rearming_at_the_current_tick_fires_on_the_next_poll() {
    let mut w = TimerWheel::new();
    let t = SimTime::from_ns(1_000);
    let id = w.insert(t, 1);
    assert_eq!(drain(&mut w, t), vec![(t, 1)]);
    assert_eq!(w.cancel(id), None, "fired timers cannot be cancelled");

    // The cursor now sits at t's tick. Re-arm exactly there: the new
    // entry must fire on the next poll, not be skipped for a full lap.
    w.insert(t, 2);
    assert_eq!(w.next_deadline(), Some(t));
    assert_eq!(drain(&mut w, t), vec![(t, 2)]);

    // A deadline strictly behind the cursor degrades to fire-next-poll
    // with its original timestamp preserved.
    let past = SimTime::from_ns(500);
    w.insert(past, 3);
    assert_eq!(drain(&mut w, t), vec![(past, 3)]);
    assert!(w.is_empty());
}

#[test]
fn same_slot_collisions_fire_together_and_cancel_mid_chain() {
    let mut w = TimerWheel::new();
    // Ten entries with the identical deadline share one level-0 slot
    // and chain through the slab's linked list.
    let t = SimTime::from_ns(640);
    let ids: Vec<_> = (0..10).map(|i| w.insert(t, i)).collect();
    assert_eq!(w.len(), 10);

    // Unlink one from the middle of the chain.
    assert_eq!(w.cancel(ids[4]), Some(4));
    assert_eq!(w.len(), 9);

    let mut fired = drain(&mut w, t);
    fired.sort_by_key(|&(_, item)| item);
    let items: Vec<u32> = fired.iter().map(|&(_, item)| item).collect();
    assert_eq!(items, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
    assert!(fired.iter().all(|&(dl, _)| dl == t));
    assert!(w.is_empty());
}

#[test]
fn colliding_higher_level_slot_cascades_to_exact_deadlines() {
    let mut w = TimerWheel::new();
    // Distinct deadlines that initially land in the same upper-level
    // slot (they differ only in their low tick bits relative to a
    // cursor at 0). The cascade must separate them again, firing each
    // at its own deadline and never early.
    let base = 1 << 18; // well into level 2 territory from tick 0
    let deadlines: Vec<SimTime> = (0..5).map(|k| SimTime::from_ns(base + k * 64)).collect();
    for (k, &dl) in deadlines.iter().enumerate() {
        w.insert(dl, k as u32);
    }
    for (k, &dl) in deadlines.iter().enumerate() {
        // Poll a hair before: nothing new fires.
        assert!(drain(&mut w, SimTime::from_ns(dl.as_ns() - 1)).is_empty(), "early fire at {k}");
        assert_eq!(drain(&mut w, dl), vec![(dl, k as u32)]);
    }
    assert!(w.is_empty());
}

#[test]
fn cancelling_expired_and_stale_ids_is_inert() {
    let mut w = TimerWheel::new();

    // (1) Already fired: cancel is a no-op returning None.
    let t = SimTime::from_ns(1_000);
    let id = w.insert(t, 9);
    assert_eq!(drain(&mut w, t), vec![(t, 9)]);
    assert_eq!(w.cancel(id), None);
    assert_eq!(w.deadline(id), None);

    // (2) Deadline in the past but never polled: the entry is still
    // armed, so cancel wins the race and the timer never fires.
    let id = w.insert(SimTime::from_ns(2_000), 11);
    assert_eq!(w.cancel(id), Some(11));
    assert!(drain(&mut w, SimTime::from_ns(10_000)).is_empty());

    // (3) A stale id whose slab slot was reused must not disarm the
    // new occupant (generation tags).
    let old = w.insert(SimTime::from_ns(20_000), 1);
    assert_eq!(w.cancel(old), Some(1));
    let fresh = w.insert(SimTime::from_ns(30_000), 2); // reuses the slot
    assert_eq!(w.cancel(old), None, "stale id must be rejected");
    assert_eq!(w.deadline(fresh), Some(SimTime::from_ns(30_000)));
    assert_eq!(drain(&mut w, SimTime::from_ns(30_000)), vec![(SimTime::from_ns(30_000), 2)]);

    // (4) Double-cancel returns None the second time.
    let id = w.insert(SimTime::from_ns(40_000), 3);
    assert_eq!(w.cancel(id), Some(3));
    assert_eq!(w.cancel(id), None);
    assert!(w.is_empty());
}
