//! Robustness: every parser in the wire crate must handle arbitrary
//! byte soup without panicking — malformed input yields `Err`, never
//! UB or a crash. (The gateway faces a network; its parsers are the
//! attack surface.)

use gw_wire::atm::{AtmHeader, Cell};
use gw_wire::fddi::{Frame, FrameControl, FrameRepr};
use gw_wire::hec_correct::HecReceiver;
use gw_wire::mchip::{parse_frame, MchipHeader, MchipType};
use gw_wire::sar::{SarCell, SarHeader};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn atm_header_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..8)) {
        let _ = AtmHeader::parse(&bytes);
    }

    #[test]
    fn cell_checked_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = Cell::new_checked(&bytes[..]);
    }

    #[test]
    fn sar_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = SarHeader::parse(&bytes);
        let _ = SarCell::new_checked(&bytes[..]);
        if bytes.len() == 48 {
            let mut fixed = [0u8; 48];
            fixed.copy_from_slice(&bytes);
            let _ = SarCell::new_unchecked(fixed).check_crc();
        }
    }

    #[test]
    fn fddi_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..5000)) {
        let _ = Frame::new_checked(&bytes[..]);
        if !bytes.is_empty() {
            let _ = FrameControl::from_byte(bytes[0]);
        }
        if bytes.len() >= 17 {
            // Unchecked views must still not panic on field access.
            let f = Frame::new_unchecked(&bytes[..]);
            let _ = (f.dst(), f.src(), f.info().len(), f.fcs(), f.check_fcs());
            let _ = gw_wire::fddi::strip_llc_snap(f.info());
        }
    }

    #[test]
    fn mchip_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = MchipHeader::parse(&bytes);
        let _ = parse_frame(&bytes);
    }

    #[test]
    fn control_payload_decode_never_panics(
        t in 0u8..16,
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        if let Ok(mtype) = MchipType::from_nibble(t) {
            let _ = gw_mchip::messages::ControlPayload::decode(mtype, &bytes);
        }
    }

    #[test]
    fn smt_nif_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = gw_fddi::smt::Nif::decode(&bytes);
    }

    #[test]
    fn hec_receiver_handles_any_header(mut bytes in proptest::collection::vec(any::<u8>(), 5..6)) {
        let mut rx = HecReceiver::new();
        let _ = rx.receive(&mut bytes);
    }

    /// Round-trip stability: anything a builder emits, the checked
    /// parser accepts — across the whole joint parameter space.
    #[test]
    fn emitted_frames_always_parse(
        dst in any::<u32>(),
        src in any::<u32>(),
        prio in 0u8..8,
        info in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let bytes = FrameRepr {
            fc: FrameControl::LlcAsync { priority: prio },
            dst: gw_wire::fddi::FddiAddr::station(dst),
            src: gw_wire::fddi::FddiAddr::station(src),
            info,
        }
        .emit()
        .unwrap();
        prop_assert!(Frame::new_checked(&bytes[..]).is_ok());
    }
}
