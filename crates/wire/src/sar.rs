// gw-lint: critical-path
//! The SAR header (paper Figure 5, §5.2).
//!
//! The 48-octet ATM information field carries a 3-octet SAR header
//! followed by a 45-octet SAR payload:
//!
//! ```text
//!  | 3 octets  |     45 octets     |   (inside the 48-octet info field)
//!  +-----------+-------------------+
//!  | SAR hdr   |    SAR payload    |
//!  +-----------+-------------------+
//!
//!  SAR header bit layout (24 bits, transmitted msb first):
//!    seq[10] | unused[2] | F[1] | C[1] | crc10[10]
//! ```
//!
//! * `seq` — 10-bit sequence number: the cell's position within the
//!   reassembled frame.
//! * `F` — set on the last cell of a frame.
//! * `C` — set when the cell carries a control (rather than data) frame.
//! * `crc10` — covers the *entire* 48-octet information field, i.e. the
//!   SAR header (with the CRC field zeroed) plus the 45-octet payload.
//!
//! With a 10-bit sequence number a frame may span up to 1024 cells; the
//! gateway's reassembly buffers only need ⌈4096/45⌉ = 91 (§5.3).

use crate::atm::PAYLOAD_SIZE;
use crate::crc;
use crate::{Error, Result};

/// SAR header size in octets.
pub const SAR_HEADER_SIZE: usize = 3;
/// SAR payload per cell: 48 − 3 = 45 octets.
pub const SAR_PAYLOAD_SIZE: usize = PAYLOAD_SIZE - SAR_HEADER_SIZE;
/// Maximum sequence number (10 bits).
pub const MAX_SEQ: u16 = 0x3FF;

/// Parsed representation of the 3-octet SAR header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SarHeader {
    /// 10-bit position of this cell within the reassembled frame.
    pub seq: u16,
    /// Final-cell flag: set on the last cell of the frame.
    pub final_cell: bool,
    /// Control flag: set when the reassembled frame is a control frame.
    pub control: bool,
    /// 10-bit CRC over the whole 48-octet information field.
    pub crc10: u16,
}

impl SarHeader {
    /// Parse the three header octets (CRC is extracted, not verified —
    /// verification needs the full information field; see
    /// [`SarCell::check_crc`]).
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < SAR_HEADER_SIZE {
            return Err(Error::Truncated);
        }
        let word = ((bytes[0] as u32) << 16) | ((bytes[1] as u32) << 8) | bytes[2] as u32;
        Ok(SarHeader {
            seq: ((word >> 14) & 0x3FF) as u16,
            final_cell: (word >> 11) & 1 != 0,
            control: (word >> 10) & 1 != 0,
            crc10: (word & 0x3FF) as u16,
        })
    }

    /// Emit the three header octets.
    pub fn emit(&self, bytes: &mut [u8]) -> Result<()> {
        if bytes.len() < SAR_HEADER_SIZE {
            return Err(Error::Truncated);
        }
        if self.seq > MAX_SEQ || self.crc10 > 0x3FF {
            return Err(Error::Malformed);
        }
        let word: u32 = ((self.seq as u32) << 14)
            | ((self.final_cell as u32) << 11)
            | ((self.control as u32) << 10)
            | self.crc10 as u32;
        bytes[0] = (word >> 16) as u8;
        bytes[1] = (word >> 8) as u8;
        bytes[2] = word as u8;
        Ok(())
    }
}

/// A typed view over a 48-octet ATM information field carrying a SAR cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SarCell<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> SarCell<T> {
    /// Wrap an information field without checks.
    pub fn new_unchecked(buffer: T) -> SarCell<T> {
        SarCell { buffer }
    }

    /// Wrap an information field, verifying its length and CRC-10 — what
    /// the SPP's CRC Logic does per cell (§5.3).
    pub fn new_checked(buffer: T) -> Result<SarCell<T>> {
        let cell = SarCell::new_unchecked(buffer);
        if cell.buffer.as_ref().len() != PAYLOAD_SIZE {
            return Err(Error::Truncated);
        }
        if !cell.check_crc() {
            return Err(Error::Checksum);
        }
        Ok(cell)
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The parsed SAR header. A buffer shorter than a header is only
    /// reachable through [`SarCell::new_unchecked`]; it reads as the
    /// all-zero header (sequence 0, flags clear), whose CRC then fails
    /// verification downstream — drop-and-count, never a panic.
    pub fn header(&self) -> SarHeader {
        SarHeader::parse(self.buffer.as_ref()).unwrap_or_default()
    }

    /// The 45-octet SAR payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[SAR_HEADER_SIZE..PAYLOAD_SIZE]
    }

    /// Verify the CRC-10 over the whole information field (header CRC
    /// bits zeroed during computation).
    pub fn check_crc(&self) -> bool {
        let data = self.buffer.as_ref();
        if data.len() != PAYLOAD_SIZE {
            return false;
        }
        let mut copy = [0u8; PAYLOAD_SIZE];
        copy.copy_from_slice(data);
        let stored = self.header().crc10;
        copy[1] &= !0x03; // clear crc10 high bits
        copy[2] = 0; //      and low byte
        crc::crc10(&copy) == stored
    }

    /// The whole 48-octet field.
    pub fn as_bytes(&self) -> &[u8] {
        self.buffer.as_ref()
    }
}

/// An owned SAR cell information field.
pub type OwnedSarCell = SarCell<[u8; PAYLOAD_SIZE]>;

impl OwnedSarCell {
    /// Build an information field: header (CRC computed here) + payload.
    ///
    /// `payload` shorter than 45 octets is zero-padded on the right, as
    /// the Fragmentation Logic does for a frame's final partial cell.
    pub fn build(
        seq: u16,
        final_cell: bool,
        control: bool,
        payload: &[u8],
    ) -> Result<OwnedSarCell> {
        if payload.len() > SAR_PAYLOAD_SIZE {
            return Err(Error::TooLong);
        }
        if seq > MAX_SEQ {
            return Err(Error::Malformed);
        }
        let mut buf = [0u8; PAYLOAD_SIZE];
        let header = SarHeader { seq, final_cell, control, crc10: 0 };
        header.emit(&mut buf)?;
        buf[SAR_HEADER_SIZE..SAR_HEADER_SIZE + payload.len()].copy_from_slice(payload);
        let c = crc::crc10(&buf);
        let header = SarHeader { crc10: c, ..header };
        header.emit(&mut buf)?;
        Ok(SarCell::new_unchecked(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = SarHeader { seq: 0x2A5, final_cell: true, control: false, crc10: 0x155 };
        let mut b = [0u8; 3];
        h.emit(&mut b).unwrap();
        assert_eq!(SarHeader::parse(&b).unwrap(), h);
    }

    #[test]
    fn header_roundtrip_extremes() {
        for (seq, f, c, crc) in [
            (0u16, false, false, 0u16),
            (MAX_SEQ, true, true, 0x3FF),
            (1, true, false, 0x200),
            (512, false, true, 1),
        ] {
            let h = SarHeader { seq, final_cell: f, control: c, crc10: crc };
            let mut b = [0u8; 3];
            h.emit(&mut b).unwrap();
            assert_eq!(SarHeader::parse(&b).unwrap(), h);
        }
    }

    #[test]
    fn unused_bits_are_zero_on_emit() {
        let h = SarHeader { seq: MAX_SEQ, final_cell: true, control: true, crc10: 0x3FF };
        let mut b = [0u8; 3];
        h.emit(&mut b).unwrap();
        let word = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        assert_eq!((word >> 12) & 0x3, 0, "unused bits must stay clear");
    }

    #[test]
    fn emit_rejects_oversized_fields() {
        let h = SarHeader { seq: 0x400, ..Default::default() };
        assert_eq!(h.emit(&mut [0u8; 3]), Err(Error::Malformed));
        let h = SarHeader { crc10: 0x400, ..Default::default() };
        assert_eq!(h.emit(&mut [0u8; 3]), Err(Error::Malformed));
    }

    #[test]
    fn parse_rejects_truncated() {
        assert_eq!(SarHeader::parse(&[0u8; 2]), Err(Error::Truncated));
    }

    #[test]
    fn build_and_check_roundtrip() {
        let payload: Vec<u8> = (0..45u8).collect();
        let cell = OwnedSarCell::build(17, false, false, &payload).unwrap();
        assert!(cell.check_crc());
        assert_eq!(cell.header().seq, 17);
        assert!(!cell.header().final_cell);
        assert_eq!(cell.payload(), &payload[..]);
    }

    #[test]
    fn short_payload_zero_padded() {
        let cell = OwnedSarCell::build(0, true, false, &[0xAA; 10]).unwrap();
        assert_eq!(&cell.payload()[..10], &[0xAA; 10]);
        assert!(cell.payload()[10..].iter().all(|&b| b == 0));
        assert!(cell.check_crc());
    }

    #[test]
    fn build_rejects_oversized_payload() {
        assert_eq!(OwnedSarCell::build(0, true, false, &[0u8; 46]).err(), Some(Error::TooLong));
    }

    #[test]
    fn build_rejects_bad_seq() {
        assert_eq!(
            OwnedSarCell::build(0x400, true, false, &[0u8; 1]).err(),
            Some(Error::Malformed)
        );
    }

    #[test]
    fn corruption_anywhere_fails_crc() {
        let cell = OwnedSarCell::build(5, false, true, &[0x5A; 45]).unwrap();
        for pos in 0..PAYLOAD_SIZE {
            for bit in [0, 3, 7] {
                let mut buf = cell.clone().into_inner();
                buf[pos] ^= 1 << bit;
                let corrupted = SarCell::new_unchecked(buf);
                assert!(!corrupted.check_crc(), "flip at {pos}:{bit} undetected");
                assert_eq!(
                    SarCell::new_checked(corrupted.into_inner()).err(),
                    Some(Error::Checksum)
                );
            }
        }
    }

    #[test]
    fn checked_rejects_wrong_length() {
        assert_eq!(SarCell::new_checked(vec![0u8; 47]).err(), Some(Error::Truncated));
    }

    #[test]
    fn control_bit_separates_frame_types() {
        let data = OwnedSarCell::build(0, true, false, &[1; 45]).unwrap();
        let ctrl = OwnedSarCell::build(0, true, true, &[1; 45]).unwrap();
        assert!(!data.header().control);
        assert!(ctrl.header().control);
        assert_ne!(data.as_bytes(), ctrl.as_bytes());
    }

    #[test]
    fn payload_capacity_is_45() {
        assert_eq!(SAR_PAYLOAD_SIZE, 45);
        // §5.3 claims "a maximum of 91 ATM cells per reassembly buffer"
        // for a 4096-octet FDDI internet data segment. 4096/45 = 91.02,
        // so the claim holds exactly when the 8-octet LLC/SNAP header —
        // which the MPP appends *after* reassembly (§6.1) — is excluded:
        // the reassembled MCHIP frame is at most 4096 − 8 = 4088 octets.
        assert_eq!((4096usize - 8).div_ceil(SAR_PAYLOAD_SIZE), 91);
        // A raw 4096-octet segment would need 92; documented in DESIGN.md.
        assert_eq!(4096usize.div_ceil(SAR_PAYLOAD_SIZE), 92);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn header_roundtrip_any(seq in 0u16..=MAX_SEQ, f: bool, c: bool, crc in 0u16..=0x3FF) {
            let h = SarHeader { seq, final_cell: f, control: c, crc10: crc };
            let mut b = [0u8; 3];
            h.emit(&mut b).unwrap();
            prop_assert_eq!(SarHeader::parse(&b).unwrap(), h);
        }

        #[test]
        fn build_check_any_payload(seq in 0u16..=MAX_SEQ, f: bool, c: bool,
                                   payload in proptest::collection::vec(any::<u8>(), 0..=45)) {
            let cell = OwnedSarCell::build(seq, f, c, &payload).unwrap();
            prop_assert!(cell.check_crc());
            prop_assert_eq!(&cell.payload()[..payload.len()], &payload[..]);
        }

        #[test]
        fn single_flip_always_detected(seq in 0u16..=MAX_SEQ,
                                       payload in proptest::collection::vec(any::<u8>(), 45),
                                       pos in 0usize..48, bit in 0u8..8) {
            let cell = OwnedSarCell::build(seq, false, false, &payload).unwrap();
            let mut buf = cell.into_inner();
            buf[pos] ^= 1 << bit;
            // A 10-bit CRC detects all single-bit errors; note the flip
            // may land in the seq/F/C fields and change them, but the CRC
            // still covers those bits.
            prop_assert!(!SarCell::new_unchecked(buf).check_crc());
        }
    }
}
