// gw-lint: critical-path
//! Wire formats for the ATM-FDDI gateway reproduction.
//!
//! This crate implements every on-the-wire data format the gateway design
//! (Kapoor & Parulkar, SIGCOMM '91) touches:
//!
//! * [`atm`] — the 53-octet ATM cell with its 5-octet header (GFC / VPI /
//!   VCI / PTI / CLP) protected by the HEC, an 8-bit CRC (§3, §4.3 "AIC").
//! * [`sar`] — the 3-octet segmentation-and-reassembly header carried
//!   inside the 48-octet cell payload: a 10-bit sequence number, an F
//!   (final-cell) bit, a C (control) bit, and a 10-bit CRC covering the
//!   entire information field (paper Figure 5, §5.2).
//! * [`fddi`] — FDDI MAC frames (frame control, 48-bit addresses with
//!   group/broadcast support, LLC/SNAP encapsulation, 32-bit FCS) and the
//!   token (§3, Figure 2).
//! * [`mchip`] — MCHIP frames: the internet-protocol frames the gateway
//!   forwards, identified by a 2-octet internet channel number (§6.1).
//! * [`crc`] — the three checksum generators/validators the hardware
//!   implements (HEC CRC-8, SAR CRC-10, FDDI FCS CRC-32).
//!
//! # Design idiom
//!
//! Following the smoltcp style, each format offers:
//!
//! * a **view type** (`Cell<T>`, `Frame<T>`, …) wrapping any `AsRef<[u8]>`
//!   buffer with checked constructors and field accessors — zero-copy
//!   parsing, and in-place emission when `T: AsMut<[u8]>`;
//! * a **repr type** (`AtmHeader`, `SarHeader`, …), a plain Rust struct
//!   holding the parsed high-level representation with `parse` / `emit`;
//! * explicit [`Error`] values — malformed input never panics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod atm;
pub mod crc;
pub mod fddi;
pub mod hec_correct;
pub mod mchip;
pub mod pool;
pub mod sar;

/// Errors produced when parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Error {
    /// The buffer is shorter than the format's fixed header, or shorter
    /// than the length its header declares.
    Truncated,
    /// A checksum (HEC, SAR CRC-10, or FDDI FCS) did not verify.
    Checksum,
    /// A field holds a value outside its legal range (for example a
    /// sequence number wider than 10 bits, or an oversized payload).
    Malformed,
    /// The frame length exceeds the maximum the format permits.
    TooLong,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer truncated"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Malformed => write!(f, "malformed field"),
            Error::TooLong => write!(f, "frame exceeds maximum length"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the wire crate.
pub type Result<T> = core::result::Result<T, Error>;

pub use atm::{AtmHeader, Cell, Vci, Vpi, CELL_SIZE, HEADER_SIZE, PAYLOAD_SIZE};
pub use fddi::{FddiAddr, Frame, FrameControl, MAX_FRAME_SIZE, MIN_FRAME_SIZE};
pub use hec_correct::{HecMode, HecOutcome, HecReceiver};
pub use mchip::{Icn, MchipHeader, MchipType, MCHIP_HEADER_SIZE};
pub use pool::{BufPool, PoolStats};
pub use sar::{SarCell, SarHeader, SAR_HEADER_SIZE, SAR_PAYLOAD_SIZE};
