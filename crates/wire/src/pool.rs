// gw-lint: critical-path
//! Recyclable byte-buffer pool for the fixed-memory fast path.
//!
//! The paper's SPP owns two dedicated 91-cell reassembly buffers per VC
//! and the MPP stages frames in fixed table memory (§5.2, §6) — nothing
//! on the cell path asks an allocator for memory. [`BufPool`] gives the
//! software reproduction the same shape: components draw `Vec<u8>`
//! staging/frame buffers from a free list with [`BufPool::get`] and hand
//! them back with [`BufPool::put`] once the payload has left the
//! component, so a warmed-up forwarding loop recycles the same backing
//! stores indefinitely instead of allocating per frame.
//!
//! The pool is deliberately simple: a bounded LIFO free list (LIFO keeps
//! the hottest buffer in cache), buffers retain whatever capacity they
//! grew to, and misses fall back to a fresh allocation — so correctness
//! never depends on the pool being primed, only steady-state allocation
//! behaviour does. [`BufPool::stats`] exposes hit/miss counters so tests
//! and benches can prove the fast path runs entirely out of the pool.

/// Hit/miss/occupancy counters for a [`BufPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned and retained.
    pub returns: u64,
    /// Buffers returned but dropped because the pool was full.
    pub discards: u64,
}

impl PoolStats {
    /// Buffers clients have drawn and not yet handed back — the pool
    /// census figure conservation checks compare against the number of
    /// buffers legitimately resident in component tables. A client that
    /// `put`s buffers it did not `get` makes this go negative, which is
    /// itself an accounting bug worth surfacing.
    pub fn outstanding(&self) -> i64 {
        (self.hits + self.misses) as i64 - (self.returns + self.discards) as i64
    }
}

/// A bounded free list of recycled `Vec<u8>` buffers.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    /// Maximum buffers retained on the free list.
    max_retained: usize,
    /// Capacity reserved in buffers the pool allocates on a miss.
    default_capacity: usize,
    stats: PoolStats,
}

impl BufPool {
    /// A pool retaining at most `max_retained` buffers, allocating
    /// `default_capacity`-byte buffers on a miss.
    // gw-lint: setup-path — sizes the free list once at pool construction
    pub fn new(max_retained: usize, default_capacity: usize) -> BufPool {
        BufPool {
            free: Vec::with_capacity(max_retained.min(4096)),
            max_retained,
            default_capacity,
            stats: PoolStats::default(),
        }
    }

    /// Pre-populate the free list with `count` buffers so the first
    /// `count` [`BufPool::get`] calls are allocation-free.
    // gw-lint: setup-path — pre-populates the free list at power-up, before any cell flows
    pub fn preload(&mut self, count: usize) {
        let target = self.free.len().saturating_add(count).min(self.max_retained);
        while self.free.len() < target {
            self.free.push(Vec::with_capacity(self.default_capacity));
        }
    }

    /// An empty buffer, recycled when one is available.
    // gw-lint: setup-path — the miss arm grows the pool toward steady state; a preloaded pool recycles and never allocates
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.hits += 1;
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(self.default_capacity)
            }
        }
    }

    /// Return a buffer to the pool. The contents are cleared; the
    /// capacity is kept. Buffers beyond the retention bound are dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() >= self.max_retained || buf.capacity() == 0 {
            self.stats.discards += 1;
            return;
        }
        buf.clear();
        self.stats.returns += 1;
        self.free.push(buf);
    }

    /// Buffers currently on the free list.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_capacity() {
        let mut pool = BufPool::new(8, 64);
        let mut a = pool.get();
        assert_eq!(pool.stats().misses, 1);
        a.extend_from_slice(&[1; 500]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool = BufPool::new(2, 16);
        for _ in 0..4 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.stats().discards, 2);
    }

    #[test]
    fn zero_capacity_buffers_are_not_retained() {
        let mut pool = BufPool::new(8, 16);
        pool.put(Vec::new());
        assert_eq!(pool.available(), 0, "an unallocated Vec is useless to recycle");
    }

    #[test]
    fn preload_primes_the_free_list() {
        let mut pool = BufPool::new(4, 32);
        pool.preload(10);
        assert_eq!(pool.available(), 4, "preload respects the retention bound");
        for _ in 0..4 {
            assert!(pool.get().capacity() >= 32);
        }
        assert_eq!(pool.stats().misses, 0);
        assert_eq!(pool.stats().hits, 4);
    }
}
