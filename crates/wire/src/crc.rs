// gw-lint: critical-path
//! Checksum generators and validators used by the gateway hardware.
//!
//! The critical path of the gateway computes three different CRCs:
//!
//! * **HEC** — the ATM header error check, an 8-bit CRC over the first
//!   four header octets with generator `x^8 + x^2 + x + 1` (0x07) and the
//!   ITU-T I.432 coset `0x55` added to the remainder. The AIC discards
//!   cells whose header fails this check and generates it for outbound
//!   cells (§4.3 "ATM Interface Chip").
//! * **CRC-10** — the SAR information-field check with generator
//!   `x^10 + x^9 + x^5 + x^4 + x + 1` (0x233 in 10-bit notation), the
//!   same polynomial later standardized for AAL-3/4 and OAM cells. The
//!   SPP's CRC Logic checks it over the entire 48-octet payload (§5.2).
//! * **FCS** — the FDDI frame check sequence, the IEEE 802 32-bit CRC
//!   (identical to Ethernet's, reflected, `0x04C11DB7`), appended by the
//!   MAC layer.
//!
//! All three are table-driven; the tables are computed at compile time so
//! the per-byte cost is a single lookup and shift, matching the
//! "generated on the fly" behaviour the paper requires of the hardware
//! (§5.4).

/// Generator polynomial for the ATM HEC, `x^8 + x^2 + x + 1`.
pub const HEC_POLY: u8 = 0x07;
/// Coset added to the HEC remainder, per ITU-T I.432.
pub const HEC_COSET: u8 = 0x55;
/// Generator polynomial for the SAR CRC-10, `x^10 + x^9 + x^5 + x^4 + x + 1`.
pub const CRC10_POLY: u16 = 0x233;
/// Generator polynomial for the FDDI FCS (IEEE 802), non-reflected form.
pub const CRC32_POLY: u32 = 0x04C1_1DB7;

const fn build_hec_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 { (crc << 1) ^ HEC_POLY } else { crc << 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn build_crc10_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        // Process one input byte through the 10-bit register.
        let mut crc = (i as u16) << 2; // align byte to the top of 10 bits
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x200 != 0 {
                ((crc << 1) ^ CRC10_POLY) & 0x3FF
            } else {
                (crc << 1) & 0x3FF
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn build_crc32_table() -> [u32; 256] {
    // Reflected table for the IEEE 802 CRC-32 as used on the wire.
    let poly_reflected: u32 = 0xEDB8_8320; // bit-reversed CRC32_POLY
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ poly_reflected } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn build_crc32_slices() -> [[u32; 256]; 8] {
    // Slice-by-8: tables[k][b] is the CRC contribution of byte `b`
    // entering the register k bytes before the end of an 8-byte block.
    let base = build_crc32_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = base;
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ base[(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// One byte-step of the CRC-10 register with a zero input byte:
/// `A(s) = ((s << 8) & 0x3FF) ^ T[(s >> 2) & 0xFF]`. Linear in `s`
/// (shift and table lookup both are), which is what makes the
/// sliced form below possible.
const fn crc10_step(table: &[u16; 256], s: u16) -> u16 {
    ((s << 8) & 0x3FF) ^ table[((s >> 2) & 0xFF) as usize]
}

/// `CRC10_ADV4[s]` advances a 10-bit register by four zero bytes.
const fn build_crc10_adv4() -> [u16; 1024] {
    let table = build_crc10_table();
    let mut adv = [0u16; 1024];
    let mut s = 0;
    while s < 1024 {
        let mut v = s as u16;
        let mut i = 0;
        while i < 4 {
            v = crc10_step(&table, v);
            i += 1;
        }
        adv[s] = v;
        s += 1;
    }
    adv
}

/// `CRC10_BYTE[k][b]`: contribution of data byte `b` entering the
/// register `k + 1` bytes before the end of a 4-byte block (k = 0 is
/// the last byte, i.e. the plain byte table).
const fn build_crc10_byte_slices() -> [[u16; 256]; 4] {
    let base = build_crc10_table();
    let mut tables = [[0u16; 256]; 4];
    tables[0] = base;
    let mut k = 1;
    while k < 4 {
        let mut i = 0;
        while i < 256 {
            tables[k][i] = crc10_step(&base, tables[k - 1][i]);
            i += 1;
        }
        k += 1;
    }
    tables
}

static HEC_TABLE: [u8; 256] = build_hec_table();
static CRC10_TABLE: [u16; 256] = build_crc10_table();
static CRC10_ADV4: [u16; 1024] = build_crc10_adv4();
static CRC10_BYTE: [[u16; 256]; 4] = build_crc10_byte_slices();
static CRC32_TABLE: [u32; 256] = build_crc32_table();
static CRC32_SLICES: [[u32; 256]; 8] = build_crc32_slices();

/// Compute the ATM header error check over the first four header octets.
///
/// Returns the value carried in the fifth header octet: the CRC-8
/// remainder with the I.432 coset `0x55` added (XORed) in.
///
/// ```
/// # use gw_wire::crc::hec;
/// let header4 = [0x00, 0x00, 0x00, 0x00];
/// // CRC-8 of all-zero input is zero; the coset alone remains.
/// assert_eq!(hec(&header4), 0x55);
/// ```
pub fn hec(header4: &[u8]) -> u8 {
    debug_assert_eq!(header4.len(), 4, "HEC covers exactly four octets");
    let mut crc = 0u8;
    for &b in header4 {
        crc = HEC_TABLE[(crc ^ b) as usize];
    }
    crc ^ HEC_COSET
}

/// Verify that a 5-octet ATM header's HEC octet matches its first four.
pub fn hec_valid(header5: &[u8]) -> bool {
    header5.len() == 5 && hec(&header5[..4]) == header5[4]
}

/// Compute the 10-bit SAR CRC over `data`.
///
/// The SPP computes this over the entire 48-octet ATM information field
/// with the 10-bit CRC field itself zeroed (§5.2, Figure 5). The caller
/// is responsible for zeroing that field before calling.
pub fn crc10(data: &[u8]) -> u16 {
    // Slice-by-4 over the 10-bit register. CRC update is linear over
    // GF(2), so a 4-byte block splits into the register advanced by
    // four zero bytes (`CRC10_ADV4`) XOR one independent lookup per
    // data byte (`CRC10_BYTE`) — only the 1024-entry advance is on the
    // serial dependency chain, the byte lookups run in parallel. The
    // SPP pays this on all 48 payload octets of every cell (§5.2).
    let mut crc: u16 = 0;
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        crc = CRC10_ADV4[crc as usize]
            ^ CRC10_BYTE[3][c[0] as usize]
            ^ CRC10_BYTE[2][c[1] as usize]
            ^ CRC10_BYTE[1][c[2] as usize]
            ^ CRC10_BYTE[0][c[3] as usize];
    }
    for &b in chunks.remainder() {
        let idx = (((crc >> 2) ^ b as u16) & 0xFF) as usize;
        crc = ((crc << 8) & 0x3FF) ^ CRC10_TABLE[idx];
    }
    crc & 0x3FF
}

/// Compute the FDDI frame check sequence (IEEE 802 CRC-32) over `data`.
///
/// The result is the value transmitted in the 4-octet FCS field
/// (complemented, reflected convention — identical to Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    // Slice-by-8: fold the register into the first word of each 8-byte
    // block, then combine eight independent table lookups. This runs
    // once over every rebuilt FDDI frame (the MPP's FCS "generated on
    // the fly", §5.4), so it is on the frame-completion fast path.
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let one = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let two = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC32_SLICES[7][(one & 0xFF) as usize]
            ^ CRC32_SLICES[6][((one >> 8) & 0xFF) as usize]
            ^ CRC32_SLICES[5][((one >> 16) & 0xFF) as usize]
            ^ CRC32_SLICES[4][(one >> 24) as usize]
            ^ CRC32_SLICES[3][(two & 0xFF) as usize]
            ^ CRC32_SLICES[2][((two >> 8) & 0xFF) as usize]
            ^ CRC32_SLICES[1][((two >> 16) & 0xFF) as usize]
            ^ CRC32_SLICES[0][(two >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hec_of_zero_header_is_coset() {
        assert_eq!(hec(&[0, 0, 0, 0]), 0x55);
    }

    #[test]
    fn hec_known_vector() {
        // Idle/unassigned cell header per I.361: 00 00 00 01 -> HEC 0x52.
        assert_eq!(hec(&[0x00, 0x00, 0x00, 0x01]), 0x52);
    }

    #[test]
    fn hec_detects_single_bit_errors() {
        let hdr = [0x12, 0x34, 0x56, 0x78];
        let h = hec(&hdr);
        for byte in 0..4 {
            for bit in 0..8 {
                let mut corrupted = hdr;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(hec(&corrupted), h, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn hec_valid_roundtrip() {
        let mut hdr = [0xAB, 0xCD, 0xEF, 0x01, 0x00];
        hdr[4] = hec(&hdr[..4]);
        assert!(hec_valid(&hdr));
        hdr[0] ^= 0x80;
        assert!(!hec_valid(&hdr));
        assert!(!hec_valid(&hdr[..4]));
    }

    #[test]
    fn crc10_zero_input_is_zero() {
        assert_eq!(crc10(&[0u8; 48]), 0);
    }

    #[test]
    fn crc10_is_ten_bits() {
        for i in 0..=255u8 {
            let data = [i; 48];
            assert!(crc10(&data) <= 0x3FF);
        }
    }

    #[test]
    fn crc10_detects_single_bit_errors_in_48_bytes() {
        let mut data = [0u8; 48];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let c = crc10(&data);
        for byte in 0..48 {
            for bit in 0..8 {
                let mut d = data;
                d[byte] ^= 1 << bit;
                assert_ne!(crc10(&d), c, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn crc10_detects_burst_errors_up_to_10_bits() {
        // A CRC of degree 10 detects all burst errors of length <= 10.
        let data: Vec<u8> = (0..48u8).collect();
        let c = crc10(&data);
        for start in 0..(48 * 8 - 10) {
            // Burst of exactly 10 bits, all flipped.
            let mut d = data.clone();
            for off in 0..10 {
                let bitpos = start + off;
                d[bitpos / 8] ^= 1 << (bitpos % 8);
            }
            assert_ne!(crc10(&d), c, "10-bit burst at {start} undetected");
        }
    }

    #[test]
    fn crc10_order_sensitivity() {
        assert_ne!(crc10(&[1, 2, 3]), crc10(&[3, 2, 1]));
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn crc32_detects_single_bit_errors() {
        let data: Vec<u8> = (0..100u8).collect();
        let c = crc32(&data);
        for byte in [0usize, 1, 50, 99] {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32(&d), c);
            }
        }
    }

    #[test]
    fn tables_consistent_with_bitwise_hec() {
        // Cross-check the table against a direct bit-serial division.
        fn hec_bitwise(data: &[u8]) -> u8 {
            let mut crc = 0u8;
            for &b in data {
                crc ^= b;
                for _ in 0..8 {
                    crc = if crc & 0x80 != 0 { (crc << 1) ^ HEC_POLY } else { crc << 1 };
                }
            }
            crc ^ HEC_COSET
        }
        for seed in 0..64u32 {
            let d = [
                (seed * 7) as u8,
                (seed * 13 + 1) as u8,
                (seed * 29 + 2) as u8,
                (seed * 31 + 3) as u8,
            ];
            assert_eq!(hec(&d), hec_bitwise(&d));
        }
    }

    #[test]
    fn tables_consistent_with_bitwise_crc10() {
        fn crc10_bitwise(data: &[u8]) -> u16 {
            let mut crc = 0u16;
            for &b in data {
                for bit in (0..8).rev() {
                    let inbit = ((b >> bit) & 1) as u16;
                    let top = (crc >> 9) & 1;
                    crc = (crc << 1) & 0x3FF;
                    if top ^ inbit != 0 {
                        crc ^= CRC10_POLY & 0x3FF;
                    }
                }
            }
            crc & 0x3FF
        }
        for seed in 0..32u32 {
            let d: Vec<u8> = (0..48).map(|i| (i as u32 * seed % 251) as u8).collect();
            assert_eq!(crc10(&d), crc10_bitwise(&d), "seed {seed}");
        }
    }
}
