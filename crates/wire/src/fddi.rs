// gw-lint: critical-path
//! FDDI MAC frames and the token (§3, Figure 2).
//!
//! FDDI frames are variable-size, 64 to 4500 octets (paper Figure 2).
//! The MAC frame layout modeled here (preamble and start/end delimiters
//! are line symbols, not octets, and are accounted for as transmission
//! overhead by the ring simulation, not stored in buffers):
//!
//! ```text
//!  | 1  |   6    |   6    |  0..=4483  |  4  |
//!  +----+--------+--------+------------+-----+
//!  | FC |   DA   |   SA   |    INFO    | FCS |
//!  +----+--------+--------+------------+-----+
//! ```
//!
//! * `FC` — frame control: class (synchronous/asynchronous), format
//!   (LLC / MAC / SMT), and async priority (§3 "Access").
//! * `DA`/`SA` — 48-bit addresses; FDDI supports point-to-point, group
//!   (multicast) and broadcast addressing (§3 "Addressing"). The
//!   group bit is the most significant bit of the first octet.
//! * `FCS` — 32-bit CRC over FC..INFO.
//!
//! MCHIP frames ride in INFO behind an 8-octet LLC/SNAP header
//! ("LLC specific header", §6.1), which the MPP's Header Builder emits
//! from its fixed-header register.

use crate::crc;
use crate::{Error, Result};

/// Maximum total frame size in octets (paper Figure 2).
pub const MAX_FRAME_SIZE: usize = 4500;
/// Minimum total frame size in octets (paper Figure 2). Shorter frames
/// are padded on emission.
pub const MIN_FRAME_SIZE: usize = 64;
/// Octets of fixed fields: FC + DA + SA + FCS.
pub const FIXED_FIELDS: usize = 1 + 6 + 6 + 4;
/// Maximum INFO field length.
pub const MAX_INFO: usize = MAX_FRAME_SIZE - FIXED_FIELDS;
/// The LLC/SNAP encapsulation header the gateway prepends to MCHIP
/// frames: `AA AA 03` (SNAP) + zero OUI + a 2-octet protocol id.
pub const LLC_SNAP_SIZE: usize = 8;
/// Protocol identifier used for MCHIP inside SNAP (locally assigned).
pub const MCHIP_PROTO_ID: u16 = 0x88F1;
/// Per RFC 1103 (paper §5.3, \[8\]), internet traffic on FDDI limits the
/// data segment of the INFO field to 4096 octets.
pub const MAX_INTERNET_DATA: usize = 4096;

/// A 48-bit FDDI MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FddiAddr(pub [u8; 6]);

impl FddiAddr {
    /// The broadcast address (all ones).
    pub const BROADCAST: FddiAddr = FddiAddr([0xFF; 6]);

    /// A (locally administered) individual station address from an index.
    pub fn station(index: u32) -> FddiAddr {
        let b = index.to_be_bytes();
        FddiAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// A group (multicast) address from a group id: group bit set.
    pub fn group(id: u32) -> FddiAddr {
        let b = id.to_be_bytes();
        FddiAddr([0x83, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True when the group (I/G) bit is set — group or broadcast.
    pub fn is_group(&self) -> bool {
        self.0[0] & 0x80 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl core::fmt::Display for FddiAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let a = &self.0;
        write!(f, "{:02x}-{:02x}-{:02x}-{:02x}-{:02x}-{:02x}", a[0], a[1], a[2], a[3], a[4], a[5])
    }
}

/// Frame-control values: the class/format byte at the head of each frame.
///
/// Encoded per ANSI X3.139 `CLFF ZZZZ`: `C` = class (1 = synchronous),
/// `L` = address length (always 1 here, 48-bit), `FF` = format
/// (01 = LLC, 00 = MAC/SMT), `ZZZZ` = control bits / async priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameControl {
    /// A non-restricted token.
    Token,
    /// MAC claim frame (TTRT bidding).
    MacClaim,
    /// MAC beacon frame (ring fault isolation).
    MacBeacon,
    /// Station-management frame.
    Smt,
    /// Asynchronous LLC frame with a 3-bit priority.
    LlcAsync {
        /// Priority 0 (lowest) ..= 7 (highest).
        priority: u8,
    },
    /// Synchronous LLC frame (time-critical traffic, §3 "Access").
    LlcSync,
}

impl FrameControl {
    /// Encode to the FC octet.
    pub fn to_byte(self) -> u8 {
        match self {
            FrameControl::Token => 0x80,
            FrameControl::MacClaim => 0xC3,
            FrameControl::MacBeacon => 0xC2,
            FrameControl::Smt => 0x41,
            FrameControl::LlcAsync { priority } => 0x50 | (priority & 0x07),
            FrameControl::LlcSync => 0xD0,
        }
    }

    /// Decode from the FC octet.
    pub fn from_byte(b: u8) -> Result<FrameControl> {
        match b {
            0x80 => Ok(FrameControl::Token),
            0xC3 => Ok(FrameControl::MacClaim),
            0xC2 => Ok(FrameControl::MacBeacon),
            0x41 => Ok(FrameControl::Smt),
            0xD0 => Ok(FrameControl::LlcSync),
            b if b & 0xF8 == 0x50 => Ok(FrameControl::LlcAsync { priority: b & 0x07 }),
            _ => Err(Error::Malformed),
        }
    }

    /// True for LLC frames carrying upper-layer (MCHIP) data.
    pub fn is_llc(self) -> bool {
        matches!(self, FrameControl::LlcAsync { .. } | FrameControl::LlcSync)
    }

    /// True for synchronous-class transmission.
    pub fn is_synchronous(self) -> bool {
        matches!(self, FrameControl::LlcSync)
    }
}

/// A typed view over an FDDI MAC frame buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap without checks.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap, checking structural length, a known FC value, and the FCS.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        let frame = Frame::new_unchecked(buffer);
        let data = frame.buffer.as_ref();
        if data.len() < FIXED_FIELDS {
            return Err(Error::Truncated);
        }
        if data.len() > MAX_FRAME_SIZE {
            return Err(Error::TooLong);
        }
        FrameControl::from_byte(data[0])?;
        if !frame.check_fcs() {
            return Err(Error::Checksum);
        }
        Ok(frame)
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The frame-control field.
    pub fn frame_control(&self) -> Result<FrameControl> {
        FrameControl::from_byte(self.buffer.as_ref()[0])
    }

    /// Destination address.
    pub fn dst(&self) -> FddiAddr {
        let mut a = [0u8; 6];
        a.copy_from_slice(&self.buffer.as_ref()[1..7]);
        FddiAddr(a)
    }

    /// Source address.
    pub fn src(&self) -> FddiAddr {
        let mut a = [0u8; 6];
        a.copy_from_slice(&self.buffer.as_ref()[7..13]);
        FddiAddr(a)
    }

    /// The INFO field (everything between SA and FCS).
    pub fn info(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        &data[13..data.len() - 4]
    }

    /// The stored FCS value.
    pub fn fcs(&self) -> u32 {
        let data = self.buffer.as_ref();
        let n = data.len();
        u32::from_be_bytes([data[n - 4], data[n - 3], data[n - 2], data[n - 1]])
    }

    /// Verify the FCS over FC..INFO.
    pub fn check_fcs(&self) -> bool {
        let data = self.buffer.as_ref();
        data.len() >= FIXED_FIELDS && crc::crc32(&data[..data.len() - 4]) == self.fcs()
    }

    /// Total length in octets.
    pub fn len(&self) -> usize {
        self.buffer.as_ref().len()
    }

    /// True when the buffer is empty (never true for a checked frame).
    pub fn is_empty(&self) -> bool {
        self.buffer.as_ref().is_empty()
    }

    /// The whole frame as bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.buffer.as_ref()
    }
}

/// Parsed, owned representation of an FDDI frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRepr {
    /// Frame control.
    pub fc: FrameControl,
    /// Destination address.
    pub dst: FddiAddr,
    /// Source address.
    pub src: FddiAddr,
    /// INFO field contents (before padding).
    pub info: Vec<u8>,
}

impl FrameRepr {
    /// Parse from a checked frame view.
    // gw-lint: setup-path — owned-repr convenience for control code; the cell path reads Frame views in place
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Result<FrameRepr> {
        Ok(FrameRepr {
            fc: frame.frame_control()?,
            dst: frame.dst(),
            src: frame.src(),
            info: frame.info().to_vec(),
        })
    }

    /// Emit a complete frame, computing the FCS and padding to the
    /// 64-octet minimum (paper Figure 2).
    // gw-lint: setup-path — owned-repr convenience; the cell path emits into recycled buffers via emit_frame_into
    pub fn emit(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        emit_frame_into(self.fc, self.dst, self.src, &[&self.info], &mut out)?;
        Ok(out)
    }

    /// Total emitted size (including minimum-frame padding).
    pub fn emitted_len(&self) -> usize {
        (FIXED_FIELDS + self.info.len()).max(MIN_FRAME_SIZE)
    }
}

/// Emit a complete FDDI frame — FCS computed, padded to the 64-octet
/// minimum — appending to `out`, with the INFO field given as a
/// concatenation of `info_parts` so callers can scatter-gather (LLC/SNAP
/// header + MCHIP frame) straight into a recycled staging buffer with no
/// intermediate copies. Returns the emitted length.
pub fn emit_frame_into(
    fc: FrameControl,
    dst: FddiAddr,
    src: FddiAddr,
    info_parts: &[&[u8]],
    out: &mut Vec<u8>,
) -> Result<usize> {
    let info_len: usize = info_parts.iter().map(|p| p.len()).sum();
    if info_len > MAX_INFO {
        return Err(Error::TooLong);
    }
    let body_len = FIXED_FIELDS + info_len;
    let padded = body_len.max(MIN_FRAME_SIZE);
    let base = out.len();
    out.reserve(padded);
    out.push(fc.to_byte());
    out.extend_from_slice(&dst.0);
    out.extend_from_slice(&src.0);
    for part in info_parts {
        out.extend_from_slice(part);
    }
    out.resize(base + padded, 0);
    let fcs = crc::crc32(&out[base..base + padded - 4]);
    let n = out.len();
    out[n - 4..].copy_from_slice(&fcs.to_be_bytes());
    Ok(padded)
}

/// Build the 8-octet LLC/SNAP header for MCHIP encapsulation.
pub fn llc_snap_header() -> [u8; LLC_SNAP_SIZE] {
    let p = MCHIP_PROTO_ID.to_be_bytes();
    [0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00, p[0], p[1]]
}

/// Strip and validate the LLC/SNAP header from an INFO field, returning
/// the MCHIP frame bytes.
pub fn strip_llc_snap(info: &[u8]) -> Result<&[u8]> {
    if info.len() < LLC_SNAP_SIZE {
        return Err(Error::Truncated);
    }
    if info[..LLC_SNAP_SIZE] != llc_snap_header() {
        return Err(Error::Malformed);
    }
    Ok(&info[LLC_SNAP_SIZE..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_station_is_individual() {
        let a = FddiAddr::station(42);
        assert!(!a.is_group());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn addr_group_and_broadcast() {
        assert!(FddiAddr::group(3).is_group());
        assert!(!FddiAddr::group(3).is_broadcast());
        assert!(FddiAddr::BROADCAST.is_group());
        assert!(FddiAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn addr_display_format() {
        assert_eq!(FddiAddr([0, 1, 2, 0xAB, 0xCD, 0xEF]).to_string(), "00-01-02-ab-cd-ef");
    }

    #[test]
    fn distinct_stations_distinct_addrs() {
        assert_ne!(FddiAddr::station(1), FddiAddr::station(2));
        assert_ne!(FddiAddr::group(1), FddiAddr::station(1));
    }

    #[test]
    fn frame_control_roundtrip() {
        let all = [
            FrameControl::Token,
            FrameControl::MacClaim,
            FrameControl::MacBeacon,
            FrameControl::Smt,
            FrameControl::LlcSync,
            FrameControl::LlcAsync { priority: 0 },
            FrameControl::LlcAsync { priority: 7 },
        ];
        for fc in all {
            assert_eq!(FrameControl::from_byte(fc.to_byte()).unwrap(), fc);
        }
    }

    #[test]
    fn frame_control_rejects_unknown() {
        assert_eq!(FrameControl::from_byte(0xFF), Err(Error::Malformed));
        assert_eq!(FrameControl::from_byte(0x00), Err(Error::Malformed));
    }

    #[test]
    fn frame_control_classes() {
        assert!(FrameControl::LlcSync.is_synchronous());
        assert!(FrameControl::LlcSync.is_llc());
        assert!(!FrameControl::LlcAsync { priority: 3 }.is_synchronous());
        assert!(FrameControl::LlcAsync { priority: 3 }.is_llc());
        assert!(!FrameControl::Smt.is_llc());
    }

    fn sample_repr(info_len: usize) -> FrameRepr {
        FrameRepr {
            fc: FrameControl::LlcAsync { priority: 4 },
            dst: FddiAddr::station(7),
            src: FddiAddr::station(1),
            info: (0..info_len).map(|i| i as u8).collect(),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr(200);
        let bytes = repr.emit().unwrap();
        let frame = Frame::new_checked(&bytes[..]).unwrap();
        let parsed = FrameRepr::parse(&frame).unwrap();
        assert_eq!(parsed.fc, repr.fc);
        assert_eq!(parsed.dst, repr.dst);
        assert_eq!(parsed.src, repr.src);
        assert_eq!(&parsed.info[..200], &repr.info[..]);
    }

    #[test]
    fn small_frames_padded_to_minimum() {
        let repr = sample_repr(4);
        let bytes = repr.emit().unwrap();
        assert_eq!(bytes.len(), MIN_FRAME_SIZE);
        assert_eq!(repr.emitted_len(), MIN_FRAME_SIZE);
        assert!(Frame::new_checked(&bytes[..]).is_ok());
    }

    #[test]
    fn max_info_accepted_beyond_rejected() {
        let repr = sample_repr(MAX_INFO);
        let bytes = repr.emit().unwrap();
        assert_eq!(bytes.len(), MAX_FRAME_SIZE);
        assert!(Frame::new_checked(&bytes[..]).is_ok());
        let too_big = sample_repr(MAX_INFO + 1);
        assert_eq!(too_big.emit().err(), Some(Error::TooLong));
    }

    #[test]
    fn corrupted_frame_fails_fcs() {
        let bytes = sample_repr(100).emit().unwrap();
        for pos in [0usize, 1, 13, 50, bytes.len() - 5] {
            let mut b = bytes.clone();
            b[pos] ^= 0x01;
            // FC corruption may also make the FC field unparseable; either
            // way new_checked refuses it.
            assert!(Frame::new_checked(&b[..]).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn corrupted_fcs_detected() {
        let mut bytes = sample_repr(100).emit().unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert_eq!(Frame::new_checked(&bytes[..]).err(), Some(Error::Checksum));
    }

    #[test]
    fn checked_rejects_truncated_and_oversized() {
        assert_eq!(Frame::new_checked(&[0u8; 16][..]).err(), Some(Error::Truncated));
        assert_eq!(
            Frame::new_checked(&vec![0u8; MAX_FRAME_SIZE + 1][..]).err(),
            Some(Error::TooLong)
        );
    }

    #[test]
    fn llc_snap_roundtrip() {
        let mut info = llc_snap_header().to_vec();
        info.extend_from_slice(b"mchip-frame");
        assert_eq!(strip_llc_snap(&info).unwrap(), b"mchip-frame");
    }

    #[test]
    fn llc_snap_rejects_wrong_header() {
        let mut info = llc_snap_header().to_vec();
        info[0] = 0xAB;
        info.extend_from_slice(b"x");
        assert_eq!(strip_llc_snap(&info).err(), Some(Error::Malformed));
        assert_eq!(strip_llc_snap(&[0xAA; 4]).err(), Some(Error::Truncated));
    }

    #[test]
    fn frame_views_expose_fields() {
        let repr = sample_repr(64);
        let bytes = repr.emit().unwrap();
        let frame = Frame::new_unchecked(&bytes[..]);
        assert_eq!(frame.dst(), FddiAddr::station(7));
        assert_eq!(frame.src(), FddiAddr::station(1));
        assert_eq!(frame.info().len(), 64);
        assert_eq!(frame.len(), bytes.len());
        assert!(!frame.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fc() -> impl Strategy<Value = FrameControl> {
        prop_oneof![
            Just(FrameControl::Smt),
            Just(FrameControl::LlcSync),
            (0u8..8).prop_map(|p| FrameControl::LlcAsync { priority: p }),
        ]
    }

    proptest! {
        #[test]
        fn emit_parse_any(fc in arb_fc(), dst in any::<u32>(), src in any::<u32>(),
                          info in proptest::collection::vec(any::<u8>(), 0..600)) {
            let repr = FrameRepr {
                fc,
                dst: FddiAddr::station(dst),
                src: FddiAddr::station(src),
                info: info.clone(),
            };
            let bytes = repr.emit().unwrap();
            prop_assert!(bytes.len() >= MIN_FRAME_SIZE);
            let frame = Frame::new_checked(&bytes[..]).unwrap();
            prop_assert_eq!(frame.frame_control().unwrap(), fc);
            prop_assert_eq!(&frame.info()[..info.len()], &info[..]);
        }

        #[test]
        fn any_flip_detected(info in proptest::collection::vec(any::<u8>(), 50..200),
                             pos_frac in 0.0f64..1.0, bit in 0u8..8) {
            let repr = FrameRepr {
                fc: FrameControl::LlcAsync { priority: 0 },
                dst: FddiAddr::BROADCAST,
                src: FddiAddr::station(9),
                info,
            };
            let mut bytes = repr.emit().unwrap();
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] ^= 1 << bit;
            prop_assert!(Frame::new_checked(&bytes[..]).is_err());
        }
    }
}
