// gw-lint: critical-path
//! MCHIP frames — the internet-protocol frames the gateway forwards
//! (§2.4, §6).
//!
//! The paper specifies the parts of the MCHIP frame its gateway hardware
//! touches: each congram is identified by a **2-octet hop-by-hop internet
//! channel number (ICN)** which the MPP strips and translates at every
//! hop (§6.1), and the frame **type** must be decodable fast (the MPP
//! spends 2 clock cycles on it, §6.3). The companion MCHIP specification
//! reports (\[11\], \[3\]) are not reproduced here; the header below is the
//! minimal structure supporting every operation this paper requires:
//!
//! ```text
//!  | ver|type | flags |   ICN   |  length |  cksum  |  payload...
//!  |   1 oct  | 1 oct | 2 oct   |  2 oct  |  2 oct  |
//! ```
//!
//! * `ver|type` — 4-bit version, 4-bit frame type ([`MchipType`]).
//! * `ICN` — internet channel number, big-endian.
//! * `length` — payload octets following the 8-octet header.
//! * `cksum` — 16-bit ones'-complement sum over the header (cksum
//!   field zeroed), protecting routing state against header corruption.

use crate::{Error, Result};

/// MCHIP header size in octets.
pub const MCHIP_HEADER_SIZE: usize = 8;
/// Protocol version implemented here.
pub const MCHIP_VERSION: u8 = 1;

/// A 2-octet internet channel number: the hop-by-hop congram identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Icn(pub u16);

impl core::fmt::Display for Icn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "icn:{}", self.0)
    }
}

/// MCHIP frame types.
///
/// `Data` travels the hardware critical path; every other type is a
/// control frame routed to the NPE without header processing (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MchipType {
    /// User/application data on an established congram.
    Data = 0x0,
    /// Congram setup request (UCon or PICon establishment, §2.4).
    SetupRequest = 0x1,
    /// Positive setup response, confirming resources along the path.
    SetupConfirm = 0x2,
    /// Negative setup response (admission refused or no route).
    SetupReject = 0x3,
    /// Congram termination request.
    Teardown = 0x4,
    /// Termination acknowledgment.
    TeardownAck = 0x5,
    /// Congram path reconfiguration (survivability, §2.4).
    Reconfigure = 0x6,
    /// Reconfiguration acknowledgment.
    ReconfigureAck = 0x7,
    /// PICon liveness probe.
    Keepalive = 0x8,
    /// Gateway-internal initialization frame: the NPE programs SPP
    /// reassembly timers and MPP ICXT tables with these (§5.4, §6.2).
    Init = 0x9,
    /// Resource-manager report (utilization exchange, §2.3).
    ResourceReport = 0xA,
}

impl MchipType {
    /// Decode from a 4-bit value.
    pub fn from_nibble(n: u8) -> Result<MchipType> {
        Ok(match n {
            0x0 => MchipType::Data,
            0x1 => MchipType::SetupRequest,
            0x2 => MchipType::SetupConfirm,
            0x3 => MchipType::SetupReject,
            0x4 => MchipType::Teardown,
            0x5 => MchipType::TeardownAck,
            0x6 => MchipType::Reconfigure,
            0x7 => MchipType::ReconfigureAck,
            0x8 => MchipType::Keepalive,
            0x9 => MchipType::Init,
            0xA => MchipType::ResourceReport,
            _ => return Err(Error::Malformed),
        })
    }

    /// True for every type except `Data` — these bypass ICXT lookup and
    /// go to the NPE.
    pub fn is_control(self) -> bool {
        !matches!(self, MchipType::Data)
    }
}

/// Parsed representation of the MCHIP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MchipHeader {
    /// Protocol version.
    pub version: u8,
    /// Frame type.
    pub mtype: MchipType,
    /// Flag bits (bit 0: multipoint congram; others reserved).
    pub flags: u8,
    /// Internet channel number.
    pub icn: Icn,
    /// Payload length in octets.
    pub length: u16,
}

impl MchipHeader {
    /// A data-frame header for the given congram and payload length.
    pub fn data(icn: Icn, length: u16) -> MchipHeader {
        MchipHeader { version: MCHIP_VERSION, mtype: MchipType::Data, flags: 0, icn, length }
    }

    /// A control-frame header of the given type.
    pub fn control(mtype: MchipType, icn: Icn, length: u16) -> MchipHeader {
        MchipHeader { version: MCHIP_VERSION, mtype, flags: 0, icn, length }
    }

    fn checksum(bytes: &[u8; MCHIP_HEADER_SIZE]) -> u16 {
        let mut sum: u32 = 0;
        for pair in [0usize, 2, 4].iter().map(|&i| [bytes[i], bytes[i + 1]]) {
            sum += u16::from_be_bytes(pair) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// Parse and verify the 8-octet header.
    pub fn parse(bytes: &[u8]) -> Result<MchipHeader> {
        if bytes.len() < MCHIP_HEADER_SIZE {
            return Err(Error::Truncated);
        }
        let mut hdr = [0u8; MCHIP_HEADER_SIZE];
        hdr.copy_from_slice(&bytes[..MCHIP_HEADER_SIZE]);
        let stored = u16::from_be_bytes([hdr[6], hdr[7]]);
        if Self::checksum(&hdr) != stored {
            return Err(Error::Checksum);
        }
        Ok(MchipHeader {
            version: hdr[0] >> 4,
            mtype: MchipType::from_nibble(hdr[0] & 0x0F)?,
            flags: hdr[1],
            icn: Icn(u16::from_be_bytes([hdr[2], hdr[3]])),
            length: u16::from_be_bytes([hdr[4], hdr[5]]),
        })
    }

    /// Emit the 8-octet header, computing the checksum.
    pub fn emit(&self, bytes: &mut [u8]) -> Result<()> {
        if bytes.len() < MCHIP_HEADER_SIZE {
            return Err(Error::Truncated);
        }
        if self.version > 0x0F {
            return Err(Error::Malformed);
        }
        bytes[0] = (self.version << 4) | (self.mtype as u8);
        bytes[1] = self.flags;
        bytes[2..4].copy_from_slice(&self.icn.0.to_be_bytes());
        bytes[4..6].copy_from_slice(&self.length.to_be_bytes());
        bytes[6] = 0;
        bytes[7] = 0;
        let mut hdr = [0u8; MCHIP_HEADER_SIZE];
        hdr.copy_from_slice(&bytes[..MCHIP_HEADER_SIZE]);
        let sum = Self::checksum(&hdr);
        bytes[6..8].copy_from_slice(&sum.to_be_bytes());
        Ok(())
    }
}

/// Build a complete MCHIP frame (header + payload) as owned bytes.
// gw-lint: setup-path — owned convenience for congram control frames; the frame path uses build_frame_into with recycled buffers
pub fn build_frame(header: &MchipHeader, payload: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(MCHIP_HEADER_SIZE + payload.len());
    build_frame_into(header, payload, &mut out)?;
    Ok(out)
}

/// Build a complete MCHIP frame (header + payload), appending to `out` —
/// the allocation-free variant for recycled staging buffers.
pub fn build_frame_into(header: &MchipHeader, payload: &[u8], out: &mut Vec<u8>) -> Result<()> {
    if payload.len() != header.length as usize {
        return Err(Error::Malformed);
    }
    let mut hdr = [0u8; MCHIP_HEADER_SIZE];
    header.emit(&mut hdr)?;
    out.extend_from_slice(&hdr);
    out.extend_from_slice(payload);
    Ok(())
}

/// Build a data frame on `icn` carrying `payload`.
pub fn build_data_frame(icn: Icn, payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > u16::MAX as usize {
        return Err(Error::TooLong);
    }
    build_frame(&MchipHeader::data(icn, payload.len() as u16), payload)
}

/// Parse a complete frame into header and payload slice. Trailing bytes
/// beyond the declared length (e.g. FDDI minimum-frame padding) are
/// ignored.
pub fn parse_frame(bytes: &[u8]) -> Result<(MchipHeader, &[u8])> {
    let header = MchipHeader::parse(bytes)?;
    let end = MCHIP_HEADER_SIZE + header.length as usize;
    if bytes.len() < end {
        return Err(Error::Truncated);
    }
    Ok((header, &bytes[MCHIP_HEADER_SIZE..end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = MchipHeader::data(Icn(0xBEEF), 1234);
        let mut b = [0u8; 8];
        h.emit(&mut b).unwrap();
        assert_eq!(MchipHeader::parse(&b).unwrap(), h);
    }

    #[test]
    fn all_types_roundtrip() {
        for n in 0..=0xAu8 {
            let t = MchipType::from_nibble(n).unwrap();
            assert_eq!(t as u8, n);
            let h = MchipHeader::control(t, Icn(7), 0);
            let mut b = [0u8; 8];
            h.emit(&mut b).unwrap();
            assert_eq!(MchipHeader::parse(&b).unwrap().mtype, t);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        for n in 0xBu8..=0xF {
            assert_eq!(MchipType::from_nibble(n), Err(Error::Malformed));
        }
    }

    #[test]
    fn only_data_is_noncontrol() {
        assert!(!MchipType::Data.is_control());
        for n in 1..=0xAu8 {
            assert!(MchipType::from_nibble(n).unwrap().is_control());
        }
    }

    #[test]
    fn checksum_detects_header_corruption() {
        let h = MchipHeader::data(Icn(0x1234), 99);
        let mut b = [0u8; 8];
        h.emit(&mut b).unwrap();
        for pos in 0..8 {
            let mut c = b;
            c[pos] ^= 0x10;
            assert!(MchipHeader::parse(&c).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn frame_build_parse_roundtrip() {
        let payload = b"application data".to_vec();
        let frame = build_data_frame(Icn(55), &payload).unwrap();
        let (h, p) = parse_frame(&frame).unwrap();
        assert_eq!(h.icn, Icn(55));
        assert_eq!(h.mtype, MchipType::Data);
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn parse_ignores_trailing_padding() {
        let mut frame = build_data_frame(Icn(1), b"abc").unwrap();
        frame.extend_from_slice(&[0u8; 40]); // FDDI min-frame padding
        let (h, p) = parse_frame(&frame).unwrap();
        assert_eq!(h.length, 3);
        assert_eq!(p, b"abc");
    }

    #[test]
    fn parse_rejects_short_payload() {
        let mut frame = build_data_frame(Icn(1), &[9u8; 50]).unwrap();
        frame.truncate(30);
        assert_eq!(parse_frame(&frame).err(), Some(Error::Truncated));
    }

    #[test]
    fn build_rejects_length_mismatch() {
        let h = MchipHeader::data(Icn(0), 10);
        assert_eq!(build_frame(&h, &[0u8; 9]).err(), Some(Error::Malformed));
    }

    #[test]
    fn emit_rejects_short_buffer() {
        let h = MchipHeader::data(Icn(0), 0);
        assert_eq!(h.emit(&mut [0u8; 7]), Err(Error::Truncated));
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert_eq!(MchipHeader::parse(&[0u8; 7]), Err(Error::Truncated));
    }

    #[test]
    fn header_is_8_octets() {
        assert_eq!(MCHIP_HEADER_SIZE, 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_any(icn: u16, len: u16, flags: u8, t in 0u8..=0xA) {
            let h = MchipHeader {
                version: MCHIP_VERSION,
                mtype: MchipType::from_nibble(t).unwrap(),
                flags,
                icn: Icn(icn),
                length: len,
            };
            let mut b = [0u8; 8];
            h.emit(&mut b).unwrap();
            prop_assert_eq!(MchipHeader::parse(&b).unwrap(), h);
        }

        #[test]
        fn data_frame_roundtrip(icn: u16, payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let frame = build_data_frame(Icn(icn), &payload).unwrap();
            let (h, p) = parse_frame(&frame).unwrap();
            prop_assert_eq!(h.icn, Icn(icn));
            prop_assert_eq!(p, &payload[..]);
        }
    }
}
