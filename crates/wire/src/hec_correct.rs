// gw-lint: critical-path
//! ITU-T I.432 HEC error handling: single-bit correction.
//!
//! The paper's AIC "performs an error check on the 5-byte ATM header"
//! and discards errored cells (§4.3). The emerging standard the paper
//! tracks (ITU-T I.432) additionally allows the receiver to *correct*
//! single-bit header errors using the CRC-8 syndrome, operating a
//! two-state machine:
//!
//! * **Correction mode** (initial): a zero syndrome passes the cell; a
//!   syndrome matching a single-bit error corrects that bit and drops
//!   to detection mode; any other syndrome discards the cell and drops
//!   to detection mode.
//! * **Detection mode**: any nonzero syndrome discards the cell; a
//!   valid header returns the receiver to correction mode.
//!
//! The mode switch exists because consecutive errors on fibre are
//! usually bursts: after one error, "correcting" further errors would
//! likely mis-correct.
//!
//! The syndrome of a single-bit error at bit `i` of the 40-bit header
//! is constant, so a 40-entry table inverts it in O(1) — exactly the
//! hardware realization.

use crate::crc::hec;

/// The receiver state of the I.432 HEC state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HecMode {
    /// Single-bit errors are corrected.
    #[default]
    Correction,
    /// All errored cells are discarded.
    Detection,
}

/// Outcome of processing one 5-octet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HecOutcome {
    /// Header valid; cell passes.
    Valid,
    /// A single-bit error was corrected in place (bit index reported).
    Corrected {
        /// Bit position within the 40-bit header (0 = MSB of octet 0).
        bit: u8,
    },
    /// Header errored beyond repair (or repair disabled); discard.
    Discard,
}

/// Syndrome of a single-bit error at header bit `i` (40 entries).
fn syndrome_table() -> [u8; 40] {
    let mut table = [0u8; 40];
    // The syndrome is hec(header') XOR stored_hec. For a reference
    // all-zero header with correct HEC, flipping bit i of the first
    // four octets gives syndrome hec(flipped) XOR hec(zero); flipping a
    // bit of the HEC octet itself gives a single-bit syndrome.
    let zero4 = [0u8; 4];
    let good = hec(&zero4);
    let mut i = 0;
    while i < 32 {
        let mut h = zero4;
        h[i / 8] ^= 0x80 >> (i % 8);
        table[i] = hec(&h) ^ good;
        i += 1;
    }
    while i < 40 {
        // Error in the HEC octet: syndrome is that bit itself.
        table[i] = 0x80 >> (i - 32);
        i += 1;
    }
    table
}

/// A stateful HEC receiver.
#[derive(Debug, Default)]
pub struct HecReceiver {
    mode: HecMode,
    table: Option<[u8; 40]>,
    corrected: u64,
    discarded: u64,
}

impl HecReceiver {
    /// A receiver starting in correction mode.
    pub fn new() -> HecReceiver {
        HecReceiver {
            mode: HecMode::Correction,
            table: Some(syndrome_table()),
            corrected: 0,
            discarded: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> HecMode {
        self.mode
    }

    /// Headers corrected so far.
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Headers discarded so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Process (and possibly repair) a 5-octet header in place.
    pub fn receive(&mut self, header: &mut [u8]) -> HecOutcome {
        debug_assert!(header.len() >= 5);
        let syndrome = hec(&header[..4]) ^ header[4];
        if syndrome == 0 {
            self.mode = HecMode::Correction;
            return HecOutcome::Valid;
        }
        match self.mode {
            HecMode::Detection => {
                self.discarded += 1;
                HecOutcome::Discard
            }
            HecMode::Correction => {
                self.mode = HecMode::Detection;
                let table = self.table.get_or_insert_with(syndrome_table);
                if let Some(bit) = table.iter().position(|&s| s == syndrome) {
                    header[bit / 8] ^= 0x80 >> (bit % 8);
                    self.corrected += 1;
                    HecOutcome::Corrected { bit: bit as u8 }
                } else {
                    self.discarded += 1;
                    HecOutcome::Discard
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::{AtmHeader, Vci, Vpi};
    use crate::crc::hec_valid;

    fn good_header() -> [u8; 5] {
        AtmHeader { gfc: 2, vpi: Vpi(7), vci: Vci(0x321), pti: 1, clp: false }.to_bytes()
    }

    #[test]
    fn valid_header_passes_and_stays_correcting() {
        let mut rx = HecReceiver::new();
        let mut h = good_header();
        assert_eq!(rx.receive(&mut h), HecOutcome::Valid);
        assert_eq!(rx.mode(), HecMode::Correction);
        assert_eq!(h, good_header());
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        for bit in 0..40usize {
            let mut rx = HecReceiver::new();
            let mut h = good_header();
            h[bit / 8] ^= 0x80 >> (bit % 8);
            match rx.receive(&mut h) {
                HecOutcome::Corrected { bit: b } => assert_eq!(b as usize, bit),
                other => panic!("bit {bit}: {other:?}"),
            }
            assert_eq!(h, good_header(), "bit {bit} repaired");
            assert!(hec_valid(&h));
            assert_eq!(rx.mode(), HecMode::Detection, "drops to detection after repair");
        }
    }

    #[test]
    fn double_bit_errors_discarded_mostly() {
        // Two-bit errors must never be "validated"; they are either
        // discarded or (rarely, if their syndrome matches a single-bit
        // pattern) mis-corrected into a *different* header — the known
        // limitation that motivates detection mode. Count outcomes.
        let mut discards = 0;
        let mut miscorrections = 0;
        for b1 in 0..40usize {
            for b2 in (b1 + 1)..40 {
                let mut rx = HecReceiver::new();
                let mut h = good_header();
                h[b1 / 8] ^= 0x80 >> (b1 % 8);
                h[b2 / 8] ^= 0x80 >> (b2 % 8);
                match rx.receive(&mut h) {
                    HecOutcome::Discard => discards += 1,
                    HecOutcome::Corrected { .. } => miscorrections += 1,
                    HecOutcome::Valid => panic!("two-bit error validated"),
                }
            }
        }
        assert!(discards > 0);
        // CRC-8 x^8+x^2+x+1 leaves some 2-bit syndromes aliasing
        // single-bit ones; the standard accepts this.
        assert!(discards + miscorrections == 40 * 39 / 2);
    }

    #[test]
    fn detection_mode_discards_correctable_errors() {
        let mut rx = HecReceiver::new();
        // First error: corrected, switch to detection.
        let mut h = good_header();
        h[0] ^= 0x80;
        rx.receive(&mut h);
        // Second consecutive error: discarded even though single-bit.
        let mut h2 = good_header();
        h2[1] ^= 0x01;
        assert_eq!(rx.receive(&mut h2), HecOutcome::Discard);
        assert_eq!(rx.discarded(), 1);
        // A clean header restores correction mode.
        let mut h3 = good_header();
        assert_eq!(rx.receive(&mut h3), HecOutcome::Valid);
        assert_eq!(rx.mode(), HecMode::Correction);
        let mut h4 = good_header();
        h4[2] ^= 0x10;
        assert!(matches!(rx.receive(&mut h4), HecOutcome::Corrected { .. }));
        assert_eq!(rx.corrected(), 2);
    }

    #[test]
    fn syndrome_table_is_injective_enough() {
        // All 40 single-bit syndromes must be distinct and nonzero, or
        // correction would be ambiguous.
        let t = syndrome_table();
        let mut seen = std::collections::HashSet::new();
        for &s in &t {
            assert_ne!(s, 0);
            assert!(seen.insert(s), "duplicate syndrome {s:#x}");
        }
    }
}
