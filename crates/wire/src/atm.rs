// gw-lint: critical-path
//! The 53-octet ATM cell (§3 "Packet Format", Figure 2; §4.3 "AIC").
//!
//! A cell comprises a 5-octet header and a 48-octet information field.
//! The gateway targets the UNI header layout:
//!
//! ```text
//!  bit   7   6   5   4   3   2   1   0
//!      +---------------+---------------+
//!  [0] |      GFC      |   VPI (hi)    |
//!      +---------------+---------------+
//!  [1] |   VPI (lo)    |   VCI (hi)    |
//!      +---------------+---------------+
//!  [2] |           VCI (mid)           |
//!      +-----------+-------------------+
//!  [3] | VCI (lo)  |    PTI    | CLP   |
//!      +-----------+-------------------+
//!  [4] |              HEC              |
//!      +-------------------------------+
//! ```
//!
//! The AIC checks the HEC on inbound cells (discarding failures) and
//! generates it for outbound cells.

use crate::crc;
use crate::{Error, Result};

/// Total cell size in octets.
pub const CELL_SIZE: usize = 53;
/// Header size in octets.
pub const HEADER_SIZE: usize = 5;
/// Information-field size in octets.
pub const PAYLOAD_SIZE: usize = 48;

/// Virtual path identifier (8 bits at the UNI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vpi(pub u8);

/// Virtual channel identifier (16 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vci(pub u16);

impl core::fmt::Display for Vpi {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vpi:{}", self.0)
    }
}

impl core::fmt::Display for Vci {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vci:{}", self.0)
    }
}

/// Parsed representation of the 5-octet ATM cell header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AtmHeader {
    /// Generic flow control (4 bits, UNI only).
    pub gfc: u8,
    /// Virtual path identifier.
    pub vpi: Vpi,
    /// Virtual channel identifier.
    pub vci: Vci,
    /// Payload type indicator (3 bits).
    pub pti: u8,
    /// Cell loss priority (true = eligible for discard under congestion).
    pub clp: bool,
}

impl AtmHeader {
    /// A data-cell header on the given VPI/VCI with all other fields zero.
    pub fn data(vpi: Vpi, vci: Vci) -> Self {
        AtmHeader { gfc: 0, vpi, vci, pti: 0, clp: false }
    }

    /// Parse the first four octets (the HEC is *not* consulted here; use
    /// [`Cell::check_hec`] or [`crate::crc::hec_valid`] for that).
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(Error::Truncated);
        }
        let gfc = bytes[0] >> 4;
        let vpi = Vpi(((bytes[0] & 0x0F) << 4) | (bytes[1] >> 4));
        let vci = Vci((((bytes[1] & 0x0F) as u16) << 12)
            | ((bytes[2] as u16) << 4)
            | ((bytes[3] >> 4) as u16));
        let pti = (bytes[3] >> 1) & 0x07;
        let clp = bytes[3] & 1 != 0;
        Ok(AtmHeader { gfc, vpi, vci, pti, clp })
    }

    /// Emit the full 5-octet header, computing the HEC, into `bytes`.
    pub fn emit(&self, bytes: &mut [u8]) -> Result<()> {
        if bytes.len() < HEADER_SIZE {
            return Err(Error::Truncated);
        }
        if self.gfc > 0x0F || self.pti > 0x07 {
            return Err(Error::Malformed);
        }
        bytes[..HEADER_SIZE].copy_from_slice(&self.to_bytes());
        Ok(())
    }

    /// The header as a 5-octet array (HEC included). Field widths are
    /// masked to their on-wire sizes (GFC 4 bits, PTI 3 bits), so
    /// packing cannot fail; [`AtmHeader::emit`] is the variant that
    /// reports out-of-range fields instead of truncating them.
    pub fn to_bytes(&self) -> [u8; HEADER_SIZE] {
        let mut b = [0u8; HEADER_SIZE];
        b[0] = ((self.gfc & 0x0F) << 4) | (self.vpi.0 >> 4);
        b[1] = (self.vpi.0 << 4) | ((self.vci.0 >> 12) as u8 & 0x0F);
        b[2] = (self.vci.0 >> 4) as u8;
        b[3] = ((self.vci.0 << 4) as u8) | ((self.pti & 0x07) << 1) | (self.clp as u8);
        b[4] = crc::hec(&b[..4]);
        b
    }
}

/// A typed view over a 53-octet ATM cell buffer.
///
/// Wraps any `AsRef<[u8]>`; mutating accessors additionally require
/// `AsMut<[u8]>`. Constructing with [`Cell::new_checked`] verifies length
/// and HEC, mirroring what the AIC does in hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Cell<T> {
    /// Wrap a buffer without any checks.
    pub fn new_unchecked(buffer: T) -> Cell<T> {
        Cell { buffer }
    }

    /// Wrap a buffer, ensuring it is exactly one cell long and its HEC
    /// verifies — the AIC's inbound filter (§4.3).
    pub fn new_checked(buffer: T) -> Result<Cell<T>> {
        let cell = Cell::new_unchecked(buffer);
        let data = cell.buffer.as_ref();
        if data.len() != CELL_SIZE {
            return Err(Error::Truncated);
        }
        if !crc::hec_valid(&data[..HEADER_SIZE]) {
            return Err(Error::Checksum);
        }
        Ok(cell)
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Parse the header fields. A buffer shorter than a header is only
    /// reachable through [`Cell::new_unchecked`]; it reads as the
    /// all-zero header, and VCI 0 is never programmed, so such a cell
    /// falls to the unknown-VC drop-and-count path rather than
    /// panicking — the hardware has no panic.
    pub fn header(&self) -> AtmHeader {
        AtmHeader::parse(self.buffer.as_ref()).unwrap_or(AtmHeader {
            gfc: 0,
            vpi: Vpi(0),
            vci: Vci(0),
            pti: 0,
            clp: false,
        })
    }

    /// Verify the header error check.
    pub fn check_hec(&self) -> bool {
        crc::hec_valid(&self.buffer.as_ref()[..HEADER_SIZE])
    }

    /// The 48-octet information field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_SIZE..CELL_SIZE]
    }

    /// The whole 53-octet cell.
    pub fn as_bytes(&self) -> &[u8] {
        self.buffer.as_ref()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Cell<T> {
    /// Write the header (computing the HEC) into the cell.
    pub fn set_header(&mut self, header: &AtmHeader) -> Result<()> {
        header.emit(self.buffer.as_mut())
    }

    /// Mutable access to the information field.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_SIZE..CELL_SIZE]
    }
}

/// An owned cell, the common currency between the simulated networks and
/// the gateway.
pub type OwnedCell = Cell<[u8; CELL_SIZE]>;

impl OwnedCell {
    /// Build a cell from a header and a 48-octet information field.
    pub fn build(header: &AtmHeader, payload: &[u8]) -> Result<OwnedCell> {
        if payload.len() != PAYLOAD_SIZE {
            return Err(Error::Malformed);
        }
        let mut buf = [0u8; CELL_SIZE];
        header.emit(&mut buf)?;
        buf[HEADER_SIZE..].copy_from_slice(payload);
        Ok(Cell::new_unchecked(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> AtmHeader {
        AtmHeader { gfc: 0x3, vpi: Vpi(0xAB), vci: Vci(0x1234), pti: 0b010, clp: true }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let bytes = h.to_bytes();
        let parsed = AtmHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_roundtrip_extremes() {
        for (gfc, vpi, vci, pti, clp) in
            [(0, 0, 0, 0, false), (0xF, 0xFF, 0xFFFF, 0x7, true), (0x5, 0x01, 0x8000, 0x4, false)]
        {
            let h = AtmHeader { gfc, vpi: Vpi(vpi), vci: Vci(vci), pti, clp };
            assert_eq!(AtmHeader::parse(&h.to_bytes()).unwrap(), h);
        }
    }

    #[test]
    fn emit_rejects_out_of_range_fields() {
        let mut h = sample_header();
        h.gfc = 0x10;
        assert_eq!(h.emit(&mut [0u8; 5]), Err(Error::Malformed));
        let mut h = sample_header();
        h.pti = 0x08;
        assert_eq!(h.emit(&mut [0u8; 5]), Err(Error::Malformed));
    }

    #[test]
    fn emit_rejects_short_buffer() {
        assert_eq!(sample_header().emit(&mut [0u8; 4]), Err(Error::Truncated));
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert_eq!(AtmHeader::parse(&[0u8; 3]), Err(Error::Truncated));
    }

    #[test]
    fn checked_cell_accepts_good_hec() {
        let cell = OwnedCell::build(&sample_header(), &[7u8; PAYLOAD_SIZE]).unwrap();
        let buf = cell.into_inner();
        assert!(Cell::new_checked(buf).is_ok());
    }

    #[test]
    fn checked_cell_rejects_bad_hec() {
        let cell = OwnedCell::build(&sample_header(), &[7u8; PAYLOAD_SIZE]).unwrap();
        let mut buf = cell.into_inner();
        buf[1] ^= 0x40;
        assert_eq!(Cell::new_checked(buf).err(), Some(Error::Checksum));
    }

    #[test]
    fn checked_cell_rejects_wrong_length() {
        assert_eq!(Cell::new_checked(vec![0u8; 52]).err(), Some(Error::Truncated));
        assert_eq!(Cell::new_checked(vec![0u8; 54]).err(), Some(Error::Truncated));
    }

    #[test]
    fn payload_is_48_octets_and_mutable() {
        let mut cell = OwnedCell::build(&sample_header(), &[0u8; PAYLOAD_SIZE]).unwrap();
        assert_eq!(cell.payload().len(), PAYLOAD_SIZE);
        cell.payload_mut()[0] = 0xEE;
        assert_eq!(cell.payload()[0], 0xEE);
        // Header untouched by payload writes.
        assert_eq!(cell.header(), sample_header());
    }

    #[test]
    fn build_rejects_wrong_payload_size() {
        assert_eq!(OwnedCell::build(&sample_header(), &[0u8; 47]).err(), Some(Error::Malformed));
    }

    #[test]
    fn cell_size_constant_is_53() {
        assert_eq!(CELL_SIZE, HEADER_SIZE + PAYLOAD_SIZE);
        assert_eq!(CELL_SIZE, 53);
    }
}
