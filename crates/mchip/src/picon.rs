//! PICon multiplexing (§2.4).
//!
//! "PICons are long lived congrams between MCHIP entities, and their
//! purpose is to allow multiplexing of traffic from a number of users
//! and applications when appropriate, and to carry data for UCons that
//! are being set up or reconfigured. In this respect, PICons are like
//! dynamic leased packet switched internet channels."
//!
//! A [`PiconMux`] wraps subflow frames in the PICon's data frames with
//! a 6-octet multiplexing sub-header (subflow id + length); the far
//! side's [`PiconMux`] demultiplexes. The canonical use is **zero
//! round-trip UCon start-up**: an application begins sending the moment
//! it requests a UCon, its early frames ride the PICon, and once the
//! UCon confirms the flow cuts over to the dedicated channel — the
//! congram abstraction's answer to connection-setup latency.

use crate::congram::CongramId;
use gw_wire::{Error, Result};

/// Size of the multiplexing sub-header: 4-octet subflow id + 2-octet
/// length.
pub const MUX_HEADER: usize = 6;

/// A subflow identifier within a PICon (the UCon's end-to-end id).
pub type SubflowId = CongramId;

/// Multiplexes subflow frames onto a PICon and demultiplexes arrivals.
///
/// The mux is symmetric: each MCHIP entity holds one per PICon.
///
/// ```
/// use gw_mchip::congram::CongramId;
/// use gw_mchip::picon::PiconMux;
///
/// let mut tx = PiconMux::new();
/// let mut rx = PiconMux::new();
/// let wire = PiconMux::bundle(&[
///     tx.wrap(CongramId(1), b"early").unwrap(),
///     tx.wrap(CongramId(2), b"data").unwrap(),
/// ]);
/// let frames = rx.unwrap_all(&wire).unwrap();
/// assert_eq!(frames[0], (CongramId(1), b"early".to_vec()));
/// assert_eq!(frames[1], (CongramId(2), b"data".to_vec()));
/// ```
#[derive(Debug, Default)]
pub struct PiconMux {
    /// Octets carried per subflow (for the resource manager's
    /// utilization reports, §2.3).
    carried: std::collections::HashMap<u32, u64>,
}

impl PiconMux {
    /// A fresh mux.
    pub fn new() -> PiconMux {
        PiconMux::default()
    }

    /// Wrap one subflow frame for transmission on the PICon. Several
    /// wrapped frames may be concatenated into one PICon payload.
    pub fn wrap(&mut self, subflow: SubflowId, frame: &[u8]) -> Result<Vec<u8>> {
        if frame.len() > u16::MAX as usize {
            return Err(Error::TooLong);
        }
        let mut out = Vec::with_capacity(MUX_HEADER + frame.len());
        out.extend_from_slice(&subflow.0.to_be_bytes());
        out.extend_from_slice(&(frame.len() as u16).to_be_bytes());
        out.extend_from_slice(frame);
        *self.carried.entry(subflow.0).or_insert(0) += frame.len() as u64;
        Ok(out)
    }

    /// Concatenate several wrapped frames into one PICon payload.
    pub fn bundle(parts: &[Vec<u8>]) -> Vec<u8> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend_from_slice(p);
        }
        out
    }

    /// Demultiplex a PICon payload into `(subflow, frame)` pairs.
    pub fn unwrap_all(&mut self, payload: &[u8]) -> Result<Vec<(SubflowId, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < payload.len() {
            let hdr = payload.get(i..i + MUX_HEADER).ok_or(Error::Truncated)?;
            let subflow = u32::from_be_bytes(hdr[..4].try_into().expect("4 bytes"));
            let len = u16::from_be_bytes(hdr[4..6].try_into().expect("2 bytes")) as usize;
            let body = payload.get(i + MUX_HEADER..i + MUX_HEADER + len).ok_or(Error::Truncated)?;
            out.push((CongramId(subflow), body.to_vec()));
            i += MUX_HEADER + len;
        }
        Ok(out)
    }

    /// Octets this mux has carried for a subflow.
    pub fn carried(&self, subflow: SubflowId) -> u64 {
        self.carried.get(&subflow.0).copied().unwrap_or(0)
    }

    /// Number of distinct subflows seen.
    pub fn subflows(&self) -> usize {
        self.carried.len()
    }
}

/// The sender-side cut-over helper: buffers a UCon's early traffic on a
/// PICon until the UCon confirms, then switches to the dedicated path.
///
/// State machine: `OnPicon` (frames ride the PICon) → `Dedicated`
/// (frames use the UCon's own channel). The paper's plesio-reliable
/// semantics permit the cut-over without a flush handshake — ordering
/// across the switch is statistical, like everything else about a
/// congram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UconPath {
    /// Early data multiplexed onto the PICon (§2.4).
    OnPicon,
    /// The UCon's dedicated channel is up.
    Dedicated,
}

/// Tracks which path each pending UCon's traffic takes.
#[derive(Debug, Default)]
pub struct CutOver {
    paths: std::collections::HashMap<u32, UconPath>,
}

impl CutOver {
    /// A fresh tracker.
    pub fn new() -> CutOver {
        CutOver::default()
    }

    /// A UCon began setup: its traffic rides the PICon.
    pub fn begin(&mut self, ucon: SubflowId) {
        self.paths.insert(ucon.0, UconPath::OnPicon);
    }

    /// The UCon confirmed: traffic cuts over to the dedicated channel.
    pub fn confirm(&mut self, ucon: SubflowId) {
        self.paths.insert(ucon.0, UconPath::Dedicated);
    }

    /// The UCon ended (teardown or reject): forget it.
    pub fn end(&mut self, ucon: SubflowId) {
        self.paths.remove(&ucon.0);
    }

    /// Which path the UCon's next frame should take, if it is known.
    pub fn path(&self, ucon: SubflowId) -> Option<UconPath> {
        self.paths.get(&ucon.0).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_unwrap_roundtrip() {
        let mut tx = PiconMux::new();
        let mut rx = PiconMux::new();
        let w = tx.wrap(CongramId(7), b"early data").unwrap();
        let got = rx.unwrap_all(&w).unwrap();
        assert_eq!(got, vec![(CongramId(7), b"early data".to_vec())]);
    }

    #[test]
    fn bundling_preserves_order_and_subflows() {
        let mut tx = PiconMux::new();
        let parts = vec![
            tx.wrap(CongramId(1), b"a1").unwrap(),
            tx.wrap(CongramId(2), b"b1").unwrap(),
            tx.wrap(CongramId(1), b"a2").unwrap(),
        ];
        let payload = PiconMux::bundle(&parts);
        let mut rx = PiconMux::new();
        let got = rx.unwrap_all(&payload).unwrap();
        assert_eq!(
            got,
            vec![
                (CongramId(1), b"a1".to_vec()),
                (CongramId(2), b"b1".to_vec()),
                (CongramId(1), b"a2".to_vec()),
            ]
        );
        assert_eq!(tx.subflows(), 2);
        assert_eq!(tx.carried(CongramId(1)), 4);
    }

    #[test]
    fn empty_frames_allowed() {
        let mut tx = PiconMux::new();
        let w = tx.wrap(CongramId(3), b"").unwrap();
        let mut rx = PiconMux::new();
        assert_eq!(rx.unwrap_all(&w).unwrap(), vec![(CongramId(3), vec![])]);
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut tx = PiconMux::new();
        let w = tx.wrap(CongramId(1), b"abcdef").unwrap();
        let mut rx = PiconMux::new();
        assert_eq!(rx.unwrap_all(&w[..w.len() - 1]), Err(Error::Truncated));
        assert_eq!(rx.unwrap_all(&w[..3]), Err(Error::Truncated));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut tx = PiconMux::new();
        assert_eq!(tx.wrap(CongramId(1), &vec![0u8; 70_000]), Err(Error::TooLong));
    }

    #[test]
    fn cutover_state_machine() {
        let mut co = CutOver::new();
        assert_eq!(co.path(CongramId(9)), None);
        co.begin(CongramId(9));
        assert_eq!(co.path(CongramId(9)), Some(UconPath::OnPicon));
        co.confirm(CongramId(9));
        assert_eq!(co.path(CongramId(9)), Some(UconPath::Dedicated));
        co.end(CongramId(9));
        assert_eq!(co.path(CongramId(9)), None);
    }
}
