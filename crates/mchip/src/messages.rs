//! Wire codecs for MCHIP control payloads.
//!
//! Control frames travel the gateway's non-critical path: the MPP
//! routes them to the NPE "without any table lookup or header
//! processing" (§4.3), where the congram manager interprets them. The
//! MCHIP header ([`gw_wire::mchip`]) carries the frame type; this
//! module encodes/decodes the type-specific payload that follows it.
//!
//! The companion MCHIP specification (\[11\]) would pin exact formats;
//! these are the minimal fields each operation needs, fixed-width and
//! big-endian throughout.

use crate::congram::{CongramId, CongramKind, FlowSpec};
use gw_wire::mchip::{Icn, MchipType};
use gw_wire::{Error, Result};

/// A decoded control payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlPayload {
    /// Request establishment of a congram.
    SetupRequest {
        /// End-to-end congram identity.
        congram: CongramId,
        /// UCon or PICon.
        kind: CongramKind,
        /// Resources requested.
        flow: FlowSpec,
        /// Destination address (an opaque 8-octet internet address; the
        /// route server interprets it).
        dest: [u8; 8],
    },
    /// Positive setup response carrying the ICN assigned for the next
    /// hop's use.
    SetupConfirm {
        /// The congram.
        congram: CongramId,
        /// ICN the requester must stamp on data frames.
        assigned_icn: Icn,
    },
    /// Negative setup response.
    SetupReject {
        /// The congram.
        congram: CongramId,
        /// Implementation-defined reason code.
        reason: u16,
    },
    /// Terminate a congram.
    Teardown {
        /// The congram.
        congram: CongramId,
    },
    /// Acknowledge a teardown.
    TeardownAck {
        /// The congram.
        congram: CongramId,
    },
    /// Re-route a congram (survivability, §2.4).
    Reconfigure {
        /// The congram.
        congram: CongramId,
        /// New ICN after the path change.
        new_icn: Icn,
    },
    /// PICon liveness probe.
    Keepalive {
        /// The congram.
        congram: CongramId,
    },
    /// Resource-manager utilization report (§2.3).
    ResourceReport {
        /// Committed bits per second on the reporting network.
        committed_bps: u64,
        /// Capacity of the reporting network.
        capacity_bps: u64,
    },
}

impl ControlPayload {
    /// The MCHIP frame type carrying this payload.
    pub fn mtype(&self) -> MchipType {
        match self {
            ControlPayload::SetupRequest { .. } => MchipType::SetupRequest,
            ControlPayload::SetupConfirm { .. } => MchipType::SetupConfirm,
            ControlPayload::SetupReject { .. } => MchipType::SetupReject,
            ControlPayload::Teardown { .. } => MchipType::Teardown,
            ControlPayload::TeardownAck { .. } => MchipType::TeardownAck,
            ControlPayload::Reconfigure { .. } => MchipType::Reconfigure,
            ControlPayload::Keepalive { .. } => MchipType::Keepalive,
            ControlPayload::ResourceReport { .. } => MchipType::ResourceReport,
        }
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ControlPayload::SetupRequest { congram, kind, flow, dest } => {
                out.extend_from_slice(&congram.0.to_be_bytes());
                out.push(match kind {
                    CongramKind::UCon => 0,
                    CongramKind::PICon => 1,
                });
                out.extend_from_slice(&flow.peak_bps.to_be_bytes());
                out.extend_from_slice(&flow.mean_bps.to_be_bytes());
                out.extend_from_slice(&flow.burst_octets.to_be_bytes());
                out.extend_from_slice(dest);
            }
            ControlPayload::SetupConfirm { congram, assigned_icn } => {
                out.extend_from_slice(&congram.0.to_be_bytes());
                out.extend_from_slice(&assigned_icn.0.to_be_bytes());
            }
            ControlPayload::SetupReject { congram, reason } => {
                out.extend_from_slice(&congram.0.to_be_bytes());
                out.extend_from_slice(&reason.to_be_bytes());
            }
            ControlPayload::Teardown { congram } | ControlPayload::TeardownAck { congram } => {
                out.extend_from_slice(&congram.0.to_be_bytes());
            }
            ControlPayload::Reconfigure { congram, new_icn } => {
                out.extend_from_slice(&congram.0.to_be_bytes());
                out.extend_from_slice(&new_icn.0.to_be_bytes());
            }
            ControlPayload::Keepalive { congram } => {
                out.extend_from_slice(&congram.0.to_be_bytes());
            }
            ControlPayload::ResourceReport { committed_bps, capacity_bps } => {
                out.extend_from_slice(&committed_bps.to_be_bytes());
                out.extend_from_slice(&capacity_bps.to_be_bytes());
            }
        }
        out
    }

    /// Decode a payload of the given frame type.
    pub fn decode(mtype: MchipType, bytes: &[u8]) -> Result<ControlPayload> {
        fn u32_at(b: &[u8], i: usize) -> Result<u32> {
            b.get(i..i + 4)
                .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
                .ok_or(Error::Truncated)
        }
        fn u64_at(b: &[u8], i: usize) -> Result<u64> {
            b.get(i..i + 8)
                .map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
                .ok_or(Error::Truncated)
        }
        fn u16_at(b: &[u8], i: usize) -> Result<u16> {
            b.get(i..i + 2)
                .map(|s| u16::from_be_bytes(s.try_into().expect("2 bytes")))
                .ok_or(Error::Truncated)
        }
        Ok(match mtype {
            MchipType::SetupRequest => {
                let congram = CongramId(u32_at(bytes, 0)?);
                let kind = match bytes.get(4).ok_or(Error::Truncated)? {
                    0 => CongramKind::UCon,
                    1 => CongramKind::PICon,
                    _ => return Err(Error::Malformed),
                };
                let flow = FlowSpec {
                    peak_bps: u64_at(bytes, 5)?,
                    mean_bps: u64_at(bytes, 13)?,
                    burst_octets: u32_at(bytes, 21)?,
                };
                let dest: [u8; 8] =
                    bytes.get(25..33).ok_or(Error::Truncated)?.try_into().expect("8 bytes");
                ControlPayload::SetupRequest { congram, kind, flow, dest }
            }
            MchipType::SetupConfirm => ControlPayload::SetupConfirm {
                congram: CongramId(u32_at(bytes, 0)?),
                assigned_icn: Icn(u16_at(bytes, 4)?),
            },
            MchipType::SetupReject => ControlPayload::SetupReject {
                congram: CongramId(u32_at(bytes, 0)?),
                reason: u16_at(bytes, 4)?,
            },
            MchipType::Teardown => {
                ControlPayload::Teardown { congram: CongramId(u32_at(bytes, 0)?) }
            }
            MchipType::TeardownAck => {
                ControlPayload::TeardownAck { congram: CongramId(u32_at(bytes, 0)?) }
            }
            MchipType::Reconfigure => ControlPayload::Reconfigure {
                congram: CongramId(u32_at(bytes, 0)?),
                new_icn: Icn(u16_at(bytes, 4)?),
            },
            MchipType::Keepalive => {
                ControlPayload::Keepalive { congram: CongramId(u32_at(bytes, 0)?) }
            }
            MchipType::ResourceReport => ControlPayload::ResourceReport {
                committed_bps: u64_at(bytes, 0)?,
                capacity_bps: u64_at(bytes, 8)?,
            },
            // ReconfigureAck carries the same payload as TeardownAck: just
            // the congram id.
            MchipType::ReconfigureAck => {
                ControlPayload::TeardownAck { congram: CongramId(u32_at(bytes, 0)?) }
            }
            MchipType::Data | MchipType::Init => return Err(Error::Malformed),
        })
    }

    /// Build a complete MCHIP control frame (header + payload).
    pub fn to_frame(&self, icn: Icn) -> Vec<u8> {
        let payload = self.encode();
        let header = gw_wire::mchip::MchipHeader::control(self.mtype(), icn, payload.len() as u16);
        gw_wire::mchip::build_frame(&header, &payload).expect("length matches")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: ControlPayload) {
        let bytes = p.encode();
        let decoded = ControlPayload::decode(p.mtype(), &bytes).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn all_payloads_roundtrip() {
        roundtrip(ControlPayload::SetupRequest {
            congram: CongramId(0xDEADBEEF),
            kind: CongramKind::UCon,
            flow: FlowSpec { peak_bps: 10_000_000, mean_bps: 2_000_000, burst_octets: 9000 },
            dest: [1, 2, 3, 4, 5, 6, 7, 8],
        });
        roundtrip(ControlPayload::SetupRequest {
            congram: CongramId(1),
            kind: CongramKind::PICon,
            flow: FlowSpec::cbr(64_000),
            dest: [0; 8],
        });
        roundtrip(ControlPayload::SetupConfirm { congram: CongramId(7), assigned_icn: Icn(555) });
        roundtrip(ControlPayload::SetupReject { congram: CongramId(7), reason: 2 });
        roundtrip(ControlPayload::Teardown { congram: CongramId(9) });
        roundtrip(ControlPayload::TeardownAck { congram: CongramId(9) });
        roundtrip(ControlPayload::Reconfigure { congram: CongramId(3), new_icn: Icn(17) });
        roundtrip(ControlPayload::Keepalive { congram: CongramId(u32::MAX) });
        roundtrip(ControlPayload::ResourceReport {
            committed_bps: 123_456_789,
            capacity_bps: 987_654_321,
        });
    }

    #[test]
    fn truncated_payloads_rejected() {
        let p = ControlPayload::SetupRequest {
            congram: CongramId(1),
            kind: CongramKind::UCon,
            flow: FlowSpec::cbr(1),
            dest: [0; 8],
        };
        let bytes = p.encode();
        for cut in [0, 4, 12, bytes.len() - 1] {
            assert_eq!(
                ControlPayload::decode(MchipType::SetupRequest, &bytes[..cut]),
                Err(Error::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let p = ControlPayload::SetupRequest {
            congram: CongramId(1),
            kind: CongramKind::UCon,
            flow: FlowSpec::cbr(1),
            dest: [0; 8],
        };
        let mut bytes = p.encode();
        bytes[4] = 9;
        assert_eq!(ControlPayload::decode(MchipType::SetupRequest, &bytes), Err(Error::Malformed));
    }

    #[test]
    fn data_and_init_are_not_control_payloads() {
        assert_eq!(ControlPayload::decode(MchipType::Data, &[]), Err(Error::Malformed));
        assert_eq!(ControlPayload::decode(MchipType::Init, &[]), Err(Error::Malformed));
    }

    #[test]
    fn to_frame_parses_back() {
        let p = ControlPayload::Keepalive { congram: CongramId(77) };
        let frame = p.to_frame(Icn(5));
        let (header, payload) = gw_wire::mchip::parse_frame(&frame).unwrap();
        assert_eq!(header.mtype, MchipType::Keepalive);
        assert_eq!(header.icn, Icn(5));
        assert_eq!(ControlPayload::decode(header.mtype, payload).unwrap(), p);
    }

    #[test]
    fn mtype_mapping_is_control() {
        let samples = [
            ControlPayload::Teardown { congram: CongramId(0) },
            ControlPayload::Keepalive { congram: CongramId(0) },
            ControlPayload::ResourceReport { committed_bps: 0, capacity_bps: 0 },
        ];
        for s in samples {
            assert!(s.mtype().is_control());
        }
    }
}
