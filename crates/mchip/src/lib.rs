//! MCHIP — the Multipoint Congram-oriented High performance Internet
//! Protocol (§2 of the paper; companion reports \[3\], \[11\]).
//!
//! MCHIP is the VHSI abstraction's internet protocol: higher-level
//! protocols use it "to communicate across the internet without being
//! concerned with the diversity of underlying networks" (§1). The unit
//! of service is the **congram** — a plesio-reliable connection/datagram
//! hybrid: a predetermined path with statistically bound resources, no
//! hop-by-hop flow or error control, and low-overhead establishment and
//! reconfiguration (§2.4).
//!
//! This crate implements the software (non-critical-path) side of MCHIP
//! that the gateway's NPE runs (§4.3 "Node Processing Element"):
//!
//! * [`congram`] — congram lifecycles for both congram types: **UCon**
//!   (user congram, set up on request, terminated after use) and
//!   **PICon** (persistent internet congram, system-created, long
//!   lived, multiplexing many users and carrying data for UCons in
//!   setup — "like dynamic leased packet switched internet channels",
//!   §2.4); ICN allocation and hop-by-hop translation bookkeeping.
//! * [`resman`] — the per-network resource manager of §2.3: a
//!   designated gateway accounts resource usage of active congrams on
//!   behalf of networks (like FDDI) that lack explicit internal
//!   resource management, admitting congrams only when resources
//!   remain (the approach validated for Ethernet in reference \[10\]).
//! * [`route`] — an internet route server: routing over a graph of
//!   networks and gateways subject to resource requirements (§2.2),
//!   including multicast trees for multipoint congrams.
//! * [`messages`] — wire codecs for the MCHIP control payloads the NPE
//!   exchanges (setup / confirm / reject / teardown / reconfigure /
//!   keepalive / resource reports).
//!
//! The paper defines the congram abstraction and the gateway's view of
//! it; where the companion MCHIP specification would supply details
//! (exact message fields, timer values), this crate documents its
//! choices inline and keeps them minimal.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod congram;
pub mod messages;
pub mod picon;
pub mod resman;
pub mod route;

pub use congram::{
    CongramError, CongramEvent, CongramId, CongramKind, CongramManager, CongramState, FlowSpec,
};
pub use messages::ControlPayload;
pub use picon::{CutOver, PiconMux, UconPath};
pub use resman::{AdmitDecision, ResourceManager};
pub use route::{NodeId, NodeKind, RouteError, RouteServer};
