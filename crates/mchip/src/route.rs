//! The internet route server (§2.2).
//!
//! The VHSI abstraction includes "an internet route server" supporting
//! "efficient multicast and routing based on resource requirements"
//! (§2.2). The paper defers routing research to other efforts; this
//! module implements the minimal server those requirements describe: a
//! graph of networks and gateways with per-edge bandwidth and delay,
//! shortest-delay routing filtered by available bandwidth (so a congram
//! is only routed where its resources can be met), and multicast trees
//! as unions of shortest paths.

use std::collections::BinaryHeap;

/// A node in the internet graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// What a node is (affects nothing in routing; kept for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A component network (ATM, FDDI, Ethernet…).
    Network,
    /// A gateway interconnecting networks.
    Gateway,
}

/// Routing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Unknown node id.
    UnknownNode,
    /// No path satisfying the bandwidth requirement exists.
    NoRoute,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    delay_us: u64,
    available_bps: u64,
}

/// The route server.
///
/// ```
/// use gw_mchip::route::{NodeKind, RouteServer};
///
/// let mut rs = RouteServer::new();
/// let lan = rs.add_node(NodeKind::Network);
/// let gw = rs.add_node(NodeKind::Gateway);
/// let wan = rs.add_node(NodeKind::Network);
/// rs.add_edge(lan, gw, 10, 100_000_000);
/// rs.add_edge(gw, wan, 50, 155_000_000);
/// let path = rs.route(lan, wan, 10_000_000).unwrap();
/// assert_eq!(path, vec![lan, gw, wan]);
/// assert_eq!(rs.path_delay_us(&path), 60);
/// ```
#[derive(Debug, Default)]
pub struct RouteServer {
    kinds: Vec<NodeKind>,
    adj: Vec<Vec<Edge>>,
}

impl RouteServer {
    /// An empty graph.
    pub fn new() -> RouteServer {
        RouteServer::default()
    }

    /// Add a node.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        NodeId(self.kinds.len() - 1)
    }

    /// Add a bidirectional edge with the given delay and available
    /// bandwidth.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, delay_us: u64, available_bps: u64) {
        self.adj[a.0].push(Edge { to: b.0, delay_us, available_bps });
        self.adj[b.0].push(Edge { to: a.0, delay_us, available_bps });
    }

    /// Reduce available bandwidth along a path (both directions), as a
    /// congram is committed to it.
    pub fn commit_path(&mut self, path: &[NodeId], bps: u64) {
        for w in path.windows(2) {
            for (a, b) in [(w[0].0, w[1].0), (w[1].0, w[0].0)] {
                for e in &mut self.adj[a] {
                    if e.to == b {
                        e.available_bps = e.available_bps.saturating_sub(bps);
                    }
                }
            }
        }
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> Option<NodeKind> {
        self.kinds.get(n.0).copied()
    }

    /// Shortest-delay path from `src` to `dst` using only edges with at
    /// least `required_bps` available (§2.2 "routing based on resource
    /// requirements").
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        required_bps: u64,
    ) -> Result<Vec<NodeId>, RouteError> {
        let n = self.kinds.len();
        if src.0 >= n || dst.0 >= n {
            return Err(RouteError::UnknownNode);
        }
        let mut dist = vec![u64::MAX; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src.0] = 0;
        heap.push(std::cmp::Reverse((0u64, src.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst.0 {
                break;
            }
            for e in &self.adj[u] {
                if e.available_bps < required_bps {
                    continue;
                }
                let nd = d + e.delay_us;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = u;
                    heap.push(std::cmp::Reverse((nd, e.to)));
                }
            }
        }
        if dist[dst.0] == u64::MAX {
            return Err(RouteError::NoRoute);
        }
        let mut path = vec![dst];
        let mut cur = dst.0;
        while cur != src.0 {
            cur = prev[cur];
            path.push(NodeId(cur));
        }
        path.reverse();
        Ok(path)
    }

    /// Total delay along a path.
    pub fn path_delay_us(&self, path: &[NodeId]) -> u64 {
        path.windows(2)
            .map(|w| {
                self.adj[w[0].0]
                    .iter()
                    .find(|e| e.to == w[1].0)
                    .map(|e| e.delay_us)
                    .unwrap_or(u64::MAX)
            })
            .sum()
    }

    /// A multicast tree from `src` to every destination: the union of
    /// bandwidth-feasible shortest paths. Returns the tree's directed
    /// edges `(parent, child)`.
    pub fn multicast_tree(
        &self,
        src: NodeId,
        dsts: &[NodeId],
        required_bps: u64,
    ) -> Result<Vec<(NodeId, NodeId)>, RouteError> {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for &d in dsts {
            let path = self.route(src, d, required_bps)?;
            for w in path.windows(2) {
                let e = (w[0], w[1]);
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// src(0) - g1(1) - mid(2) - g2(3) - dst(4), plus a slow bypass
    /// edge src-dst with little bandwidth.
    fn graph() -> (RouteServer, Vec<NodeId>) {
        let mut rs = RouteServer::new();
        let n: Vec<NodeId> = vec![
            rs.add_node(NodeKind::Network),
            rs.add_node(NodeKind::Gateway),
            rs.add_node(NodeKind::Network),
            rs.add_node(NodeKind::Gateway),
            rs.add_node(NodeKind::Network),
        ];
        rs.add_edge(n[0], n[1], 10, 100_000_000);
        rs.add_edge(n[1], n[2], 10, 100_000_000);
        rs.add_edge(n[2], n[3], 10, 100_000_000);
        rs.add_edge(n[3], n[4], 10, 100_000_000);
        rs.add_edge(n[0], n[4], 1000, 1_000_000); // slow, thin bypass
        (rs, n)
    }

    #[test]
    fn shortest_delay_wins() {
        let (rs, n) = graph();
        let path = rs.route(n[0], n[4], 10_000_000).unwrap();
        assert_eq!(path, vec![n[0], n[1], n[2], n[3], n[4]]);
        assert_eq!(rs.path_delay_us(&path), 40);
    }

    #[test]
    fn bandwidth_filter_forces_detour() {
        let (rs, n) = graph();
        // Only the thin bypass can't carry 10 Mb/s; a 0.5 Mb/s flow may
        // take whichever is shorter in delay — still the 4-hop path (40
        // < 1000). But if the main path lacks bandwidth, the bypass is
        // chosen:
        let mut rs2 = rs;
        rs2.commit_path(&[n[0], n[1]], 100_000_000); // exhaust first hop
        let path = rs2.route(n[0], n[4], 500_000).unwrap();
        assert_eq!(path, vec![n[0], n[4]], "only the bypass remains feasible");
    }

    #[test]
    fn no_route_when_bandwidth_unavailable() {
        let (rs, n) = graph();
        assert_eq!(rs.route(n[0], n[4], 200_000_000), Err(RouteError::NoRoute));
    }

    #[test]
    fn unknown_node_rejected() {
        let (rs, n) = graph();
        assert_eq!(rs.route(n[0], NodeId(99), 0), Err(RouteError::UnknownNode));
    }

    #[test]
    fn trivial_route_to_self() {
        let (rs, n) = graph();
        assert_eq!(rs.route(n[2], n[2], 0).unwrap(), vec![n[2]]);
    }

    #[test]
    fn commit_reduces_capacity() {
        let (mut rs, n) = graph();
        let path = rs.route(n[0], n[4], 60_000_000).unwrap();
        rs.commit_path(&path, 60_000_000);
        // A second 60 Mb/s congram no longer fits anywhere.
        assert_eq!(rs.route(n[0], n[4], 60_000_000), Err(RouteError::NoRoute));
        // A 30 Mb/s one still does.
        assert!(rs.route(n[0], n[4], 30_000_000).is_ok());
    }

    #[test]
    fn multicast_tree_shares_trunk() {
        let mut rs = RouteServer::new();
        // src - a - b, with leaves c and d off b.
        let src = rs.add_node(NodeKind::Network);
        let a = rs.add_node(NodeKind::Gateway);
        let b = rs.add_node(NodeKind::Gateway);
        let c = rs.add_node(NodeKind::Network);
        let d = rs.add_node(NodeKind::Network);
        rs.add_edge(src, a, 10, 1_000_000);
        rs.add_edge(a, b, 10, 1_000_000);
        rs.add_edge(b, c, 10, 1_000_000);
        rs.add_edge(b, d, 10, 1_000_000);
        let tree = rs.multicast_tree(src, &[c, d], 100_000).unwrap();
        // Trunk edges appear once: src-a, a-b, b-c, b-d = 4 edges, not 6.
        assert_eq!(tree.len(), 4);
        assert!(tree.contains(&(src, a)));
        assert!(tree.contains(&(b, c)));
        assert!(tree.contains(&(b, d)));
    }

    #[test]
    fn multicast_fails_if_any_leaf_unreachable() {
        let (rs, n) = graph();
        let mut rs = rs;
        let island = rs.add_node(NodeKind::Network);
        assert_eq!(rs.multicast_tree(n[0], &[n[4], island], 1_000), Err(RouteError::NoRoute));
    }

    #[test]
    fn node_kinds_recorded() {
        let (rs, n) = graph();
        assert_eq!(rs.kind(n[0]), Some(NodeKind::Network));
        assert_eq!(rs.kind(n[1]), Some(NodeKind::Gateway));
        assert_eq!(rs.kind(NodeId(99)), None);
    }
}
