//! Congram lifecycles and ICN management (§2.4, §6.1).
//!
//! A congram traverses three MCHIP phases: "congram set up, data
//! transfer, and congram termination" (§4.1), plus reconfiguration for
//! survivability (§2.4). Each hop identifies the congram by a 2-octet
//! internet channel number (ICN); "at each hop the input ICN is mapped
//! to an output ICN" (§6.1). The [`CongramManager`] is the per-gateway
//! software entity that allocates ICNs, drives the state machines, and
//! produces the translation pairs the MPP's ICXT tables are programmed
//! with.

use gw_sim::time::SimTime;
use gw_wire::mchip::Icn;

/// End-to-end congram identity (unique per originating MCHIP entity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CongramId(pub u32);

/// The two congram types of §2.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CongramKind {
    /// User congram: "a soft connection — it requires setup by the user
    /// (at some cost), and once the required data transfer is complete,
    /// it needs to be terminated."
    UCon,
    /// Persistent internet congram: long lived, system-created,
    /// multiplexes traffic and carries data for UCons being set up.
    PICon,
}

/// The resource description a congram carries (statistically bound
/// resources, §2.4; parametric network descriptions, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Peak rate, bits per second.
    pub peak_bps: u64,
    /// Mean rate, bits per second.
    pub mean_bps: u64,
    /// Maximum burst, octets.
    pub burst_octets: u32,
}

impl FlowSpec {
    /// A constant-rate flow.
    pub fn cbr(bps: u64) -> FlowSpec {
        FlowSpec { peak_bps: bps, mean_bps: bps, burst_octets: 0 }
    }
}

/// Congram lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongramState {
    /// Setup requested, awaiting confirmation.
    SetupPending,
    /// Data transfer phase.
    Established,
    /// Path reconfiguration in progress (data may continue on the old
    /// path — plesio-reliability, §2.4).
    Reconfiguring,
    /// Teardown requested, awaiting acknowledgment.
    Closing,
    /// Terminated (or rejected).
    Closed,
}

/// Events the manager reports to its caller (the NPE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongramEvent {
    /// The congram reached the data-transfer phase.
    Established(CongramId),
    /// Setup failed.
    Rejected(CongramId),
    /// The congram terminated.
    Closed(CongramId),
    /// Reconfiguration completed; translation updated.
    Reconfigured(CongramId),
    /// A PICon missed enough keepalives to be declared dead.
    KeepaliveExpired(CongramId),
}

/// Errors from manager operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongramError {
    /// Unknown congram id.
    Unknown,
    /// The operation is invalid in the congram's current state.
    BadState,
    /// The 16-bit ICN space on this interface is exhausted.
    IcnExhausted,
}

/// One established congram's bookkeeping.
#[derive(Debug, Clone)]
pub struct CongramRecord {
    /// Identity.
    pub id: CongramId,
    /// UCon or PICon.
    pub kind: CongramKind,
    /// Resources.
    pub flow: FlowSpec,
    /// Lifecycle state.
    pub state: CongramState,
    /// ICN on the inbound interface (what arriving frames carry).
    pub in_icn: Icn,
    /// ICN on the outbound interface (what forwarded frames carry).
    pub out_icn: Icn,
    /// Multipoint flag.
    pub multipoint: bool,
    /// Last keepalive seen (PICons only).
    pub last_keepalive: SimTime,
}

/// Allocates ICNs on one interface (one per direction per link).
#[derive(Debug, Default)]
pub struct IcnAllocator {
    next: u16,
    free: Vec<u16>,
}

impl IcnAllocator {
    /// Allocate the lowest available ICN.
    pub fn alloc(&mut self) -> Result<Icn, CongramError> {
        if let Some(v) = self.free.pop() {
            return Ok(Icn(v));
        }
        if self.next == u16::MAX {
            return Err(CongramError::IcnExhausted);
        }
        let v = self.next;
        self.next += 1;
        Ok(Icn(v))
    }

    /// Return an ICN to the pool.
    pub fn release(&mut self, icn: Icn) {
        self.free.push(icn.0);
    }
}

/// Sentinel in [`CongramManager::by_in_icn`] for an unmapped ICN.
const NO_CONGRAM: u32 = u32::MAX;

/// The per-gateway congram manager (runs on the NPE).
///
/// Ids are allocated sequentially, so records live in a dense
/// id-indexed table; the inbound-ICN map is likewise a direct-indexed
/// table (ICNs are allocated lowest-first, keeping it compact). Both
/// lookups on the control path are O(1) with no hashing.
#[derive(Debug, Default)]
pub struct CongramManager {
    records: Vec<Option<CongramRecord>>,
    in_alloc: IcnAllocator,
    out_alloc: IcnAllocator,
    by_in_icn: Vec<u32>,
    next_id: u32,
    /// Congrams in any live (non-`Closed`) state, maintained inline.
    open: usize,
    /// Live PICons, so the keepalive scan can skip entirely when none
    /// exist (the common case on a pure data-path gateway).
    picons: usize,
    /// PICon keepalive interval; a PICon is declared dead after missing
    /// three intervals (a conventional choice; the MCHIP companion spec
    /// would pin this).
    pub keepalive_interval: SimTime,
}

impl CongramManager {
    /// A manager with the default 1-second keepalive interval.
    pub fn new() -> CongramManager {
        CongramManager { keepalive_interval: SimTime::from_secs(1), ..Default::default() }
    }

    fn rec(&self, id: CongramId) -> Option<&CongramRecord> {
        self.records.get(id.0 as usize).and_then(|r| r.as_ref())
    }

    fn rec_mut(&mut self, id: CongramId) -> Option<&mut CongramRecord> {
        self.records.get_mut(id.0 as usize).and_then(|r| r.as_mut())
    }

    fn map_in_icn(&mut self, icn: Icn, id: CongramId) {
        let i = icn.0 as usize;
        if self.by_in_icn.len() <= i {
            self.by_in_icn.resize(i + 1, NO_CONGRAM);
        }
        self.by_in_icn[i] = id.0;
    }

    fn unmap_in_icn(&mut self, icn: Icn) {
        if let Some(slot) = self.by_in_icn.get_mut(icn.0 as usize) {
            *slot = NO_CONGRAM;
        }
    }

    /// A congram left the live set: release its ICNs and drop it from
    /// the running counters.
    fn close_record(&mut self, id: CongramId) {
        let r = self.rec_mut(id).expect("caller checked");
        r.state = CongramState::Closed;
        let (i, o, kind) = (r.in_icn, r.out_icn, r.kind);
        self.unmap_in_icn(i);
        self.in_alloc.release(i);
        self.out_alloc.release(o);
        self.open -= 1;
        if kind == CongramKind::PICon {
            self.picons -= 1;
        }
    }

    /// Begin setting up a congram through this gateway: allocates both
    /// ICNs and enters `SetupPending`.
    pub fn begin_setup(
        &mut self,
        kind: CongramKind,
        flow: FlowSpec,
        multipoint: bool,
        now: SimTime,
    ) -> Result<CongramId, CongramError> {
        let in_icn = self.in_alloc.alloc()?;
        let out_icn = match self.out_alloc.alloc() {
            Ok(icn) => icn,
            Err(e) => {
                self.in_alloc.release(in_icn);
                return Err(e);
            }
        };
        let id = CongramId(self.next_id);
        self.next_id += 1;
        debug_assert_eq!(self.records.len() as u32, id.0);
        self.records.push(Some(CongramRecord {
            id,
            kind,
            flow,
            state: CongramState::SetupPending,
            in_icn,
            out_icn,
            multipoint,
            last_keepalive: now,
        }));
        self.map_in_icn(in_icn, id);
        self.open += 1;
        if kind == CongramKind::PICon {
            self.picons += 1;
        }
        Ok(id)
    }

    /// Setup confirmed end to end: data transfer may begin.
    pub fn confirm(&mut self, id: CongramId) -> Result<CongramEvent, CongramError> {
        let r = self.rec_mut(id).ok_or(CongramError::Unknown)?;
        if r.state != CongramState::SetupPending {
            return Err(CongramError::BadState);
        }
        r.state = CongramState::Established;
        Ok(CongramEvent::Established(id))
    }

    /// Setup rejected: release ICNs.
    pub fn reject(&mut self, id: CongramId) -> Result<CongramEvent, CongramError> {
        let r = self.rec(id).ok_or(CongramError::Unknown)?;
        if r.state != CongramState::SetupPending {
            return Err(CongramError::BadState);
        }
        self.close_record(id);
        Ok(CongramEvent::Rejected(id))
    }

    /// Begin teardown.
    pub fn begin_teardown(&mut self, id: CongramId) -> Result<(), CongramError> {
        let r = self.rec_mut(id).ok_or(CongramError::Unknown)?;
        match r.state {
            CongramState::Established | CongramState::Reconfiguring => {
                r.state = CongramState::Closing;
                Ok(())
            }
            _ => Err(CongramError::BadState),
        }
    }

    /// Teardown acknowledged: release ICNs.
    pub fn complete_teardown(&mut self, id: CongramId) -> Result<CongramEvent, CongramError> {
        let r = self.rec(id).ok_or(CongramError::Unknown)?;
        if r.state != CongramState::Closing {
            return Err(CongramError::BadState);
        }
        self.close_record(id);
        Ok(CongramEvent::Closed(id))
    }

    /// Begin a path reconfiguration (survivability, §2.4). Data transfer
    /// continues — the congram is plesio-reliable, so frames in flight
    /// on the old path may be lost without protocol violation.
    pub fn begin_reconfigure(&mut self, id: CongramId) -> Result<(), CongramError> {
        let r = self.rec_mut(id).ok_or(CongramError::Unknown)?;
        if r.state != CongramState::Established {
            return Err(CongramError::BadState);
        }
        r.state = CongramState::Reconfiguring;
        Ok(())
    }

    /// Complete a reconfiguration with a new outbound ICN (the new path
    /// assigned a fresh hop-by-hop channel).
    pub fn complete_reconfigure(
        &mut self,
        id: CongramId,
    ) -> Result<(CongramEvent, Icn), CongramError> {
        let new_out = self.out_alloc.alloc()?;
        let r = self.rec_mut(id).ok_or(CongramError::Unknown)?;
        if r.state != CongramState::Reconfiguring {
            self.out_alloc.release(new_out);
            return Err(CongramError::BadState);
        }
        let old = r.out_icn;
        r.out_icn = new_out;
        r.state = CongramState::Established;
        self.out_alloc.release(old);
        Ok((CongramEvent::Reconfigured(id), new_out))
    }

    /// Record a keepalive on a PICon.
    pub fn keepalive(&mut self, id: CongramId, now: SimTime) -> Result<(), CongramError> {
        let r = self.rec_mut(id).ok_or(CongramError::Unknown)?;
        r.last_keepalive = now;
        Ok(())
    }

    /// Scan PICons for missed keepalives (3 intervals). With no live
    /// PICons this is a counter check — data-path-only gateways pay
    /// nothing per housekeeping tick.
    pub fn scan_keepalives(&mut self, now: SimTime) -> Vec<CongramEvent> {
        if self.picons == 0 {
            return Vec::new();
        }
        let deadline = SimTime::from_ns(self.keepalive_interval.as_ns() * 3);
        let mut out = Vec::new();
        let expired: Vec<CongramId> = self
            .records
            .iter()
            .flatten()
            .filter(|r| {
                r.kind == CongramKind::PICon
                    && r.state == CongramState::Established
                    && now.saturating_sub(r.last_keepalive) >= deadline
            })
            .map(|r| r.id)
            .collect();
        for id in expired {
            // A dead PICon closes immediately (there is no peer to ack).
            self.close_record(id);
            out.push(CongramEvent::KeepaliveExpired(id));
        }
        out
    }

    /// Look up a congram record.
    pub fn get(&self, id: CongramId) -> Option<&CongramRecord> {
        self.rec(id)
    }

    /// Resolve an inbound ICN to its congram.
    pub fn by_in_icn(&self, icn: Icn) -> Option<&CongramRecord> {
        let id = *self.by_in_icn.get(icn.0 as usize)?;
        if id == NO_CONGRAM {
            return None;
        }
        self.rec(CongramId(id))
    }

    /// The `(in ICN, out ICN)` translation pairs for every congram in
    /// data-transfer phase — exactly what the NPE programs into the
    /// MPP's ICXT tables (§6.2 "MPP initialization frames are used to
    /// update the ICXT-F and ICXT-A").
    pub fn active_translations(&self) -> Vec<(Icn, Icn)> {
        let mut v: Vec<(Icn, Icn)> = self
            .records
            .iter()
            .flatten()
            .filter(|r| matches!(r.state, CongramState::Established | CongramState::Reconfiguring))
            .map(|r| (r.in_icn, r.out_icn))
            .collect();
        v.sort();
        v
    }

    /// Congrams in any live state — a running counter, not a scan.
    pub fn open_count(&self) -> usize {
        self.open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> CongramManager {
        CongramManager::new()
    }

    #[test]
    fn ucon_full_lifecycle() {
        let mut m = mgr();
        let id =
            m.begin_setup(CongramKind::UCon, FlowSpec::cbr(64_000), false, SimTime::ZERO).unwrap();
        assert_eq!(m.get(id).unwrap().state, CongramState::SetupPending);
        assert_eq!(m.confirm(id).unwrap(), CongramEvent::Established(id));
        assert_eq!(m.get(id).unwrap().state, CongramState::Established);
        m.begin_teardown(id).unwrap();
        assert_eq!(m.complete_teardown(id).unwrap(), CongramEvent::Closed(id));
        assert_eq!(m.get(id).unwrap().state, CongramState::Closed);
    }

    #[test]
    fn rejected_setup_releases_icns() {
        let mut m = mgr();
        let a = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        let a_icns = (m.get(a).unwrap().in_icn, m.get(a).unwrap().out_icn);
        m.reject(a).unwrap();
        let b = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        // Freed ICNs are reused.
        assert_eq!((m.get(b).unwrap().in_icn, m.get(b).unwrap().out_icn), a_icns);
    }

    #[test]
    fn bad_state_transitions_rejected() {
        let mut m = mgr();
        let id = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        assert_eq!(m.begin_teardown(id), Err(CongramError::BadState));
        m.confirm(id).unwrap();
        assert_eq!(m.confirm(id), Err(CongramError::BadState));
        assert_eq!(m.reject(id), Err(CongramError::BadState));
        assert_eq!(m.complete_teardown(id), Err(CongramError::BadState));
        assert_eq!(m.confirm(CongramId(999)), Err(CongramError::Unknown));
    }

    #[test]
    fn translations_cover_established_only() {
        let mut m = mgr();
        let a = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        let b = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        m.confirm(a).unwrap();
        // b still pending: not in the translation set.
        let t = m.active_translations();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], (m.get(a).unwrap().in_icn, m.get(a).unwrap().out_icn));
        let _ = b;
    }

    #[test]
    fn distinct_congrams_distinct_icns() {
        let mut m = mgr();
        let ids: Vec<_> = (0..100)
            .map(|_| {
                m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap()
            })
            .collect();
        let mut in_icns: Vec<Icn> = ids.iter().map(|&id| m.get(id).unwrap().in_icn).collect();
        in_icns.sort();
        in_icns.dedup();
        assert_eq!(in_icns.len(), 100);
    }

    #[test]
    fn by_in_icn_resolves() {
        let mut m = mgr();
        let id = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        let icn = m.get(id).unwrap().in_icn;
        assert_eq!(m.by_in_icn(icn).unwrap().id, id);
        m.confirm(id).unwrap();
        m.begin_teardown(id).unwrap();
        m.complete_teardown(id).unwrap();
        assert!(m.by_in_icn(icn).is_none());
    }

    #[test]
    fn reconfiguration_swaps_out_icn() {
        let mut m = mgr();
        let id = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        m.confirm(id).unwrap();
        let old_out = m.get(id).unwrap().out_icn;
        m.begin_reconfigure(id).unwrap();
        assert_eq!(m.get(id).unwrap().state, CongramState::Reconfiguring);
        // Still translating during reconfiguration (plesio-reliability).
        assert_eq!(m.active_translations().len(), 1);
        let (ev, new_out) = m.complete_reconfigure(id).unwrap();
        assert_eq!(ev, CongramEvent::Reconfigured(id));
        assert_ne!(new_out, old_out);
        assert_eq!(m.get(id).unwrap().state, CongramState::Established);
    }

    #[test]
    fn picon_keepalive_expiry() {
        let mut m = mgr();
        let p = m
            .begin_setup(CongramKind::PICon, FlowSpec::cbr(1_000_000), true, SimTime::ZERO)
            .unwrap();
        m.confirm(p).unwrap();
        let u = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        m.confirm(u).unwrap();
        // Keepalive at 1s keeps it alive through 3.9s.
        m.keepalive(p, SimTime::from_secs(1)).unwrap();
        assert!(m.scan_keepalives(SimTime::from_ms(3900)).is_empty());
        // At 4s, three intervals have passed since the last keepalive.
        let evs = m.scan_keepalives(SimTime::from_secs(4));
        assert_eq!(evs, vec![CongramEvent::KeepaliveExpired(p)]);
        assert_eq!(m.get(p).unwrap().state, CongramState::Closed);
        // UCons are unaffected by keepalive scanning.
        assert_eq!(m.get(u).unwrap().state, CongramState::Established);
    }

    #[test]
    fn open_count_tracks_live_congrams() {
        let mut m = mgr();
        let a = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        let b = m.begin_setup(CongramKind::UCon, FlowSpec::cbr(1), false, SimTime::ZERO).unwrap();
        assert_eq!(m.open_count(), 2);
        m.reject(b).unwrap();
        assert_eq!(m.open_count(), 1);
        m.confirm(a).unwrap();
        m.begin_teardown(a).unwrap();
        m.complete_teardown(a).unwrap();
        assert_eq!(m.open_count(), 0);
    }

    #[test]
    fn allocator_exhaustion_reported() {
        let mut a = IcnAllocator { next: u16::MAX - 1, free: vec![] };
        assert!(a.alloc().is_ok());
        assert_eq!(a.alloc(), Err(CongramError::IcnExhausted));
        a.release(Icn(5));
        assert_eq!(a.alloc(), Ok(Icn(5)));
    }
}
