//! The per-network resource manager of §2.3.
//!
//! "A simple but effective approach is to designate a directly connected
//! gateway to serve as a resource manager of the network, that is the
//! gateway is responsible on behalf of the network for keeping track of
//! resource usage of active congrams, and accepting a new congram only
//! if there are resources to meet the congram's performance needs."
//!
//! For the FDDI side this models the synchronous-bandwidth pool: the
//! gateway admits congrams against the ring's schedulable capacity
//! (what the TTRT negotiation leaves for synchronous allocations).
//! Experiment E11 compares admission-controlled operation against a
//! manager that admits everything.

use crate::congram::{CongramId, FlowSpec};
use std::collections::HashMap;

/// The outcome of an admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admitted; resources reserved.
    Admitted,
    /// Refused: committed + demand would exceed capacity.
    Refused {
        /// Bits per second available at refusal time.
        available_bps: u64,
    },
}

/// Tracks resource commitments of active congrams on one network.
#[derive(Debug)]
pub struct ResourceManager {
    capacity_bps: u64,
    committed_bps: u64,
    reservations: HashMap<CongramId, u64>,
    admitted: u64,
    refused: u64,
    /// When true, every request is admitted regardless of capacity —
    /// the no-resource-management baseline for E11.
    pub bypass: bool,
}

impl ResourceManager {
    /// A manager over `capacity_bps` of schedulable network capacity.
    pub fn new(capacity_bps: u64) -> ResourceManager {
        ResourceManager {
            capacity_bps,
            committed_bps: 0,
            reservations: HashMap::new(),
            admitted: 0,
            refused: 0,
            bypass: false,
        }
    }

    /// The network capacity this manager guards.
    pub fn capacity_bps(&self) -> u64 {
        self.capacity_bps
    }

    /// Currently committed bandwidth.
    pub fn committed_bps(&self) -> u64 {
        self.committed_bps
    }

    /// Available (uncommitted) bandwidth.
    pub fn available_bps(&self) -> u64 {
        self.capacity_bps.saturating_sub(self.committed_bps)
    }

    /// Fraction of capacity committed, 0.0–1.0+ (may exceed 1 in
    /// bypass mode — that is the point of E11).
    pub fn utilization(&self) -> f64 {
        if self.capacity_bps == 0 {
            return 0.0;
        }
        self.committed_bps as f64 / self.capacity_bps as f64
    }

    /// Would this flow be admitted right now?
    pub fn would_admit(&self, flow: &FlowSpec) -> bool {
        self.bypass || self.committed_bps + flow.peak_bps <= self.capacity_bps
    }

    /// Request admission for a congram.
    pub fn admit(&mut self, id: CongramId, flow: &FlowSpec) -> AdmitDecision {
        if !self.would_admit(flow) {
            self.refused += 1;
            return AdmitDecision::Refused { available_bps: self.available_bps() };
        }
        self.committed_bps += flow.peak_bps;
        self.reservations.insert(id, flow.peak_bps);
        self.admitted += 1;
        AdmitDecision::Admitted
    }

    /// Release a congram's reservation (teardown, rejection upstream,
    /// keepalive expiry).
    pub fn release(&mut self, id: CongramId) {
        if let Some(bps) = self.reservations.remove(&id) {
            self.committed_bps = self.committed_bps.saturating_sub(bps);
        }
    }

    /// Number of active reservations.
    pub fn active(&self) -> usize {
        self.reservations.len()
    }

    /// `(admitted, refused)` totals.
    pub fn decisions(&self) -> (u64, u64) {
        (self.admitted, self.refused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(mbps: u64) -> FlowSpec {
        FlowSpec::cbr(mbps * 1_000_000)
    }

    #[test]
    fn admits_until_capacity() {
        let mut rm = ResourceManager::new(100_000_000);
        for i in 0..10 {
            assert_eq!(rm.admit(CongramId(i), &flow(10)), AdmitDecision::Admitted);
        }
        assert_eq!(rm.admit(CongramId(10), &flow(10)), AdmitDecision::Refused { available_bps: 0 });
        assert_eq!(rm.active(), 10);
        assert_eq!(rm.decisions(), (10, 1));
        assert!((rm.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn release_restores_capacity() {
        let mut rm = ResourceManager::new(50_000_000);
        rm.admit(CongramId(1), &flow(50));
        assert!(!rm.would_admit(&flow(1)));
        rm.release(CongramId(1));
        assert_eq!(rm.available_bps(), 50_000_000);
        assert_eq!(rm.admit(CongramId(2), &flow(50)), AdmitDecision::Admitted);
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut rm = ResourceManager::new(10);
        rm.release(CongramId(99));
        assert_eq!(rm.committed_bps(), 0);
    }

    #[test]
    fn refusal_reports_remaining() {
        let mut rm = ResourceManager::new(100_000_000);
        rm.admit(CongramId(1), &flow(70));
        match rm.admit(CongramId(2), &flow(40)) {
            AdmitDecision::Refused { available_bps } => assert_eq!(available_bps, 30_000_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exact_fit_admitted() {
        let mut rm = ResourceManager::new(100);
        assert_eq!(rm.admit(CongramId(1), &FlowSpec::cbr(100)), AdmitDecision::Admitted);
        assert_eq!(rm.available_bps(), 0);
    }

    #[test]
    fn bypass_overcommits() {
        let mut rm = ResourceManager::new(100_000_000);
        rm.bypass = true;
        for i in 0..20 {
            assert_eq!(rm.admit(CongramId(i), &flow(10)), AdmitDecision::Admitted);
        }
        assert!(rm.utilization() > 1.9, "bypass mode admits past capacity");
    }

    #[test]
    fn zero_capacity_refuses_everything_nonzero() {
        let mut rm = ResourceManager::new(0);
        assert!(matches!(rm.admit(CongramId(1), &flow(1)), AdmitDecision::Refused { .. }));
        assert_eq!(rm.utilization(), 0.0);
        // A zero-rate flow trivially fits.
        assert_eq!(rm.admit(CongramId(2), &FlowSpec::cbr(0)), AdmitDecision::Admitted);
    }
}
