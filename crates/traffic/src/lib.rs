//! Application workload generators for the gateway simulation study.
//!
//! §7 commits to quantifying gateway performance "with various
//! application traffic patterns"; §1 and §3 name the applications both
//! networks target: "digitized voice, full motion video, and
//! interactive imaging for scientific and business applications", plus
//! classical datagram traffic. This crate provides those patterns as
//! deterministic arrival-process generators:
//!
//! * [`CbrSource`] — constant bit rate (64 kb/s voice, or any CBR).
//! * [`OnOffSource`] — bursty variable bit rate with exponentially
//!   distributed on/off periods (motion video, compressed).
//! * [`PoissonSource`] — classical datagram traffic.
//! * [`BulkSource`] — a finite back-to-back transfer (file/bulk data).
//! * [`ImagingSource`] — periodic multi-frame bursts (interactive
//!   imaging: a full image every interaction).
//!
//! Each source yields [`FrameArrival`]s one at a time from its own view
//! of the clock; [`merge`] interleaves several sources into one
//! time-ordered arrival list. All randomness flows from the caller's
//! [`SimRng`], so workloads are reproducible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

use gw_sim::rng::SimRng;
use gw_sim::time::SimTime;

/// One frame arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameArrival {
    /// Arrival time.
    pub at: SimTime,
    /// Frame payload size in octets.
    pub octets: usize,
}

/// An arrival process.
pub trait Source {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<FrameArrival>;

    /// Nominal mean rate in bits per second (for admission requests).
    fn mean_bps(&self) -> u64;

    /// Nominal peak rate in bits per second.
    fn peak_bps(&self) -> u64;
}

/// Constant-bit-rate traffic: fixed-size frames at exact intervals.
#[derive(Debug, Clone)]
pub struct CbrSource {
    rate_bps: u64,
    frame_octets: usize,
    interval: SimTime,
    next_at: SimTime,
}

impl CbrSource {
    /// A CBR stream of `rate_bps` using `frame_octets` frames, starting
    /// at `start`.
    ///
    /// # Panics
    /// Panics if `rate_bps` or `frame_octets` is zero.
    pub fn new(start: SimTime, rate_bps: u64, frame_octets: usize) -> CbrSource {
        assert!(rate_bps > 0 && frame_octets > 0);
        let interval = SimTime::from_ns(frame_octets as u64 * 8 * 1_000_000_000 / rate_bps);
        CbrSource { rate_bps, frame_octets, interval, next_at: start }
    }

    /// 64 kb/s digitized voice: 160-octet frames every 20 ms.
    pub fn voice(start: SimTime) -> CbrSource {
        CbrSource::new(start, 64_000, 160)
    }
}

impl Source for CbrSource {
    fn next_arrival(&mut self, _rng: &mut SimRng) -> Option<FrameArrival> {
        let at = self.next_at;
        self.next_at += self.interval;
        Some(FrameArrival { at, octets: self.frame_octets })
    }

    fn mean_bps(&self) -> u64 {
        self.rate_bps
    }

    fn peak_bps(&self) -> u64 {
        self.rate_bps
    }
}

/// On/off (bursty) traffic: during ON periods frames arrive at the peak
/// rate; OFF periods are silent. Period lengths are exponential.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    peak_bps: u64,
    frame_octets: usize,
    mean_on: SimTime,
    mean_off: SimTime,
    now: SimTime,
    on_until: SimTime,
}

impl OnOffSource {
    /// A bursty source transmitting at `peak_bps` during ON periods of
    /// mean `mean_on`, separated by OFF periods of mean `mean_off`.
    pub fn new(
        start: SimTime,
        peak_bps: u64,
        frame_octets: usize,
        mean_on: SimTime,
        mean_off: SimTime,
    ) -> OnOffSource {
        assert!(peak_bps > 0 && frame_octets > 0);
        OnOffSource { peak_bps, frame_octets, mean_on, mean_off, now: start, on_until: start }
    }

    /// Compressed motion video: 6 Mb/s peak in 10 ms bursts with 30 ms
    /// gaps (≈1.5 Mb/s mean), 1 KiB frames.
    pub fn video(start: SimTime) -> OnOffSource {
        OnOffSource::new(start, 6_000_000, 1024, SimTime::from_ms(10), SimTime::from_ms(30))
    }

    fn frame_interval(&self) -> SimTime {
        SimTime::from_ns(self.frame_octets as u64 * 8 * 1_000_000_000 / self.peak_bps)
    }
}

impl Source for OnOffSource {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<FrameArrival> {
        if self.now >= self.on_until {
            // Draw an OFF gap then an ON burst.
            let off = rng.exponential(self.mean_off.as_ns() as f64) as u64;
            let on = rng.exponential(self.mean_on.as_ns() as f64) as u64;
            self.now += SimTime::from_ns(off);
            self.on_until = self.now + SimTime::from_ns(on.max(1));
        }
        let at = self.now;
        self.now += self.frame_interval();
        Some(FrameArrival { at, octets: self.frame_octets })
    }

    fn mean_bps(&self) -> u64 {
        let on = self.mean_on.as_ns() as f64;
        let off = self.mean_off.as_ns() as f64;
        (self.peak_bps as f64 * on / (on + off)) as u64
    }

    fn peak_bps(&self) -> u64 {
        self.peak_bps
    }
}

/// Poisson datagram traffic: exponential inter-arrivals, fixed frames.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_bps: u64,
    frame_octets: usize,
    now: SimTime,
}

impl PoissonSource {
    /// Datagram traffic averaging `mean_bps` in `frame_octets` frames.
    pub fn new(start: SimTime, mean_bps: u64, frame_octets: usize) -> PoissonSource {
        assert!(mean_bps > 0 && frame_octets > 0);
        PoissonSource { mean_bps, frame_octets, now: start }
    }
}

impl Source for PoissonSource {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<FrameArrival> {
        let mean_gap_ns = self.frame_octets as f64 * 8.0 * 1e9 / self.mean_bps as f64;
        self.now += SimTime::from_ns(rng.exponential(mean_gap_ns) as u64);
        Some(FrameArrival { at: self.now, octets: self.frame_octets })
    }

    fn mean_bps(&self) -> u64 {
        self.mean_bps
    }

    fn peak_bps(&self) -> u64 {
        // Unpoliced datagram traffic can burst to whatever the access
        // link carries; report 4x mean as a conventional envelope.
        self.mean_bps * 4
    }
}

/// A finite bulk transfer: frames back to back at the source rate until
/// `total_octets` have been produced.
#[derive(Debug, Clone)]
pub struct BulkSource {
    rate_bps: u64,
    frame_octets: usize,
    remaining: usize,
    now: SimTime,
}

impl BulkSource {
    /// Transfer `total_octets` at `rate_bps` in `frame_octets` frames.
    pub fn new(
        start: SimTime,
        rate_bps: u64,
        frame_octets: usize,
        total_octets: usize,
    ) -> BulkSource {
        assert!(rate_bps > 0 && frame_octets > 0);
        BulkSource { rate_bps, frame_octets, remaining: total_octets, now: start }
    }
}

impl Source for BulkSource {
    fn next_arrival(&mut self, _rng: &mut SimRng) -> Option<FrameArrival> {
        if self.remaining == 0 {
            return None;
        }
        let octets = self.frame_octets.min(self.remaining);
        self.remaining -= octets;
        let at = self.now;
        self.now += SimTime::from_ns(octets as u64 * 8 * 1_000_000_000 / self.rate_bps);
        Some(FrameArrival { at, octets })
    }

    fn mean_bps(&self) -> u64 {
        self.rate_bps
    }

    fn peak_bps(&self) -> u64 {
        self.rate_bps
    }
}

/// Interactive imaging: every `interval` an image of `image_octets`
/// arrives as a burst of maximum-size frames.
#[derive(Debug, Clone)]
pub struct ImagingSource {
    image_octets: usize,
    frame_octets: usize,
    interval: SimTime,
    burst_spacing: SimTime,
    now: SimTime,
    left_in_image: usize,
}

impl ImagingSource {
    /// An imaging workload: `image_octets` per image, one image per
    /// `interval`, delivered in `frame_octets` frames spaced
    /// `burst_spacing` apart (the sender's access rate).
    pub fn new(
        start: SimTime,
        image_octets: usize,
        frame_octets: usize,
        interval: SimTime,
        burst_spacing: SimTime,
    ) -> ImagingSource {
        assert!(image_octets > 0 && frame_octets > 0);
        ImagingSource {
            image_octets,
            frame_octets,
            interval,
            burst_spacing,
            now: start,
            left_in_image: 0,
        }
    }

    /// A 1-megaoctet medical/scientific image every 2 seconds, in
    /// 4-KiB frames back to back at ~80 Mb/s.
    pub fn standard(start: SimTime) -> ImagingSource {
        ImagingSource::new(start, 1_000_000, 4096, SimTime::from_secs(2), SimTime::from_us(400))
    }
}

impl Source for ImagingSource {
    fn next_arrival(&mut self, _rng: &mut SimRng) -> Option<FrameArrival> {
        if self.left_in_image == 0 {
            self.left_in_image = self.image_octets;
            self.now += self.interval;
        }
        let octets = self.frame_octets.min(self.left_in_image);
        self.left_in_image -= octets;
        let at = self.now;
        self.now += self.burst_spacing;
        Some(FrameArrival { at, octets })
    }

    fn mean_bps(&self) -> u64 {
        (self.image_octets as u64 * 8 * 1_000_000_000) / self.interval.as_ns()
    }

    fn peak_bps(&self) -> u64 {
        (self.frame_octets as u64 * 8 * 1_000_000_000) / self.burst_spacing.as_ns().max(1)
    }
}

/// Generate all arrivals from `source` up to `horizon` (exclusive).
pub fn arrivals_until(
    source: &mut dyn Source,
    rng: &mut SimRng,
    horizon: SimTime,
) -> Vec<FrameArrival> {
    let mut out = Vec::new();
    while let Some(a) = source.next_arrival(rng) {
        if a.at >= horizon {
            break;
        }
        out.push(a);
    }
    out
}

/// Merge several sources' arrivals up to `horizon` into one
/// time-ordered list tagged with the source index.
pub fn merge(
    sources: &mut [Box<dyn Source>],
    rng: &mut SimRng,
    horizon: SimTime,
) -> Vec<(usize, FrameArrival)> {
    let mut all = Vec::new();
    for (i, s) in sources.iter_mut().enumerate() {
        let mut stream_rng = rng.fork(i as u64 + 1);
        for a in arrivals_until(s.as_mut(), &mut stream_rng, horizon) {
            all.push((i, a));
        }
    }
    all.sort_by_key(|&(i, a)| (a.at, i));
    all
}

/// Total offered load in bits per second over `[0, horizon]`.
pub fn offered_bps(arrivals: &[(usize, FrameArrival)], horizon: SimTime) -> f64 {
    let octets: u64 = arrivals.iter().map(|&(_, a)| a.octets as u64).sum();
    octets as f64 * 8.0 / horizon.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_of(source: &mut dyn Source, seed: u64, secs: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        let horizon = SimTime::from_secs(secs);
        let arrivals = arrivals_until(source, &mut rng, horizon);
        let octets: u64 = arrivals.iter().map(|a| a.octets as u64).sum();
        octets as f64 * 8.0 / horizon.as_secs_f64()
    }

    #[test]
    fn cbr_hits_exact_rate() {
        let mut s = CbrSource::new(SimTime::ZERO, 1_000_000, 1250);
        let rate = rate_of(&mut s, 1, 10);
        assert!((rate - 1_000_000.0).abs() / 1_000_000.0 < 0.01, "{rate}");
    }

    #[test]
    fn voice_preset_is_64kbps() {
        let mut s = CbrSource::voice(SimTime::ZERO);
        assert_eq!(s.mean_bps(), 64_000);
        let rate = rate_of(&mut s, 1, 20);
        assert!((rate - 64_000.0).abs() / 64_000.0 < 0.01, "{rate}");
    }

    #[test]
    fn cbr_intervals_are_constant() {
        let mut s = CbrSource::new(SimTime::ZERO, 8_000_000, 1000);
        let mut rng = SimRng::new(2);
        let a: Vec<_> = (0..10).map(|_| s.next_arrival(&mut rng).unwrap()).collect();
        let gap = a[1].at - a[0].at;
        for w in a.windows(2) {
            assert_eq!(w[1].at - w[0].at, gap);
        }
        assert_eq!(gap, SimTime::from_ms(1));
    }

    #[test]
    fn onoff_mean_rate_converges() {
        let mut s = OnOffSource::new(
            SimTime::ZERO,
            8_000_000,
            1000,
            SimTime::from_ms(10),
            SimTime::from_ms(30),
        );
        let expect = s.mean_bps() as f64; // 2 Mb/s
        let rate = rate_of(&mut s, 3, 60);
        assert!((rate - expect).abs() / expect < 0.1, "rate {rate} vs {expect}");
    }

    #[test]
    fn onoff_is_bursty() {
        // During ON periods, instantaneous gaps equal the peak-rate
        // spacing; across OFF periods, gaps are much longer.
        let mut s = OnOffSource::video(SimTime::ZERO);
        let mut rng = SimRng::new(4);
        let arrivals: Vec<_> = (0..5000).map(|_| s.next_arrival(&mut rng).unwrap()).collect();
        let peak_gap = SimTime::from_ns(1024 * 8 * 1_000_000_000 / 6_000_000);
        let mut peak_gaps = 0;
        let mut long_gaps = 0;
        for w in arrivals.windows(2) {
            let gap = w[1].at - w[0].at;
            if gap == peak_gap {
                peak_gaps += 1;
            } else if gap > SimTime::from_ms(1) {
                long_gaps += 1;
            }
        }
        assert!(peak_gaps > 1000, "in-burst arrivals at peak spacing: {peak_gaps}");
        assert!(long_gaps > 20, "off periods present: {long_gaps}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut s = PoissonSource::new(SimTime::ZERO, 5_000_000, 500);
        let rate = rate_of(&mut s, 5, 30);
        assert!((rate - 5e6).abs() / 5e6 < 0.05, "{rate}");
    }

    #[test]
    fn poisson_gaps_vary() {
        let mut s = PoissonSource::new(SimTime::ZERO, 1_000_000, 500);
        let mut rng = SimRng::new(6);
        let a: Vec<_> = (0..100).map(|_| s.next_arrival(&mut rng).unwrap()).collect();
        let gaps: Vec<u64> = a.windows(2).map(|w| (w[1].at - w[0].at).as_ns()).collect();
        let distinct: std::collections::HashSet<_> = gaps.iter().collect();
        assert!(distinct.len() > 90, "exponential gaps should rarely repeat");
    }

    #[test]
    fn bulk_transfers_exact_total_then_ends() {
        let mut s = BulkSource::new(SimTime::ZERO, 10_000_000, 4096, 10_000);
        let mut rng = SimRng::new(7);
        let mut total = 0;
        let mut n = 0;
        while let Some(a) = s.next_arrival(&mut rng) {
            total += a.octets;
            n += 1;
        }
        assert_eq!(total, 10_000);
        assert_eq!(n, 3, "4096 + 4096 + 1808");
        assert!(s.next_arrival(&mut rng).is_none(), "stays exhausted");
    }

    #[test]
    fn imaging_bursts_per_interval() {
        let mut s = ImagingSource::new(
            SimTime::ZERO,
            100_000,
            4096,
            SimTime::from_secs(1),
            SimTime::from_us(100),
        );
        let mut rng = SimRng::new(8);
        let horizon = SimTime::from_secs(3);
        let arrivals = arrivals_until(&mut s, &mut rng, horizon);
        let per_image = 100_000usize.div_ceil(4096);
        // Images at t=1s and t=2s land fully inside [0, 3s).
        assert!(arrivals.len() >= 2 * per_image, "{}", arrivals.len());
        let total: usize = arrivals.iter().map(|a| a.octets).sum();
        assert!(total >= 200_000);
    }

    #[test]
    fn merge_orders_and_tags() {
        let mut sources: Vec<Box<dyn Source>> = vec![
            Box::new(CbrSource::new(SimTime::ZERO, 1_000_000, 100)),
            Box::new(CbrSource::new(SimTime::from_us(133), 1_000_000, 200)),
        ];
        let mut rng = SimRng::new(9);
        let merged = merge(&mut sources, &mut rng, SimTime::from_ms(10));
        assert!(!merged.is_empty());
        for w in merged.windows(2) {
            assert!(w[0].1.at <= w[1].1.at, "time-ordered");
        }
        assert!(merged.iter().any(|&(i, _)| i == 0));
        assert!(merged.iter().any(|&(i, _)| i == 1));
    }

    #[test]
    fn merged_workload_is_deterministic() {
        let run = || {
            let mut sources: Vec<Box<dyn Source>> = vec![
                Box::new(OnOffSource::video(SimTime::ZERO)),
                Box::new(PoissonSource::new(SimTime::ZERO, 2_000_000, 800)),
                Box::new(CbrSource::voice(SimTime::ZERO)),
            ];
            let mut rng = SimRng::new(42);
            merge(&mut sources, &mut rng, SimTime::from_secs(1))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn offered_load_helper() {
        let arrivals = vec![
            (0usize, FrameArrival { at: SimTime::ZERO, octets: 1250 }),
            (0, FrameArrival { at: SimTime::from_ms(500), octets: 1250 }),
        ];
        let bps = offered_bps(&arrivals, SimTime::from_secs(1));
        assert!((bps - 20_000.0).abs() < 1e-6);
    }
}
