// gw-lint: critical-path
//! The segmentation-and-reassembly (SAR) protocol of §5, after Escobar
//! & Partridge's proposal (paper reference \[5\]).
//!
//! The SAR protocol carries higher-level protocol frames (MCHIP data and
//! control frames) across an ATM network in 53-octet cells. Each cell's
//! 48-octet information field holds a 3-octet SAR header and 45 octets
//! of frame data (Figure 5). The paper chooses SAR over MCHIP-level
//! fragmentation because it "requires only 3-byte overhead per cell, and
//! can be conveniently implemented in hardware" (§5.1).
//!
//! * [`mod@segment`] — the Fragmentation Logic's algorithm: split a frame
//!   into cells with increasing sequence numbers, setting the F bit on
//!   the last cell and the C bit on control frames, computing the
//!   CRC-10 on the fly (§5.4).
//! * [`reassemble`] — the Reassembly Logic: per-VC state (two buffers
//!   per connection, expected sequence number, reassembly timer),
//!   sequenced-delivery checking, CRC validation with
//!   buffer-overwrite-on-error, lost-cell detection, and timeout flush
//!   (§5.2–§5.3).
//!
//! Frame sizes recovered from reassembly are a multiple of 45 octets —
//! the SAR header has no length field; the MCHIP header's own length
//! field trims the padding (as the paper's layering implies).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod reassemble;
pub mod segment;

pub use reassemble::{
    ReassembledFrame, Reassembler, ReassemblyConfig, ReassemblyEvent, ReassemblyStats,
};
pub use segment::{segment, segment_cells, MAX_FRAME_CELLS};
