// gw-lint: critical-path
//! Reassembly: the algorithm of the SPP's Reassembly Logic (§5.2–§5.3).
//!
//! The Reassembly Logic keeps, per open VCI, "the start and end
//! addresses of each reassembly buffer, status (idle or busy) of the
//! reassembly buffer, the write pointer, expected next sequence number,
//! and reassembly timer" (§5.3). Two buffers per connection allow a
//! completed frame to be queued toward the FDDI side while the next
//! frame's cells already accumulate.
//!
//! Like the hardware's table memory — the SPP indexes connection state
//! directly by VCI, it does not search for it — the software table here
//! is dense: a 65536-entry VCI→slot index points into a compact slab of
//! per-connection slots, so the per-cell lookup is two array reads with
//! no hashing. Slots are generation-tagged so a VCI retired and reused
//! (congram teardown, then a new connection on the same VCI) can never
//! be confused with its predecessor by in-flight timer entries. Frame
//! buffers are drawn from and recycled to a [`BufPool`], and reassembly
//! deadlines live in a [`TimerWheel`], making
//! [`Reassembler::check_timeouts`] O(expired) instead of O(open VCs).
//!
//! Failure handling follows the paper exactly:
//!
//! * **CRC failure** — "the cell is dropped, and the buffer memory is
//!   overwritten" (§5.2): the write pointer does not advance.
//! * **Lost cell** — detected as an expected/actual sequence mismatch;
//!   "sets an error flag for the corresponding reassembled frame. In the
//!   current version of the gateway design, all such frames are
//!   discarded" (§5.2). The alternative ("this decision will be left to
//!   the MCHIP layer") is available behind
//!   [`ReassemblyConfig::forward_errored_frames`].
//! * **Timeout** — "if the timer for a particular active connection
//!   times out and the last fragment has not arrived, the partially
//!   reassembled frame is forwarded to the MPP" (§5.3).

use gw_sim::time::SimTime;
use gw_sim::timer::{TimerId, TimerWheel};
use gw_wire::atm::Vci;
use gw_wire::pool::{BufPool, PoolStats};
use gw_wire::sar::{SarCell, SAR_PAYLOAD_SIZE};

/// Default reassembly-buffer capacity in cells: a maximum internet frame
/// (4096-octet FDDI data segment less the 8-octet LLC/SNAP header)
/// occupies 91 cells (§5.3).
pub const DEFAULT_BUFFER_CELLS: usize = 91;

/// Sentinel in the VCI→slot index: connection not open.
const NO_SLOT: u32 = u32::MAX;

/// Per-reassembler configuration, programmed by the NPE through
/// initialization frames (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReassemblyConfig {
    /// Capacity of one reassembly buffer, in cells.
    pub buffer_cells: usize,
    /// Reassembly buffers per connection (the paper's design uses 2).
    pub buffers_per_vc: usize,
    /// Reassembly timeout measured from a frame's first cell.
    pub timeout: SimTime,
    /// Forward frames whose error flag is set instead of discarding
    /// them — the future behaviour §5.2 sketches. Default `false`.
    pub forward_errored_frames: bool,
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig {
            buffer_cells: DEFAULT_BUFFER_CELLS,
            buffers_per_vc: 2,
            timeout: SimTime::from_ms(10),
            forward_errored_frames: false,
        }
    }
}

/// A frame handed to the MPP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReassembledFrame {
    /// Connection it arrived on.
    pub vci: Vci,
    /// True when every cell carried the C bit (control frame).
    pub control: bool,
    /// Frame octets — a multiple of 45; the MCHIP length field trims.
    /// Drawn from the reassembler's buffer pool: hand it back with
    /// [`Reassembler::recycle`] once consumed to keep the fast path
    /// allocation-free.
    pub data: Vec<u8>,
    /// Number of cells assembled.
    pub cells: u16,
    /// True when the frame was flushed by the reassembly timer before
    /// its final cell arrived.
    pub partial: bool,
    /// True when a lost or out-of-sequence cell was detected.
    pub errored: bool,
    /// Arrival time of the first cell.
    pub started_at: SimTime,
    /// Completion (or flush) time.
    pub completed_at: SimTime,
}

/// Outcome of offering one cell to the reassembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyEvent {
    /// Cell stored; frame still accumulating.
    Stored,
    /// Final cell arrived; the frame is complete and its buffer is held
    /// (busy) until [`Reassembler::release`].
    Complete(ReassembledFrame),
    /// Final cell arrived but the frame had its error flag set and the
    /// configuration discards such frames (§5.2 current design).
    DiscardedErrored {
        /// Cells the discarded frame had accumulated.
        cells: u16,
        /// True when the sequence errors included a backward jump — the
        /// signature of a misinserted (or replayed) cell rather than a
        /// lost one.
        misinserted: bool,
    },
    /// Cell failed the CRC-10; dropped, buffer overwritten (§5.2).
    CrcDropped,
    /// Cell arrived for a VCI that is not open; dropped.
    UnknownVc,
    /// No idle buffer for a new frame (all still queued toward FDDI);
    /// the cell is dropped and the frame it begins is lost.
    NoBuffer,
    /// Cell would overflow the reassembly buffer; dropped, error flagged.
    Overflow,
}

/// Running totals the SUPERNET-style status registers expose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Cells accepted and stored.
    pub cells_stored: u64,
    /// Frames completed and forwarded.
    pub frames_complete: u64,
    /// Cells dropped for CRC failure.
    pub crc_drops: u64,
    /// Sequence-mismatch (lost cell) detections.
    pub seq_errors: u64,
    /// Sequence mismatches that jumped backward — a cell from the past,
    /// i.e. a misinserted cell from a foreign VC (the classic AAL
    /// hazard: a header bit-flip pattern the HEC cannot catch) or a
    /// duplicated cell replayed on its own VC. Counted within
    /// [`ReassemblyStats::seq_errors`].
    pub seq_misinserts: u64,
    /// Frames discarded because their error flag was set.
    pub frames_discarded: u64,
    /// Frames flushed by the reassembly timer.
    pub timeouts: u64,
    /// Cells dropped because no buffer was idle.
    pub no_buffer_drops: u64,
    /// Cells dropped for buffer overflow.
    pub overflow_drops: u64,
    /// Cells dropped for unknown VCI.
    pub unknown_vc_drops: u64,
    /// Cells leaving in completed frames — conservation disposition of
    /// [`ReassemblyStats::cells_stored`], together with the three
    /// counters below and the live occupancy.
    pub cells_completed: u64,
    /// Cells freed when an errored frame was discarded.
    pub cells_discarded: u64,
    /// Cells leaving in timer-flushed partial frames.
    pub cells_flushed: u64,
    /// Cells freed by [`Reassembler::close_vc`] (teardown/quarantine).
    pub cells_closed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufState {
    Idle,
    Assembling,
    /// Complete frame awaiting release (queued toward the FDDI side).
    Queued,
}

#[derive(Debug)]
struct Buffer {
    state: BufState,
    data: Vec<u8>,
    expected_seq: u16,
    control: bool,
    errored: bool,
    /// A sequence error on this frame carried the misinsertion
    /// signature: the expected sequence resumed after a jump.
    misinserted: bool,
    /// After a sequence jump, the number this frame's own stream would
    /// resume at if the jumped cell was a foreign intruder. Loss never
    /// comes back to it; a misinserted cell's victim stream does.
    resume_seq: Option<u16>,
    started_at: SimTime,
    deadline: SimTime,
    /// Armed while `state == Assembling`.
    timer: Option<TimerId>,
}

impl Buffer {
    /// A buffer backed by pool memory — the hardware's fixed reassembly
    /// memory (§5.3). The per-cell write path never grows the
    /// allocation.
    fn new(data: Vec<u8>) -> Buffer {
        Buffer {
            state: BufState::Idle,
            data,
            expected_seq: 0,
            control: false,
            errored: false,
            misinserted: false,
            resume_seq: None,
            started_at: SimTime::ZERO,
            deadline: SimTime::ZERO,
            timer: None,
        }
    }

    fn reset(&mut self) {
        self.state = BufState::Idle;
        self.data.clear();
        self.expected_seq = 0;
        self.control = false;
        self.errored = false;
        self.misinserted = false;
        self.resume_seq = None;
        self.timer = None;
    }

    fn cells(&self) -> u16 {
        (self.data.len() / SAR_PAYLOAD_SIZE) as u16
    }
}

/// One connection's reassembly state in the dense slot slab.
#[derive(Debug)]
struct VcSlot {
    /// Owning VCI while open (for reverse lookup on timer expiry).
    vci: Vci,
    /// Bumped every time the slot is retired, so references from a
    /// previous tenancy (timer entries, external handles) are
    /// recognisably stale.
    generation: u32,
    open: bool,
    timeout: SimTime,
    buffers: Vec<Buffer>,
    /// Index of the buffer currently assembling, if any.
    current: Option<u8>,
}

/// Identifies one buffer of one slot tenancy in the timer wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerKey {
    slot: u32,
    generation: u32,
    buf: u8,
}

/// The per-VC reassembly engine of the SPP (§5.3).
///
/// ```
/// use gw_sar::{segment, Reassembler, ReassemblyConfig, ReassemblyEvent};
/// use gw_sim::time::SimTime;
/// use gw_wire::atm::Vci;
///
/// let mut r = Reassembler::new(ReassemblyConfig::default());
/// r.open_vc(Vci(1));
/// let frame = vec![0xAB; 100];
/// let mut out = None;
/// for cell in segment(&frame, false).unwrap() {
///     if let ReassemblyEvent::Complete(f) = r.push(SimTime::ZERO, Vci(1), cell.as_bytes()) {
///         out = Some(f);
///     }
/// }
/// assert_eq!(&out.unwrap().data[..100], &frame[..]);
/// ```
#[derive(Debug)]
pub struct Reassembler {
    config: ReassemblyConfig,
    /// Direct VCI→slot index, 65536 entries ([`NO_SLOT`] when closed) —
    /// the software shape of the hardware's VCI-indexed table memory.
    vci_index: Box<[u32]>,
    slots: Vec<VcSlot>,
    free_slots: Vec<u32>,
    open: usize,
    /// Running cell occupancy across all buffers, maintained inline so
    /// gauges never scan the table.
    occupancy: usize,
    timers: TimerWheel<TimerKey>,
    /// Scratch for [`TimerWheel::poll`], reused across calls.
    expired: Vec<(SimTime, TimerKey)>,
    /// Recycled frame-data buffers.
    pool: BufPool,
    stats: ReassemblyStats,
}

impl Reassembler {
    /// Create with the given configuration.
    // gw-lint: setup-path — sizes the dense VCI table, slab, and buffer pool once at construction
    pub fn new(config: ReassemblyConfig) -> Reassembler {
        assert!(config.buffers_per_vc >= 1, "at least one buffer per VC");
        assert!(config.buffer_cells >= 1, "buffers must hold at least one cell");
        let capacity = config.buffer_cells * SAR_PAYLOAD_SIZE;
        Reassembler {
            config,
            vci_index: vec![NO_SLOT; 1 << 16].into_boxed_slice(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            open: 0,
            occupancy: 0,
            timers: TimerWheel::new(),
            expired: Vec::new(),
            pool: BufPool::new(1024, capacity),
            stats: ReassemblyStats::default(),
        }
    }

    /// Open a connection with the reassembler-wide default timeout.
    pub fn open_vc(&mut self, vci: Vci) {
        self.open_vc_with_timeout(vci, self.config.timeout);
    }

    /// Open a connection with a per-connection timeout (the NPE
    /// initializes timers per active connection, §5.3). A no-op when the
    /// connection is already open.
    pub fn open_vc_with_timeout(&mut self, vci: Vci, timeout: SimTime) {
        if self.vci_index[vci.0 as usize] != NO_SLOT {
            return;
        }
        let per_vc = self.config.buffers_per_vc;
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(!s.open && s.buffers.len() == per_vc);
                s.vci = vci;
                s.open = true;
                s.timeout = timeout;
                s.current = None;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                let buffers = (0..per_vc).map(|_| Buffer::new(self.pool.get())).collect();
                self.slots.push(VcSlot {
                    vci,
                    generation: 0,
                    open: true,
                    timeout,
                    buffers,
                    current: None,
                });
                slot
            }
        };
        self.vci_index[vci.0 as usize] = slot;
        self.open += 1;
    }

    /// Close a connection, dropping any partial state. The slot is
    /// retired — its generation is bumped, so timer entries or handles
    /// from this tenancy go stale — and recycled for future opens.
    pub fn close_vc(&mut self, vci: Vci) {
        let slot = self.vci_index[vci.0 as usize];
        if slot == NO_SLOT {
            return;
        }
        self.vci_index[vci.0 as usize] = NO_SLOT;
        let s = &mut self.slots[slot as usize];
        for buf in &mut s.buffers {
            if let Some(id) = buf.timer.take() {
                self.timers.cancel(id);
            }
            self.occupancy -= buf.cells() as usize;
            self.stats.cells_closed += u64::from(buf.cells());
            buf.reset();
        }
        s.open = false;
        s.current = None;
        s.generation = s.generation.wrapping_add(1);
        self.free_slots.push(slot);
        self.open -= 1;
    }

    /// True when the connection is open.
    pub fn is_open(&self, vci: Vci) -> bool {
        self.vci_index[vci.0 as usize] != NO_SLOT
    }

    /// Number of open connections.
    pub fn open_count(&self) -> usize {
        self.open
    }

    /// Return a frame-data buffer (from [`ReassembledFrame::data`]) to
    /// the pool once its contents have been consumed downstream.
    pub fn recycle(&mut self, data: Vec<u8>) {
        self.pool.put(data);
    }

    /// Buffer-pool hit/miss counters, for the allocation guards.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Offer one cell's 48-octet information field, as it emerges from
    /// the Header Decoder and CRC Logic.
    pub fn push(&mut self, now: SimTime, vci: Vci, info: &[u8]) -> ReassemblyEvent {
        let slot = self.vci_index[vci.0 as usize];
        if slot == NO_SLOT {
            self.stats.unknown_vc_drops += 1;
            return ReassemblyEvent::UnknownVc;
        }

        // CRC Logic: an errored cell is dropped and its slot overwritten.
        let Ok(cell) = SarCell::new_checked(info) else {
            self.stats.crc_drops += 1;
            return ReassemblyEvent::CrcDropped;
        };
        let hdr = cell.header();

        let generation = self.slots[slot as usize].generation;
        let vc = &mut self.slots[slot as usize];

        // Bind to a buffer: continue the current frame, or claim an
        // idle buffer for a new one.
        let idx = match vc.current {
            Some(i) => i,
            None => match vc.buffers.iter().position(|b| b.state == BufState::Idle) {
                Some(i) => {
                    let deadline = now + vc.timeout;
                    let b = &mut vc.buffers[i];
                    b.state = BufState::Assembling;
                    b.started_at = now;
                    b.deadline = deadline;
                    b.control = hdr.control;
                    vc.current = Some(i as u8);
                    let key = TimerKey { slot, generation, buf: i as u8 };
                    let id = self.timers.insert(deadline, key);
                    self.slots[slot as usize].buffers[i].timer = Some(id);
                    i as u8
                }
                None => {
                    self.stats.no_buffer_drops += 1;
                    return ReassemblyEvent::NoBuffer;
                }
            },
        };
        let vc = &mut self.slots[slot as usize];
        let buf = &mut vc.buffers[idx as usize];

        // Sequenced delivery check (§5.2): mismatch flags the frame.
        //
        // Classification: loss and misinsertion both show up as jumps,
        // and the per-frame sequence restart makes any single jump
        // ambiguous (a burst spanning a frame boundary produces backward
        // jumps too). Misinsertion is convicted only on the compound
        // signature loss cannot produce: a *backward* jump (loss only
        // ever moves a frame's sequence forward; going backward means a
        // cell from the past) immediately followed by the stream
        // *resuming* at exactly the expectation the jump abandoned (a
        // dropped cell is gone — the stream never comes back to the
        // number it skipped, whereas a misinserted cell's victim stream
        // was never really diverted). The window is one cell: an
        // in-sequence cell or a forward jump clears the pending target,
        // and a jump back to seq 0 is the next frame's first cell after
        // tail loss, not an intruder. A misinserted cell whose foreign
        // sequence number happens to run *ahead* of the victim's is
        // booked as loss — indistinguishable at this layer, and the
        // frame dies errored either way. The distinction survives to
        // the drop reason so loss is never booked as misinsertion.
        if hdr.seq != buf.expected_seq {
            buf.errored = true;
            self.stats.seq_errors += 1;
            let forward = hdr.seq.wrapping_sub(buf.expected_seq) & 0x3FF;
            if buf.resume_seq == Some(hdr.seq) && hdr.seq != 0 {
                buf.misinserted = true;
                self.stats.seq_misinserts += 1;
                buf.resume_seq = None;
            } else if forward > 512 && hdr.seq != 0 {
                buf.resume_seq = Some(buf.expected_seq);
            } else {
                buf.resume_seq = None;
            }
        } else {
            buf.resume_seq = None;
        }
        buf.expected_seq = hdr.seq.wrapping_add(1) & 0x3FF;

        if buf.cells() as usize >= self.config.buffer_cells {
            // Write would run past the buffer's end address.
            buf.errored = true;
            self.stats.overflow_drops += 1;
            if !hdr.final_cell {
                return ReassemblyEvent::Overflow;
            }
            // Fall through on F so the frame terminates (and is almost
            // certainly discarded as errored below).
        } else {
            buf.data.extend_from_slice(cell.payload());
            self.stats.cells_stored += 1;
            self.occupancy += 1;
        }

        if !hdr.final_cell {
            return ReassemblyEvent::Stored;
        }

        // F bit: frame ends; the reassembly timer disarms.
        if let Some(id) = buf.timer.take() {
            self.timers.cancel(id);
        }

        // Decide forward vs discard.
        let errored = buf.errored;
        if errored && !self.config.forward_errored_frames {
            let cells = buf.cells();
            let misinserted = buf.misinserted;
            self.occupancy -= cells as usize;
            self.stats.cells_discarded += u64::from(cells);
            buf.reset();
            vc.current = None;
            self.stats.frames_discarded += 1;
            return ReassemblyEvent::DiscardedErrored { cells, misinserted };
        }
        // Hand the frame out and re-arm the buffer from the pool (no
        // allocation once the pool is warm).
        let data = std::mem::replace(&mut buf.data, self.pool.get());
        let cells = (data.len() / SAR_PAYLOAD_SIZE) as u16;
        self.occupancy -= cells as usize;
        self.stats.cells_completed += u64::from(cells);
        let frame = ReassembledFrame {
            vci,
            control: buf.control,
            data,
            cells,
            partial: false,
            errored,
            started_at: buf.started_at,
            completed_at: now,
        };
        buf.state = BufState::Queued;
        buf.expected_seq = 0;
        buf.errored = false;
        buf.misinserted = false;
        buf.resume_seq = None;
        vc.current = None;
        self.stats.frames_complete += 1;
        ReassemblyEvent::Complete(frame)
    }

    /// Release one queued buffer on `vci` — the MPP has read the frame
    /// out of the reassembly buffer, freeing it for the next frame.
    pub fn release(&mut self, vci: Vci) {
        let slot = self.vci_index[vci.0 as usize];
        if slot == NO_SLOT {
            return;
        }
        let vc = &mut self.slots[slot as usize];
        if let Some(b) = vc.buffers.iter_mut().find(|b| b.state == BufState::Queued) {
            self.occupancy -= b.cells() as usize;
            b.reset();
        }
    }

    /// Fire expired reassembly timers (§5.3): frames whose deadline
    /// passed without a final cell are flushed, partial, to the MPP.
    /// Cost is O(expired), not O(open connections).
    // gw-lint: setup-path — timeout flush is the paper's exception path (§5.3), O(expired) housekeeping off the per-cell path
    pub fn check_timeouts(&mut self, now: SimTime) -> Vec<ReassembledFrame> {
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.timers.poll(now, &mut expired);
        let mut flushed = Vec::new();
        for &(deadline, key) in &expired {
            let Some(s) = self.slots.get_mut(key.slot as usize) else { continue };
            // A retired-and-reused slot, or a buffer re-armed for a newer
            // frame, never matches: cancel discipline plus the generation
            // tag and exact-deadline check make stale fires inert.
            if !s.open || s.generation != key.generation {
                continue;
            }
            let buf = &mut s.buffers[key.buf as usize];
            if buf.state != BufState::Assembling || buf.deadline != deadline {
                continue;
            }
            buf.timer = None;
            let data = std::mem::replace(&mut buf.data, self.pool.get());
            let cells = (data.len() / SAR_PAYLOAD_SIZE) as u16;
            self.occupancy -= cells as usize;
            self.stats.cells_flushed += u64::from(cells);
            let frame = ReassembledFrame {
                vci: s.vci,
                control: buf.control,
                data,
                cells,
                partial: true,
                errored: buf.errored,
                started_at: buf.started_at,
                completed_at: now,
            };
            buf.reset();
            s.current = None;
            self.stats.timeouts += 1;
            flushed.push(frame);
        }
        self.expired = expired;
        flushed.sort_by_key(|f| f.vci);
        flushed
    }

    /// Earliest pending reassembly deadline, for event scheduling.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.next_deadline()
    }

    /// Cells currently held across all buffers (occupancy, for E6).
    pub fn occupancy_cells(&self) -> usize {
        self.occupancy
    }

    /// Buffers permanently resident in slot tables (open and retired
    /// slots alike keep their buffers). The pool census invariant: pool
    /// gets − puts == residents + frames handed out and not yet
    /// recycled, so after a full drain the outstanding count equals
    /// exactly this.
    pub fn resident_buffers(&self) -> usize {
        self.slots.len() * self.config.buffers_per_vc
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReassemblyConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment;

    const VC: Vci = Vci(42);

    fn reassembler() -> Reassembler {
        let mut r = Reassembler::new(ReassemblyConfig::default());
        r.open_vc(VC);
        r
    }

    fn push_all(r: &mut Reassembler, frame: &[u8], control: bool) -> Vec<ReassemblyEvent> {
        segment(frame, control)
            .unwrap()
            .iter()
            .map(|c| r.push(SimTime::ZERO, VC, c.as_bytes()))
            .collect()
    }

    #[test]
    fn close_vc_mid_frame_frees_buffers_without_leak() {
        let mut r = reassembler();
        let cells = segment(&vec![5u8; 300], false).unwrap();
        // Half a frame arrives, then the VC is closed (quarantined).
        for c in &cells[..cells.len() / 2] {
            r.push(SimTime::ZERO, VC, c.as_bytes());
        }
        assert!(r.occupancy_cells() > 0, "partial frame held");
        r.close_vc(VC);
        assert_eq!(r.occupancy_cells(), 0, "close must free all buffers");
        assert!(!r.is_open(VC));
        assert_eq!(r.next_deadline(), None, "no timer survives the close");
        // The rest of the torn frame is now unknown-VC noise.
        let before = r.stats().frames_complete;
        for c in &cells[cells.len() / 2..] {
            assert_eq!(r.push(SimTime::ZERO, VC, c.as_bytes()), ReassemblyEvent::UnknownVc);
        }
        assert_eq!(r.stats().frames_complete, before, "no torn frame delivered");
    }

    #[test]
    fn reopened_vc_does_not_resurrect_torn_frame() {
        let mut r = reassembler();
        let cells = segment(&vec![6u8; 300], false).unwrap();
        for c in &cells[..2] {
            r.push(SimTime::ZERO, VC, c.as_bytes());
        }
        r.close_vc(VC);
        r.open_vc(VC);
        assert_eq!(r.occupancy_cells(), 0, "reopen starts clean");
        // The tail of the old frame ends with an F cell mid-sequence:
        // the sequence check must flag it, and the frame is discarded
        // rather than delivered torn.
        let mut last = ReassemblyEvent::Stored;
        for c in &cells[2..] {
            last = r.push(SimTime::from_us(1), VC, c.as_bytes());
        }
        assert!(
            matches!(last, ReassemblyEvent::DiscardedErrored { .. }),
            "tail of a torn frame must be discarded, got {last:?}"
        );
        // A fresh, whole frame then flows normally.
        let events = push_all(&mut r, &[7u8; 120], false);
        assert!(matches!(events.last().unwrap(), ReassemblyEvent::Complete(_)));
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut r = reassembler();
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let events = push_all(&mut r, &frame, false);
        let last = events.last().unwrap();
        match last {
            ReassemblyEvent::Complete(f) => {
                assert_eq!(&f.data[..200], &frame[..]);
                assert_eq!(f.cells, 5);
                assert!(!f.partial && !f.errored && !f.control);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        assert_eq!(r.stats().frames_complete, 1);
    }

    #[test]
    fn control_frames_marked() {
        let mut r = reassembler();
        let events = push_all(&mut r, &[1u8; 50], true);
        match events.last().unwrap() {
            ReassemblyEvent::Complete(f) => assert!(f.control),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_vc_dropped() {
        let mut r = Reassembler::new(ReassemblyConfig::default());
        let cell = segment(&[0u8; 10], false).unwrap().remove(0);
        assert_eq!(r.push(SimTime::ZERO, Vci(9), cell.as_bytes()), ReassemblyEvent::UnknownVc);
        assert_eq!(r.stats().unknown_vc_drops, 1);
    }

    #[test]
    fn crc_error_drops_cell_without_advancing() {
        let mut r = reassembler();
        let cells = segment(&[3u8; 90], false).unwrap();
        // Corrupt the first cell.
        let mut bad = [0u8; 48];
        bad.copy_from_slice(cells[0].as_bytes());
        bad[10] ^= 0x01;
        assert_eq!(r.push(SimTime::ZERO, VC, &bad), ReassemblyEvent::CrcDropped);
        assert_eq!(r.stats().crc_drops, 1);
        // Retransmit (or, in hardware terms: the good copy) still builds
        // a clean frame — the buffer slot was overwritten, not advanced.
        for c in &cells {
            r.push(SimTime::ZERO, VC, c.as_bytes());
        }
        assert_eq!(r.stats().frames_complete, 1);
    }

    #[test]
    fn lost_cell_discards_frame() {
        let mut r = reassembler();
        let cells = segment(&[9u8; 45 * 4], false).unwrap();
        // Deliver all but cell 2.
        let mut last_event = ReassemblyEvent::Stored;
        for (i, c) in cells.iter().enumerate() {
            if i == 2 {
                continue;
            }
            last_event = r.push(SimTime::ZERO, VC, c.as_bytes());
        }
        assert_eq!(last_event, ReassemblyEvent::DiscardedErrored { cells: 3, misinserted: false });
        assert_eq!(r.stats().seq_errors, 1);
        assert_eq!(r.stats().seq_misinserts, 0, "a forward skip is plain loss");
        assert_eq!(r.stats().frames_discarded, 1);
        assert_eq!(r.stats().frames_complete, 0);
        assert_eq!(r.stats().cells_discarded, 3);
    }

    #[test]
    fn foreign_cell_intrusion_classified_as_misinsertion() {
        let mut r = reassembler();
        let cells = segment(&[5u8; 45 * 4], false).unwrap();
        // A foreign cell (a misinserted cell from another VC, carrying
        // that stream's lagging sequence number) intrudes mid-frame:
        // the backward jump, immediately followed by the victim's own
        // stream resuming exactly where it left off, is the compound
        // signature loss can never produce.
        let foreign = gw_wire::sar::OwnedSarCell::build(1, false, false, &[0xEE; 45]).unwrap();
        let mut last_event = ReassemblyEvent::Stored;
        for (i, c) in cells.iter().enumerate() {
            if i == 3 {
                last_event = r.push(SimTime::ZERO, VC, foreign.as_bytes());
                assert!(matches!(last_event, ReassemblyEvent::Stored));
            }
            last_event = r.push(SimTime::ZERO, VC, c.as_bytes());
        }
        assert!(
            matches!(last_event, ReassemblyEvent::DiscardedErrored { misinserted: true, .. }),
            "sequence resumption after a backward jump must carry the misinsertion mark, got {last_event:?}"
        );
        assert_eq!(r.stats().seq_misinserts, 1);
        assert!(r.stats().seq_errors >= 2, "the intruder and the resumption both mismatch");
        assert_eq!(r.stats().frames_discarded, 1);
    }

    #[test]
    fn duplicated_cell_discards_without_misinsertion_mark() {
        let mut r = reassembler();
        let cells = segment(&[5u8; 45 * 4], false).unwrap();
        // Cell 1 arrives twice. The duplicate rewinds `expected_seq` to
        // 2, which the very next real cell satisfies — no resumption
        // mismatch ever fires, so the frame is discarded as ordinary
        // sequence error, not misinsertion (the duplicate is
        // indistinguishable from boundary loss at this layer).
        let mut last_event = ReassemblyEvent::Stored;
        for (i, c) in cells.iter().enumerate() {
            last_event = r.push(SimTime::ZERO, VC, c.as_bytes());
            if i == 1 {
                last_event = r.push(SimTime::ZERO, VC, c.as_bytes());
            }
        }
        assert!(
            matches!(last_event, ReassemblyEvent::DiscardedErrored { misinserted: false, .. }),
            "duplicate must still kill the frame, got {last_event:?}"
        );
        assert_eq!(r.stats().seq_misinserts, 0);
        assert!(r.stats().seq_errors >= 1);
        assert_eq!(r.stats().frames_discarded, 1);
    }

    #[test]
    fn tail_loss_then_next_frame_is_not_misinsertion() {
        // Frame A loses its final cells; the first cell of frame B (seq
        // 0) then jumps the sequence backward. That backward jump is the
        // ordinary tail-loss signature, not misinsertion — regression
        // for the classifier booking it as a foreign cell.
        let mut r = reassembler();
        let a = segment(&[7u8; 45 * 4], false).unwrap();
        for c in &a[..3] {
            assert_eq!(r.push(SimTime::ZERO, VC, c.as_bytes()), ReassemblyEvent::Stored);
        }
        let b = segment(&[8u8; 45 * 2], false).unwrap();
        assert_eq!(r.push(SimTime::ZERO, VC, b[0].as_bytes()), ReassemblyEvent::Stored);
        let ev = r.push(SimTime::ZERO, VC, b[1].as_bytes());
        assert!(
            matches!(ev, ReassemblyEvent::DiscardedErrored { misinserted: false, .. }),
            "tail loss must stay classified as loss, got {ev:?}"
        );
        assert_eq!(r.stats().seq_misinserts, 0);
        assert!(r.stats().seq_errors >= 1);
    }

    #[test]
    fn cell_disposition_counters_balance() {
        let mut r = reassembler();
        // One completed frame (3 cells)…
        push_all(&mut r, &[1u8; 45 * 3], false);
        // …one timer-flushed partial (2 cells stored, no F)…
        let cells = segment(&[2u8; 45 * 4], false).unwrap();
        r.push(SimTime::from_us(1), Vci(8), cells[0].as_bytes());
        assert_eq!(r.stats().unknown_vc_drops, 1);
        r.open_vc(Vci(8));
        r.push(SimTime::from_us(1), Vci(8), cells[0].as_bytes());
        r.push(SimTime::from_us(1), Vci(8), cells[1].as_bytes());
        let flushed = r.check_timeouts(SimTime::from_ms(100));
        assert_eq!(flushed.len(), 1);
        for f in flushed {
            r.recycle(f.data);
        }
        // …and one frame torn down mid-assembly (1 cell held at close).
        r.open_vc(Vci(9));
        r.push(SimTime::from_ms(100), Vci(9), cells[0].as_bytes());
        r.close_vc(Vci(9));
        let s = r.stats();
        assert_eq!(s.cells_completed, 3);
        assert_eq!(s.cells_flushed, 2);
        assert_eq!(s.cells_closed, 1);
        assert_eq!(
            s.cells_stored,
            s.cells_completed
                + s.cells_discarded
                + s.cells_flushed
                + s.cells_closed
                + r.occupancy_cells() as u64,
            "every stored cell must be accounted for"
        );
        assert_eq!(r.occupancy_cells(), 0);
    }

    #[test]
    fn errored_frames_forwarded_when_configured() {
        let mut r = Reassembler::new(ReassemblyConfig {
            forward_errored_frames: true,
            ..Default::default()
        });
        r.open_vc(VC);
        let cells = segment(&[9u8; 45 * 4], false).unwrap();
        let mut completes = 0;
        for (i, c) in cells.iter().enumerate() {
            if i == 1 {
                continue;
            }
            if let ReassemblyEvent::Complete(f) = r.push(SimTime::ZERO, VC, c.as_bytes()) {
                assert!(f.errored);
                completes += 1;
            }
        }
        assert_eq!(completes, 1);
    }

    #[test]
    fn two_buffers_pipeline_without_release() {
        let mut r = reassembler();
        // Frame 1 completes and its buffer stays queued.
        push_all(&mut r, &[1u8; 45], false);
        // Frame 2 can still assemble in the second buffer.
        let ev = push_all(&mut r, &[2u8; 45], false);
        assert!(matches!(ev.last().unwrap(), ReassemblyEvent::Complete(_)));
        // Frame 3 has no idle buffer: both are queued.
        let cells = segment(&[3u8; 45], false).unwrap();
        assert_eq!(r.push(SimTime::ZERO, VC, cells[0].as_bytes()), ReassemblyEvent::NoBuffer);
        assert_eq!(r.stats().no_buffer_drops, 1);
        // Releasing one lets frame 4 through.
        r.release(VC);
        let ev = push_all(&mut r, &[4u8; 45], false);
        assert!(matches!(ev.last().unwrap(), ReassemblyEvent::Complete(_)));
    }

    #[test]
    fn single_buffer_stalls_immediately() {
        let mut r = Reassembler::new(ReassemblyConfig { buffers_per_vc: 1, ..Default::default() });
        r.open_vc(VC);
        push_all(&mut r, &[1u8; 45], false);
        let cells = segment(&[2u8; 45], false).unwrap();
        assert_eq!(r.push(SimTime::ZERO, VC, cells[0].as_bytes()), ReassemblyEvent::NoBuffer);
        r.release(VC);
        let ev = push_all(&mut r, &[2u8; 45], false);
        assert!(matches!(ev.last().unwrap(), ReassemblyEvent::Complete(_)));
    }

    #[test]
    fn timeout_flushes_partial_frame() {
        let mut r = Reassembler::new(ReassemblyConfig {
            timeout: SimTime::from_us(100),
            ..Default::default()
        });
        r.open_vc(VC);
        let cells = segment(&[7u8; 45 * 3], false).unwrap();
        r.push(SimTime::from_ns(0), VC, cells[0].as_bytes());
        r.push(SimTime::from_ns(10), VC, cells[1].as_bytes());
        // Final cell never arrives.
        assert!(r.check_timeouts(SimTime::from_us(99)).is_empty());
        let flushed = r.check_timeouts(SimTime::from_us(100));
        assert_eq!(flushed.len(), 1);
        let f = &flushed[0];
        assert!(f.partial);
        assert_eq!(f.cells, 2);
        assert_eq!(f.started_at, SimTime::ZERO);
        assert_eq!(r.stats().timeouts, 1);
        // VC is reusable after the flush.
        let ev: Vec<_> =
            cells.iter().map(|c| r.push(SimTime::from_us(200), VC, c.as_bytes())).collect();
        assert!(matches!(ev.last().unwrap(), ReassemblyEvent::Complete(_)));
    }

    #[test]
    fn per_vc_timeouts_differ() {
        let mut r = Reassembler::new(ReassemblyConfig::default());
        r.open_vc_with_timeout(Vci(1), SimTime::from_us(10));
        r.open_vc_with_timeout(Vci(2), SimTime::from_us(1000));
        let cells = segment(&[0u8; 90], false).unwrap();
        r.push(SimTime::ZERO, Vci(1), cells[0].as_bytes());
        r.push(SimTime::ZERO, Vci(2), cells[0].as_bytes());
        let flushed = r.check_timeouts(SimTime::from_us(10));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].vci, Vci(1));
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut r = Reassembler::new(ReassemblyConfig::default());
        r.open_vc_with_timeout(Vci(1), SimTime::from_us(50));
        r.open_vc_with_timeout(Vci(2), SimTime::from_us(20));
        assert_eq!(r.next_deadline(), None);
        let cells = segment(&[0u8; 90], false).unwrap();
        r.push(SimTime::ZERO, Vci(1), cells[0].as_bytes());
        assert_eq!(r.next_deadline(), Some(SimTime::from_us(50)));
        r.push(SimTime::ZERO, Vci(2), cells[0].as_bytes());
        assert_eq!(r.next_deadline(), Some(SimTime::from_us(20)));
    }

    #[test]
    fn overflow_detected() {
        let mut r = Reassembler::new(ReassemblyConfig { buffer_cells: 2, ..Default::default() });
        r.open_vc(VC);
        let cells = segment(&[1u8; 45 * 4], false).unwrap();
        let mut events = Vec::new();
        for c in &cells {
            events.push(r.push(SimTime::ZERO, VC, c.as_bytes()));
        }
        assert!(events.contains(&ReassemblyEvent::Overflow));
        // Frame terminates errored on F.
        assert!(matches!(events.last().unwrap(), ReassemblyEvent::DiscardedErrored { .. }));
        assert!(r.stats().overflow_drops >= 1);
    }

    #[test]
    fn concurrent_reassembly_across_vcs() {
        let mut r = Reassembler::new(ReassemblyConfig::default());
        let n = 32u16;
        let frames: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 45 * 3]).collect();
        let cellsets: Vec<_> = frames.iter().map(|f| segment(f, false).unwrap()).collect();
        for i in 0..n {
            r.open_vc(Vci(i));
        }
        // Interleave: cell 0 of every VC, then cell 1 of every VC, ...
        let mut complete = 0;
        for ci in 0..3 {
            for (vi, cells) in cellsets.iter().enumerate() {
                if let ReassemblyEvent::Complete(f) =
                    r.push(SimTime::ZERO, Vci(vi as u16), cells[ci].as_bytes())
                {
                    assert_eq!(f.data, frames[vi]);
                    complete += 1;
                }
            }
        }
        assert_eq!(complete, n as usize);
        assert_eq!(r.stats().frames_complete, n as u64);
    }

    #[test]
    fn occupancy_tracks_cells() {
        let mut r = reassembler();
        assert_eq!(r.occupancy_cells(), 0);
        let cells = segment(&[0u8; 45 * 3], false).unwrap();
        r.push(SimTime::ZERO, VC, cells[0].as_bytes());
        r.push(SimTime::ZERO, VC, cells[1].as_bytes());
        assert_eq!(r.occupancy_cells(), 2);
    }

    #[test]
    fn close_vc_discards_state() {
        let mut r = reassembler();
        let cells = segment(&[0u8; 90], false).unwrap();
        r.push(SimTime::ZERO, VC, cells[0].as_bytes());
        r.close_vc(VC);
        assert!(!r.is_open(VC));
        assert_eq!(r.push(SimTime::ZERO, VC, cells[1].as_bytes()), ReassemblyEvent::UnknownVc);
        assert_eq!(r.open_count(), 0);
    }

    #[test]
    fn sequence_number_wraps_mod_1024() {
        // A frame cannot exceed 1024 cells, but back-to-back frames reuse
        // seq 0; ensure expected_seq resets between frames.
        let mut r = reassembler();
        for _ in 0..3 {
            let ev = push_all(&mut r, &[1u8; 45 * 2], false);
            assert!(matches!(ev.last().unwrap(), ReassemblyEvent::Complete(_)));
            r.release(VC);
        }
        assert_eq!(r.stats().seq_errors, 0);
    }

    #[test]
    fn retired_slot_timer_cannot_fire_into_new_tenancy() {
        // Arm a reassembly timer, retire the VC, reuse the slot (same
        // VCI), and start a fresh frame: the old tenancy's deadline must
        // not flush the new frame.
        let mut r = Reassembler::new(ReassemblyConfig {
            timeout: SimTime::from_us(100),
            ..Default::default()
        });
        r.open_vc(VC);
        let cells = segment(&[7u8; 45 * 3], false).unwrap();
        r.push(SimTime::ZERO, VC, cells[0].as_bytes());
        r.close_vc(VC);
        r.open_vc(VC); // recycles the same dense slot, new generation
        r.push(SimTime::from_us(50), VC, cells[0].as_bytes());
        // The old tenancy's deadline (100 us) passes; the new frame's own
        // deadline is 150 us and must be the only one armed.
        assert!(r.check_timeouts(SimTime::from_us(100)).is_empty());
        assert_eq!(r.next_deadline(), Some(SimTime::from_us(150)));
        let flushed = r.check_timeouts(SimTime::from_us(150));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].cells, 1);
    }

    #[test]
    fn recycled_frames_keep_the_pool_warm() {
        let mut r = reassembler();
        // Warm-up: the first completions draw fresh buffers.
        for _ in 0..3 {
            for ev in push_all(&mut r, &[1u8; 45 * 2], false) {
                if let ReassemblyEvent::Complete(f) = ev {
                    r.recycle(f.data);
                }
            }
            r.release(VC);
        }
        let misses_before = r.pool_stats().misses;
        for _ in 0..16 {
            for ev in push_all(&mut r, &[2u8; 45 * 2], false) {
                if let ReassemblyEvent::Complete(f) = ev {
                    r.recycle(f.data);
                }
            }
            r.release(VC);
        }
        assert_eq!(
            r.pool_stats().misses,
            misses_before,
            "steady-state completions must be served entirely from the pool"
        );
    }

    #[test]
    fn dense_index_isolates_vcis() {
        // Extremes of the 16-bit VCI space resolve to distinct slots.
        let mut r = Reassembler::new(ReassemblyConfig::default());
        r.open_vc(Vci(0));
        r.open_vc(Vci(u16::MAX));
        let cells = segment(&[3u8; 45], false).unwrap();
        assert!(matches!(
            r.push(SimTime::ZERO, Vci(0), cells[0].as_bytes()),
            ReassemblyEvent::Complete(_)
        ));
        assert!(matches!(
            r.push(SimTime::ZERO, Vci(u16::MAX), cells[0].as_bytes()),
            ReassemblyEvent::Complete(_)
        ));
        assert_eq!(r.open_count(), 2);
        r.close_vc(Vci(0));
        assert!(r.is_open(Vci(u16::MAX)));
        assert!(!r.is_open(Vci(0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::segment::segment;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any frame delivered in order, intact, reassembles to its
        /// padded self with no errors.
        #[test]
        fn lossless_roundtrip(frame in proptest::collection::vec(any::<u8>(), 1..2048), control: bool) {
            let mut r = Reassembler::new(ReassemblyConfig::default());
            r.open_vc(Vci(1));
            let mut out = None;
            for c in segment(&frame, control).unwrap() {
                if let ReassemblyEvent::Complete(f) = r.push(SimTime::ZERO, Vci(1), c.as_bytes()) {
                    out = Some(f);
                }
            }
            let f = out.expect("frame must complete");
            prop_assert_eq!(&f.data[..frame.len()], &frame[..]);
            prop_assert!(!f.errored);
            prop_assert_eq!(f.control, control);
        }

        /// Dropping any single non-final cell of a multi-cell frame causes
        /// discard, never a corrupted Complete.
        #[test]
        fn any_single_loss_discards(ncells in 2usize..30, drop_at_frac in 0.0f64..1.0) {
            let frame = vec![0xA5u8; ncells * 45];
            let cells = segment(&frame, false).unwrap();
            let drop_at = ((ncells - 1) as f64 * drop_at_frac) as usize; // never the final cell
            let mut r = Reassembler::new(ReassemblyConfig::default());
            r.open_vc(Vci(1));
            let mut outcome = None;
            for (i, c) in cells.iter().enumerate() {
                if i == drop_at { continue; }
                outcome = Some(r.push(SimTime::ZERO, Vci(1), c.as_bytes()));
            }
            let discarded = matches!(outcome.unwrap(), ReassemblyEvent::DiscardedErrored { .. });
            prop_assert!(discarded);
            prop_assert_eq!(r.stats().frames_complete, 0);
        }

        /// Interleaved multi-VC delivery with per-round VCI retire/reuse:
        /// every frame round-trips byte-identically through the dense
        /// generation-tagged tables and the recycled pool buffers.
        #[test]
        fn interleaved_multi_vc_roundtrip_with_retire_reuse(
            nvcs in 2usize..12,
            rounds in 1usize..4,
            seed in any::<u8>(),
            retire_mask in any::<u16>(),
        ) {
            let mut r = Reassembler::new(ReassemblyConfig::default());
            for v in 0..nvcs {
                r.open_vc(Vci(v as u16));
            }
            for round in 0..rounds {
                // Distinct payload per (vc, round) so cross-VC or
                // cross-tenancy mixups corrupt bytes detectably.
                let frames: Vec<Vec<u8>> = (0..nvcs)
                    .map(|v| vec![seed ^ (v as u8) ^ (round as u8).wrapping_mul(31); 45 * (1 + v % 4)])
                    .collect();
                let cellsets: Vec<_> =
                    frames.iter().map(|f| segment(f, false).unwrap()).collect();
                let depth = cellsets.iter().map(|c| c.len()).max().unwrap();
                let mut completed = vec![false; nvcs];
                // Interleave: cell i of every VC, then cell i+1 of every VC.
                for ci in 0..depth {
                    for (v, cells) in cellsets.iter().enumerate() {
                        let Some(c) = cells.get(ci) else { continue };
                        match r.push(SimTime::ZERO, Vci(v as u16), c.as_bytes()) {
                            ReassemblyEvent::Complete(f) => {
                                prop_assert_eq!(f.vci, Vci(v as u16));
                                prop_assert_eq!(&f.data[..frames[v].len()], &frames[v][..]);
                                prop_assert!(!f.errored);
                                completed[v] = true;
                                r.recycle(f.data);
                                r.release(Vci(v as u16));
                            }
                            ReassemblyEvent::Stored => {}
                            other => prop_assert!(false, "unexpected event {:?}", other),
                        }
                    }
                }
                prop_assert!(completed.iter().all(|&c| c), "every VC's frame completes");
                // Retire and immediately reuse a subset of VCIs: their
                // dense slots recycle with a fresh generation.
                for v in 0..nvcs {
                    if retire_mask & (1 << (v % 16)) != 0 {
                        r.close_vc(Vci(v as u16));
                        r.open_vc(Vci(v as u16));
                    }
                }
            }
            prop_assert_eq!(r.stats().seq_errors, 0);
            prop_assert_eq!(r.stats().frames_complete as usize, nvcs * rounds);
        }
    }
}
