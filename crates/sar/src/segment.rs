// gw-lint: critical-path
//! Segmentation: the algorithm of the SPP's Fragmentation Logic (§5.4).
//!
//! The Fragmentation Logic reads the 5-octet ATM header the MPP
//! prepended, copies it onto every cell, slices the frame into 45-octet
//! SAR payloads, stamps each with a SAR header carrying an increasing
//! 10-bit sequence number, marks the final cell's F bit from the frame
//! descriptor, and lets the CRC Generator append the CRC-10 — all on
//! the fly, with no per-cell stall (§5.5).

use gw_wire::atm::{AtmHeader, OwnedCell, CELL_SIZE};
use gw_wire::sar::{OwnedSarCell, SAR_PAYLOAD_SIZE};
use gw_wire::{Error, Result};

/// Maximum number of cells a single frame may occupy: bounded by the
/// 10-bit sequence number space.
pub const MAX_FRAME_CELLS: usize = 1 << 10;

/// Segment a frame into SAR information fields (48 octets each).
///
/// `control` sets the C bit on every cell of the frame (§5.2). An empty
/// frame still produces one (all-padding) cell so the F bit has a
/// carrier. Frames longer than `MAX_FRAME_CELLS × 45` octets exceed the
/// sequence space and are rejected.
// gw-lint: setup-path — per-frame staging sized once from the frame length, modeling the Fragmentation Logic's bounded staging memory
pub fn segment(frame: &[u8], control: bool) -> Result<Vec<OwnedSarCell>> {
    let ncells = frame.len().div_ceil(SAR_PAYLOAD_SIZE).max(1);
    if ncells > MAX_FRAME_CELLS {
        return Err(Error::TooLong);
    }
    let mut cells = Vec::with_capacity(ncells);
    for i in 0..ncells {
        let start = i * SAR_PAYLOAD_SIZE;
        let end = (start + SAR_PAYLOAD_SIZE).min(frame.len());
        let last = i == ncells - 1;
        cells.push(OwnedSarCell::build(i as u16, last, control, &frame[start..end])?);
    }
    Ok(cells)
}

/// Segment a frame into complete 53-octet ATM cells under `header`
/// (the header the MPP fetched from the ICXT-A, §6.2).
pub fn segment_cells(header: &AtmHeader, frame: &[u8], control: bool) -> Result<Vec<OwnedCell>> {
    segment(frame, control)?
        .into_iter()
        .map(|sar| OwnedCell::build(header, sar.as_bytes()))
        .collect()
}

/// Number of cells a frame of `len` octets segments into.
pub fn cells_for_len(len: usize) -> usize {
    len.div_ceil(SAR_PAYLOAD_SIZE).max(1)
}

/// Octets put on the ATM wire for a frame of `len` octets.
pub fn wire_octets_for_len(len: usize) -> usize {
    cells_for_len(len) * CELL_SIZE
}

/// Reconstruct frame bytes (multiple of 45, zero-padded) from an ordered
/// run of SAR cells — a test/oracle helper, not the hardware path.
// gw-lint: setup-path — test/oracle helper, not the hardware path
pub fn reassemble_oracle(cells: &[OwnedSarCell]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cells.len() * SAR_PAYLOAD_SIZE);
    for c in cells {
        out.extend_from_slice(c.payload());
    }
    out
}

/// Wrap SAR information fields from existing ATM cells for inspection.
pub fn sar_views(cells: &[OwnedCell]) -> Vec<OwnedSarCell> {
    cells
        .iter()
        .map(|c| {
            let mut buf = [0u8; 48];
            buf.copy_from_slice(c.payload());
            gw_wire::sar::SarCell::new_unchecked(buf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_wire::atm::{Vci, Vpi};

    #[test]
    fn exact_multiple_of_45() {
        let frame = vec![7u8; 90];
        let cells = segment(&frame, false).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].header().seq, 0);
        assert!(!cells[0].header().final_cell);
        assert_eq!(cells[1].header().seq, 1);
        assert!(cells[1].header().final_cell);
        assert_eq!(reassemble_oracle(&cells), frame);
    }

    #[test]
    fn partial_final_cell_padded() {
        let frame: Vec<u8> = (0..100u8).collect();
        let cells = segment(&frame, false).unwrap();
        assert_eq!(cells.len(), 3);
        let out = reassemble_oracle(&cells);
        assert_eq!(out.len(), 135);
        assert_eq!(&out[..100], &frame[..]);
        assert!(out[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn single_cell_frame() {
        let cells = segment(&[1, 2, 3], false).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].header().final_cell);
        assert_eq!(cells[0].header().seq, 0);
    }

    #[test]
    fn empty_frame_yields_one_final_cell() {
        let cells = segment(&[], false).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].header().final_cell);
    }

    #[test]
    fn control_bit_on_every_cell() {
        let frame = vec![0u8; 200];
        let cells = segment(&frame, true).unwrap();
        assert!(cells.iter().all(|c| c.header().control));
        let cells = segment(&frame, false).unwrap();
        assert!(cells.iter().all(|c| !c.header().control));
    }

    #[test]
    fn sequence_numbers_strictly_increase() {
        let frame = vec![0u8; 45 * 20];
        let cells = segment(&frame, false).unwrap();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.header().seq as usize, i);
        }
    }

    #[test]
    fn all_cells_pass_crc() {
        let frame: Vec<u8> = (0..255u8).cycle().take(1000).collect();
        for c in segment(&frame, false).unwrap() {
            assert!(c.check_crc());
        }
    }

    #[test]
    fn max_frame_accepted_and_bound_enforced() {
        let max = MAX_FRAME_CELLS * SAR_PAYLOAD_SIZE;
        assert_eq!(segment(&vec![0u8; max], false).unwrap().len(), MAX_FRAME_CELLS);
        assert_eq!(segment(&vec![0u8; max + 1], false).err(), Some(Error::TooLong));
    }

    #[test]
    fn paper_sized_frame_is_91_cells() {
        // A maximum MCHIP frame over FDDI internet encapsulation:
        // 4096-octet data segment minus the 8-octet LLC/SNAP header.
        let cells = segment(&vec![0u8; 4096 - 8], false).unwrap();
        assert_eq!(cells.len(), 91); // §5.3
    }

    #[test]
    fn segment_cells_carry_header_and_hec() {
        let hdr = AtmHeader::data(Vpi(1), Vci(99));
        let frame = vec![0xAB; 120];
        let cells = segment_cells(&hdr, &frame, false).unwrap();
        assert_eq!(cells.len(), 3);
        for c in &cells {
            assert_eq!(c.header().vci, Vci(99));
            assert!(c.check_hec());
        }
        // Payload content survives the trip through full cells.
        let views = sar_views(&cells);
        assert_eq!(&reassemble_oracle(&views)[..120], &frame[..]);
    }

    #[test]
    fn helpers_agree() {
        for len in [0usize, 1, 44, 45, 46, 90, 4088] {
            let cells = segment(&vec![0u8; len], false).unwrap();
            assert_eq!(cells.len(), cells_for_len(len), "len {len}");
            assert_eq!(wire_octets_for_len(len), cells.len() * CELL_SIZE);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn segment_oracle_roundtrip(frame in proptest::collection::vec(any::<u8>(), 0..4096), control: bool) {
            let cells = segment(&frame, control).unwrap();
            prop_assert_eq!(cells.len(), cells_for_len(frame.len()));
            // Last cell carries F; no other does.
            for (i, c) in cells.iter().enumerate() {
                prop_assert_eq!(c.header().final_cell, i == cells.len() - 1);
                prop_assert_eq!(c.header().control, control);
                prop_assert!(c.check_crc());
            }
            let out = reassemble_oracle(&cells);
            prop_assert_eq!(&out[..frame.len()], &frame[..]);
            prop_assert!(out[frame.len()..].iter().all(|&b| b == 0));
        }
    }
}
