//! FDDI timed-token ring simulation (§3 and Figure 2 of the paper;
//! ANSI X3.139 MAC subset).
//!
//! The paper's gateway sits on an FDDI ring through the AMD SUPERNET
//! chip set, which implements the PHY and MAC in silicon. Because the
//! gateway's performance is entangled with token-ring dynamics (it may
//! transmit only while holding the token, §4.2), this crate implements
//! the timed-token MAC itself rather than stubbing it:
//!
//! * [`mac`] — the per-station timed-token timer rules: token rotation
//!   timer (TRT), token holding timer (THT), late count, synchronous
//!   allocation. Pure state machine, exhaustively unit-tested, and the
//!   subject of experiment E12 (TRT ≤ 2×TTRT, after Johnson's proof,
//!   paper reference \[6\]).
//! * [`claim`] — the claim-token process that negotiates the target
//!   token rotation time (TTRT) as the minimum of station bids.
//! * [`ring`] — the event-driven ring: token circulation, synchronous
//!   then asynchronous transmission within MAC limits, frame delivery
//!   by destination address (point-to-point, group, broadcast — §3
//!   "Addressing"), source stripping, and SUPERNET-style statistics
//!   registers (§4.3 "SUPERNET").
//!
//! Rates and sizes come from Figure 2: 100 Mb/s, 64–4500-octet frames,
//! up to 1000 stations, 200 km maximum ring length.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod claim;
pub mod mac;
pub mod ring;
pub mod smt;

pub use claim::{claim_process, ClaimOutcome};
pub use mac::{MacTimers, TokenDisposition};
pub use ring::{
    Delivery, Ring, RingConfig, RingHealthCounters, RingStats, StationConfig, StationStats,
};
pub use smt::{Nif, SmtMonitor};

/// FDDI line rate (Figure 2): 100 Mb/s.
pub const FDDI_BIT_RATE: u64 = 100_000_000;
/// Nanoseconds to transmit one octet at 100 Mb/s.
pub const NS_PER_OCTET: u64 = 80;
/// Token length in octet-times (preamble + SD + FC + ED ≈ 11 octets).
pub const TOKEN_OCTETS: usize = 11;
/// Per-frame line overhead in octet-times (preamble, SD, ED/FS symbols).
pub const FRAME_OVERHEAD_OCTETS: usize = 10;
/// Maximum stations on a ring (Figure 2).
pub const MAX_STATIONS: usize = 1000;
/// Maximum ring circumference in kilometres (Figure 2).
pub const MAX_RING_KM: u64 = 200;
/// Propagation delay per kilometre of fibre (≈ 5.085 µs/km; we use 5 µs).
pub const NS_PER_KM: u64 = 5_000;
