//! The claim-token process: TTRT negotiation at ring initialization
//! (ANSI X3.139 §8.3.2; paper reference \[2\]).
//!
//! Every station bids the rotation time it requires (`T_Req`); claim
//! frames circulate and the **lowest bid wins** (ties broken by the
//! highest MAC address). The winner issues the first token, and every
//! station operates with `TTRT = min(T_Req)`. The synchronous
//! allocations must satisfy `Σ sync_alloc + ring_latency ≤ TTRT` for
//! the timed-token guarantees to hold; [`claim_process`] checks this
//! and reports the slack.

use gw_sim::time::SimTime;
use gw_wire::fddi::FddiAddr;

/// The result of the claim process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimOutcome {
    /// The negotiated target token rotation time: the minimum bid.
    pub ttrt: SimTime,
    /// Index of the winning station (lowest bid; highest address wins
    /// ties).
    pub winner: usize,
    /// Number of claim frames modeled (one per station per round; the
    /// process converges in one round once every bid has circulated).
    pub claim_frames: usize,
    /// `TTRT − (Σ sync_alloc + ring_latency)`: non-negative when the
    /// synchronous guarantee is schedulable.
    pub sync_slack: Option<SimTime>,
}

/// Run the claim process over stations described by `(address, t_req,
/// sync_alloc)` with the given total ring latency.
///
/// Returns `None` for an empty ring.
pub fn claim_process(
    stations: &[(FddiAddr, SimTime, SimTime)],
    ring_latency: SimTime,
) -> Option<ClaimOutcome> {
    if stations.is_empty() {
        return None;
    }
    let mut winner = 0usize;
    for (i, &(addr, t_req, _)) in stations.iter().enumerate() {
        let (waddr, wreq, _) = stations[winner];
        if t_req < wreq || (t_req == wreq && addr.0 > waddr.0) {
            winner = i;
        }
    }
    let ttrt = stations[winner].1;
    let total_sync: u64 = stations.iter().map(|&(_, _, s)| s.as_ns()).sum();
    let committed = SimTime::from_ns(total_sync) + ring_latency;
    let sync_slack = (ttrt >= committed).then(|| ttrt - committed);
    Some(ClaimOutcome { ttrt, winner, claim_frames: stations.len(), sync_slack })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(idx: u32, req_us: u64, sync_us: u64) -> (FddiAddr, SimTime, SimTime) {
        (FddiAddr::station(idx), SimTime::from_us(req_us), SimTime::from_us(sync_us))
    }

    #[test]
    fn lowest_bid_wins() {
        let out =
            claim_process(&[st(1, 800, 0), st(2, 400, 0), st(3, 600, 0)], SimTime::ZERO).unwrap();
        assert_eq!(out.ttrt, SimTime::from_us(400));
        assert_eq!(out.winner, 1);
        assert_eq!(out.claim_frames, 3);
    }

    #[test]
    fn tie_broken_by_highest_address() {
        let out =
            claim_process(&[st(1, 400, 0), st(9, 400, 0), st(5, 400, 0)], SimTime::ZERO).unwrap();
        assert_eq!(out.winner, 1, "station 9 has the highest address");
    }

    #[test]
    fn empty_ring_yields_none() {
        assert_eq!(claim_process(&[], SimTime::ZERO), None);
    }

    #[test]
    fn sync_slack_computed() {
        let out =
            claim_process(&[st(1, 1000, 100), st(2, 1000, 200)], SimTime::from_us(50)).unwrap();
        assert_eq!(out.sync_slack, Some(SimTime::from_us(650)));
    }

    #[test]
    fn oversubscribed_sync_flagged() {
        let out = claim_process(&[st(1, 100, 80), st(2, 100, 80)], SimTime::from_us(10)).unwrap();
        assert_eq!(out.sync_slack, None, "160+10 > 100: not schedulable");
    }

    #[test]
    fn single_station_ring() {
        let out = claim_process(&[st(4, 250, 10)], SimTime::from_us(5)).unwrap();
        assert_eq!(out.winner, 0);
        assert_eq!(out.ttrt, SimTime::from_us(250));
        assert_eq!(out.sync_slack, Some(SimTime::from_us(235)));
    }
}
