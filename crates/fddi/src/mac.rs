//! Per-station timed-token timer rules (ANSI X3.139 §8; paper refs
//! \[2\], \[6\], \[13\]).
//!
//! Each station keeps a **token rotation timer** (TRT) counting one
//! TTRT interval. The rules, as modeled here in absolute simulated
//! time:
//!
//! * When the token arrives **early** (TRT not yet expired), the unused
//!   rotation time becomes the **token holding timer** (THT) budget for
//!   asynchronous transmission, and TRT restarts at a full TTRT.
//! * When TRT expires before the token returns, the **late count**
//!   increments and TRT restarts; when the token then arrives **late**,
//!   the late count clears, TRT keeps running (it is *not* restarted),
//!   and no asynchronous transmission is permitted.
//! * **Synchronous** transmission up to the station's negotiated
//!   allocation is permitted on every token visit, early or late — this
//!   is what gives FDDI its performance guarantee (§3 "Access": time
//!   critical applications use synchronous transmission).
//!
//! These rules yield Johnson's bound: the time between token arrivals
//! at a station never exceeds 2×TTRT (validated in experiment E12).

use gw_sim::time::SimTime;

/// What a token visit permits (computed by [`MacTimers::token_arrival`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenDisposition {
    /// True when the token arrived before TRT expiry.
    pub early: bool,
    /// Asynchronous transmission budget (zero for a late token).
    pub tht_budget: SimTime,
    /// The synchronous allocation usable this visit.
    pub sync_budget: SimTime,
}

/// The MAC timer state of one station.
#[derive(Debug, Clone)]
pub struct MacTimers {
    ttrt: SimTime,
    sync_alloc: SimTime,
    /// Absolute time at which the running TRT expires.
    trt_expiry: SimTime,
    late_count: u32,
    /// Cumulative count of TRT expirations (diagnostic register).
    total_late_events: u64,
    last_token_arrival: Option<SimTime>,
}

impl MacTimers {
    /// Initialize after ring initialization at `now`, with the
    /// negotiated TTRT and this station's synchronous allocation.
    ///
    /// # Panics
    /// Panics when `ttrt` is zero — ring initialization cannot have
    /// negotiated a zero rotation target.
    pub fn new(now: SimTime, ttrt: SimTime, sync_alloc: SimTime) -> MacTimers {
        assert!(ttrt > SimTime::ZERO, "TTRT must be positive");
        MacTimers {
            ttrt,
            sync_alloc,
            trt_expiry: now + ttrt,
            late_count: 0,
            total_late_events: 0,
            last_token_arrival: None,
        }
    }

    /// The negotiated target token rotation time.
    pub fn ttrt(&self) -> SimTime {
        self.ttrt
    }

    /// This station's synchronous allocation per visit.
    pub fn sync_alloc(&self) -> SimTime {
        self.sync_alloc
    }

    /// Process a token arriving at `now`; returns what this visit may
    /// transmit.
    pub fn token_arrival(&mut self, now: SimTime) -> TokenDisposition {
        // Account any TRT expirations since the last visit.
        while now >= self.trt_expiry {
            self.trt_expiry += self.ttrt;
            self.late_count += 1;
            self.total_late_events += 1;
        }
        let disposition = if self.late_count == 0 {
            // Early token: leftover rotation time funds async traffic.
            let tht = self.trt_expiry - now;
            self.trt_expiry = now + self.ttrt;
            TokenDisposition { early: true, tht_budget: tht, sync_budget: self.sync_alloc }
        } else {
            // Late token: clear the late count, keep TRT running, no
            // asynchronous budget.
            self.late_count = 0;
            TokenDisposition {
                early: false,
                tht_budget: SimTime::ZERO,
                sync_budget: self.sync_alloc,
            }
        };
        self.last_token_arrival = Some(now);
        disposition
    }

    /// Inter-arrival time since the previous token visit, if any.
    pub fn rotation_time(&self, now: SimTime) -> Option<SimTime> {
        self.last_token_arrival.map(|t| now.saturating_sub(t))
    }

    /// Time of the most recent token arrival.
    pub fn last_token_arrival(&self) -> Option<SimTime> {
        self.last_token_arrival
    }

    /// Current late count (0 or transiently 1+ between visits).
    pub fn late_count(&self) -> u32 {
        self.late_count
    }

    /// Cumulative TRT expirations (SUPERNET-style diagnostic register).
    pub fn total_late_events(&self) -> u64 {
        self.total_late_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn early_token_gets_leftover_as_tht() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), t(10));
        // Token returns after 40 us: 60 us of rotation left -> THT.
        let d = m.token_arrival(t(40));
        assert!(d.early);
        assert_eq!(d.tht_budget, t(60));
        assert_eq!(d.sync_budget, t(10));
    }

    #[test]
    fn exactly_on_time_token_is_late() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), SimTime::ZERO);
        let d = m.token_arrival(t(100));
        assert!(!d.early);
        assert_eq!(d.tht_budget, SimTime::ZERO);
    }

    #[test]
    fn late_token_gives_no_async_budget_but_sync_remains() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), t(7));
        let d = m.token_arrival(t(150));
        assert!(!d.early);
        assert_eq!(d.tht_budget, SimTime::ZERO);
        assert_eq!(d.sync_budget, t(7), "sync allocation survives lateness");
        assert_eq!(m.late_count(), 0, "late count cleared by the arrival");
        assert_eq!(m.total_late_events(), 1);
    }

    #[test]
    fn late_token_does_not_restart_trt() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), SimTime::ZERO);
        // Token arrives at 150: TRT expired at 100, restarted for 200.
        m.token_arrival(t(150));
        // Next token at 180: TRT (expiring 200) has not expired -> early,
        // with 20 us left. Had the late arrival restarted TRT the expiry
        // would be 250 and THT would wrongly be 70.
        let d = m.token_arrival(t(180));
        assert!(d.early);
        assert_eq!(d.tht_budget, t(20));
    }

    #[test]
    fn early_token_restarts_trt_full() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), SimTime::ZERO);
        m.token_arrival(t(30)); // TRT restarts: expiry 130
        let d = m.token_arrival(t(130)); // exactly at expiry -> late
        assert!(!d.early);
        let d = m.token_arrival(t(140)); // before 230 -> early, 90 left
        assert!(d.early);
        assert_eq!(d.tht_budget, t(90));
    }

    #[test]
    fn very_late_token_counts_multiple_expirations() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), SimTime::ZERO);
        m.token_arrival(t(350)); // expirations at 100, 200, 300
        assert_eq!(m.total_late_events(), 3);
        assert_eq!(m.late_count(), 0);
    }

    #[test]
    fn rotation_time_tracked() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), SimTime::ZERO);
        assert_eq!(m.rotation_time(t(10)), None);
        m.token_arrival(t(10));
        // Queried before the next arrival is recorded (the ring samples
        // rotation time this way).
        assert_eq!(m.rotation_time(t(55)), Some(t(45)));
        m.token_arrival(t(55));
        assert_eq!(m.last_token_arrival(), Some(t(55)));
    }

    #[test]
    #[should_panic(expected = "TTRT must be positive")]
    fn zero_ttrt_rejected() {
        let _ = MacTimers::new(SimTime::ZERO, SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn tht_budget_bounded_by_ttrt() {
        let mut m = MacTimers::new(SimTime::ZERO, t(100), SimTime::ZERO);
        for arrival in [1u64, 5, 20, 99] {
            let mut mm = m.clone();
            let d = mm.token_arrival(t(arrival));
            assert!(d.tht_budget <= t(100));
        }
        // Immediately-returning token gets nearly the whole TTRT.
        let d = m.token_arrival(SimTime::from_ns(1));
        assert_eq!(d.tht_budget, t(100) - SimTime::from_ns(1));
    }

    /// The alternating pattern from Sevcik & Johnson's analysis: a
    /// saturated station alternately sees early and late tokens, and the
    /// rotation never exceeds 2×TTRT.
    #[test]
    fn rotation_never_exceeds_twice_ttrt() {
        let ttrt = t(100);
        let mut m = MacTimers::new(SimTime::ZERO, ttrt, SimTime::ZERO);
        // Simulate a pathological arrival pattern driven by the budget
        // the MAC grants: the "ring" consumes the full THT each visit
        // plus a fixed 10 us of sync/latency from other stations.
        let mut now = t(10);
        let mut prev = None;
        for _ in 0..100 {
            let d = m.token_arrival(now);
            if let Some(p) = prev {
                let rotation = now - p;
                assert!(rotation <= t(200), "rotation {} exceeded 2*TTRT", rotation);
            }
            prev = Some(now);
            now = now + d.tht_budget + t(10);
        }
    }
}
