//! The event-driven FDDI ring: token circulation, MAC-limited
//! transmission, and frame delivery (§3; §4.3 "SUPERNET").
//!
//! Stations are arranged on a unidirectional ring. The token visits
//! them in order; at each visit the station's [`MacTimers`] decide how
//! much synchronous and asynchronous transmission is permitted. Frames
//! propagate downstream, are copied out at stations whose addresses
//! match the destination (point-to-point, group, or broadcast), and are
//! stripped when they return to their source — which the simulation
//! models by simply not forwarding past the source.
//!
//! The ring exposes SUPERNET-style statistics registers per station
//! ("it provides various registers to keep track of ring statistics",
//! §4.3) and a token-rotation histogram for experiment E12.

use crate::claim::{claim_process, ClaimOutcome};
use crate::mac::MacTimers;
use crate::{FRAME_OVERHEAD_OCTETS, NS_PER_KM, NS_PER_OCTET, TOKEN_OCTETS};
use gw_sim::event::EventQueue;
use gw_sim::stats::Histogram;
use gw_sim::time::SimTime;
use gw_wire::fddi::{FddiAddr, Frame};
use std::collections::VecDeque;

/// Configuration for one station.
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// TTRT bid for the claim process.
    pub t_req: SimTime,
    /// Synchronous allocation per token visit.
    pub sync_alloc: SimTime,
    /// Group addresses this station listens to (in addition to its
    /// individual address and broadcast).
    pub groups: Vec<FddiAddr>,
    /// Synchronous transmit queue capacity (frames).
    pub sync_queue_frames: usize,
    /// Asynchronous transmit queue capacity (frames, shared across
    /// priorities).
    pub async_queue_frames: usize,
    /// Asynchronous priority thresholds `T_Pri[p]` (X3.139 §8.3.4.2):
    /// a priority-`p` frame may start transmitting only while the
    /// remaining token holding time exceeds `t_pri[p]`. All zero by
    /// default (no restriction); lower priorities are typically given
    /// larger thresholds so they yield first as the ring loads up.
    pub t_pri: [SimTime; 8],
}

impl Default for StationConfig {
    fn default() -> Self {
        StationConfig {
            t_req: SimTime::from_ms(8), // X3.139 default T_Req is 8 ms
            sync_alloc: SimTime::ZERO,
            groups: Vec::new(),
            sync_queue_frames: 64,
            async_queue_frames: 256,
            t_pri: [SimTime::ZERO; 8],
        }
    }
}

/// Ring-wide configuration.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Stations, in ring order.
    pub stations: Vec<StationConfig>,
    /// Total fibre length in kilometres (≤ 200, Figure 2).
    pub ring_km: u64,
    /// Per-station repeat latency.
    pub station_latency: SimTime,
}

impl RingConfig {
    /// A ring of `n` identical default stations over `ring_km` of fibre.
    pub fn uniform(n: usize, ring_km: u64) -> RingConfig {
        RingConfig {
            stations: vec![StationConfig::default(); n],
            ring_km,
            station_latency: SimTime::from_ns(600),
        }
    }
}

/// A frame copied off the ring at a receiving station.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// When reception completed.
    pub time: SimTime,
    /// Receiving station index.
    pub to: usize,
    /// Transmitting station index.
    pub from: usize,
    /// The complete MAC frame.
    pub frame: Vec<u8>,
}

/// Per-station statistics registers (§4.3 "SUPERNET").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StationStats {
    /// Token visits.
    pub tokens_seen: u64,
    /// Frames transmitted (synchronous class).
    pub sync_frames_tx: u64,
    /// Frames transmitted (asynchronous class).
    pub async_frames_tx: u64,
    /// Octets transmitted.
    pub octets_tx: u64,
    /// Frames received (copied off the ring).
    pub frames_rx: u64,
    /// Octets received.
    pub octets_rx: u64,
    /// Frames dropped at enqueue because a transmit queue was full.
    pub queue_drops: u64,
}

/// Ring-wide statistics.
#[derive(Debug, Clone)]
pub struct RingStats {
    /// Negotiated TTRT.
    pub ttrt: SimTime,
    /// Claim outcome recorded at initialization.
    pub claim: ClaimOutcome,
    /// Token rotation time histogram, sampled at station 0 (µs bins).
    pub rotation_us: Histogram,
    /// Total completed token rotations (arrivals at station 0).
    pub rotations: u64,
    /// Ring recoveries: re-claims after station bypass or reinsertion.
    pub recoveries: u64,
}

/// Aggregated ring health, the SMT-style summary the gateway's
/// management plane folds into its snapshot: one struct answering "is
/// the ring healthy" without walking per-station registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingHealthCounters {
    /// Negotiated TTRT, nanoseconds.
    pub ttrt_ns: u64,
    /// Completed token rotations observed at station 0.
    pub rotations: u64,
    /// Ring recoveries (re-claims after bypass or reinsertion).
    pub recoveries: u64,
    /// Stations currently held out by their optical bypass relay.
    pub bypassed_stations: u64,
    /// Stations participating in the ring right now.
    pub active_stations: u64,
    /// Frames dropped at enqueue across every station (full queue).
    pub queue_drops: u64,
}

#[derive(Debug)]
struct Station {
    addr: FddiAddr,
    config: StationConfig,
    mac: MacTimers,
    sync_q: VecDeque<Vec<u8>>,
    /// Asynchronous queues, one per priority (7 = highest).
    async_q: [VecDeque<Vec<u8>>; 8],
    rx: VecDeque<Delivery>,
    stats: StationStats,
    /// True when the station's optical bypass relay is engaged: the
    /// ring passes through it but it neither transmits nor receives.
    bypassed: bool,
}

impl Station {
    fn listens_to(&self, dst: FddiAddr) -> bool {
        dst == self.addr
            || dst.is_broadcast()
            || (dst.is_group() && self.config.groups.contains(&dst))
    }
}

#[derive(Debug)]
enum RingEvent {
    /// The token arrives at a station.
    Token(usize),
    /// A frame finishes arriving at a station.
    Deliver { to: usize, from: usize, frame: Vec<u8> },
}

/// The FDDI ring simulation.
///
/// ```
/// use gw_fddi::ring::{Ring, RingConfig};
/// use gw_sim::time::SimTime;
/// use gw_wire::fddi::{FddiAddr, FrameControl, FrameRepr};
///
/// let mut ring = Ring::new(RingConfig::uniform(4, 10));
/// let frame = FrameRepr {
///     fc: FrameControl::LlcAsync { priority: 0 },
///     dst: FddiAddr::station(2),
///     src: FddiAddr::station(0),
///     info: b"token ring".to_vec(),
/// }
/// .emit()
/// .unwrap();
/// ring.push_async(0, frame).unwrap();
/// ring.run_until(SimTime::from_ms(5));
/// assert_eq!(ring.take_rx(2).len(), 1);
/// ```
#[derive(Debug)]
pub struct Ring {
    stations: Vec<Station>,
    hop_latency: SimTime,
    events: EventQueue<RingEvent>,
    stats: RingStats,
}

impl Ring {
    /// Build the ring, run the claim process, and issue the first token
    /// from the claim winner.
    ///
    /// # Panics
    /// Panics on an empty station list or an unschedulable synchronous
    /// allocation (Σ sync + ring latency > TTRT) — a misconfiguration
    /// the claim process would beacon on in real hardware.
    pub fn new(config: RingConfig) -> Ring {
        assert!(!config.stations.is_empty(), "a ring needs at least one station");
        let n = config.stations.len();
        let hop_latency =
            SimTime::from_ns(config.ring_km * NS_PER_KM / n as u64) + config.station_latency;
        let ring_latency = SimTime::from_ns(hop_latency.as_ns() * n as u64);

        let bids: Vec<(FddiAddr, SimTime, SimTime)> = config
            .stations
            .iter()
            .enumerate()
            .map(|(i, s)| (FddiAddr::station(i as u32), s.t_req, s.sync_alloc))
            .collect();
        let claim = claim_process(&bids, ring_latency).expect("nonempty ring");
        assert!(
            claim.sync_slack.is_some(),
            "synchronous allocation unschedulable: sum(sync)+latency > TTRT"
        );
        let ttrt = claim.ttrt;

        let stations: Vec<Station> = config
            .stations
            .into_iter()
            .enumerate()
            .map(|(i, sc)| Station {
                addr: FddiAddr::station(i as u32),
                mac: MacTimers::new(SimTime::ZERO, ttrt, sc.sync_alloc),
                config: sc,
                sync_q: VecDeque::new(),
                async_q: Default::default(),
                rx: VecDeque::new(),
                stats: StationStats::default(),
                bypassed: false,
            })
            .collect();

        let mut events = EventQueue::new();
        // The claim winner issues the token; it first arrives at the
        // winner's downstream neighbour after one hop.
        let first = (claim.winner + 1) % n;
        events.push(hop_latency, RingEvent::Token(first));

        Ring {
            stations,
            hop_latency,
            events,
            stats: RingStats {
                ttrt,
                claim,
                rotation_us: Histogram::new(1, 65536),
                rotations: 0,
                recoveries: 0,
            },
        }
    }

    /// The negotiated TTRT.
    pub fn ttrt(&self) -> SimTime {
        self.stats.ttrt
    }

    /// The MAC address of station `i`.
    pub fn address(&self, station: usize) -> FddiAddr {
        self.stations[station].addr
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// Always false: rings have at least one station.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Enqueue a frame for synchronous transmission at `station`.
    /// Returns the frame back if the queue is full (counted as a drop).
    pub fn push_sync(&mut self, station: usize, frame: Vec<u8>) -> Result<(), Vec<u8>> {
        let s = &mut self.stations[station];
        if s.sync_q.len() >= s.config.sync_queue_frames {
            s.stats.queue_drops += 1;
            return Err(frame);
        }
        s.sync_q.push_back(frame);
        Ok(())
    }

    /// Enqueue a frame for asynchronous transmission at `station`. The
    /// priority comes from the frame's FC field (0 when absent).
    pub fn push_async(&mut self, station: usize, frame: Vec<u8>) -> Result<(), Vec<u8>> {
        let s = &mut self.stations[station];
        let depth: usize = s.async_q.iter().map(|q| q.len()).sum();
        if depth >= s.config.async_queue_frames {
            s.stats.queue_drops += 1;
            return Err(frame);
        }
        use gw_wire::fddi::FrameControl;
        let prio = match FrameControl::from_byte(frame[0]) {
            Ok(FrameControl::LlcAsync { priority }) => priority.min(7) as usize,
            // Every non-async class (and an undecodable FC octet) rides
            // the lowest queue; named so a new class is a build break.
            Ok(
                FrameControl::Token
                | FrameControl::MacClaim
                | FrameControl::MacBeacon
                | FrameControl::Smt
                | FrameControl::LlcSync,
            )
            | Err(_) => 0,
        };
        s.async_q[prio].push_back(frame);
        Ok(())
    }

    /// Occupancy of a station's transmit queues `(sync, async)` in frames.
    pub fn queue_depths(&self, station: usize) -> (usize, usize) {
        let s = &self.stations[station];
        (s.sync_q.len(), s.async_q.iter().map(|q| q.len()).sum())
    }

    /// Drain frames received at `station`.
    pub fn take_rx(&mut self, station: usize) -> Vec<Delivery> {
        self.stations[station].rx.drain(..).collect()
    }

    /// Frames waiting in a station's receive queue.
    pub fn rx_depth(&self, station: usize) -> usize {
        self.stations[station].rx.len()
    }

    /// Statistics registers of one station.
    pub fn station_stats(&self, station: usize) -> StationStats {
        self.stations[station].stats
    }

    /// Ring-wide statistics.
    pub fn stats(&self) -> &RingStats {
        &self.stats
    }

    /// Aggregated ring health counters (see [`RingHealthCounters`]).
    pub fn health_counters(&self) -> RingHealthCounters {
        let bypassed = self.stations.iter().filter(|s| s.bypassed).count() as u64;
        RingHealthCounters {
            ttrt_ns: self.stats.ttrt.as_ns(),
            rotations: self.stats.rotations,
            recoveries: self.stats.recoveries,
            bypassed_stations: bypassed,
            active_stations: self.stations.len() as u64 - bypassed,
            queue_drops: self.stations.iter().map(|s| s.stats.queue_drops).sum(),
        }
    }

    /// The active station immediately upstream of `station` on the ring.
    pub fn upstream_of(&self, station: usize) -> FddiAddr {
        let n = self.stations.len();
        let mut i = (station + n - 1) % n;
        while self.stations[i].bypassed {
            i = (i + n - 1) % n;
        }
        self.stations[i].addr
    }

    /// Build the station's SMT neighbor-information frame (NIF): a
    /// broadcast announcing the station and its upstream neighbor.
    /// The NPE runs this part of station management in software (§4.3).
    pub fn nif_frame(&self, station: usize) -> Vec<u8> {
        let s = &self.stations[station];
        let nif = crate::smt::Nif {
            station: s.addr,
            upstream: self.upstream_of(station),
            sync_capable: s.config.sync_alloc > SimTime::ZERO,
        };
        gw_wire::fddi::FrameRepr {
            fc: gw_wire::fddi::FrameControl::Smt,
            dst: FddiAddr::BROADCAST,
            src: s.addr,
            info: nif.encode(),
        }
        .emit()
        .expect("NIF fits any frame")
    }

    /// Engage a station's optical bypass relay: it stops transmitting
    /// and receiving, its queued frames are lost, and the surviving
    /// stations re-run the claim process (station management recovery,
    /// §4.3). The gateway (station 0) and at least one other station
    /// must remain.
    ///
    /// # Panics
    /// Panics when bypassing would leave fewer than two active stations.
    pub fn bypass_station(&mut self, station: usize) {
        assert!(
            self.stations.iter().enumerate().filter(|&(i, s)| !s.bypassed && i != station).count()
                >= 2,
            "a ring needs at least two active stations"
        );
        let s = &mut self.stations[station];
        s.bypassed = true;
        let depth: usize = s.async_q.iter().map(|q| q.len()).sum();
        s.stats.queue_drops += (s.sync_q.len() + depth) as u64;
        s.sync_q.clear();
        for q in &mut s.async_q {
            q.clear();
        }
        self.reclaim();
    }

    /// Disengage a station's bypass relay and re-run the claim process.
    pub fn reinsert_station(&mut self, station: usize) {
        self.stations[station].bypassed = false;
        self.reclaim();
    }

    /// True when the station participates in the ring.
    pub fn is_active(&self, station: usize) -> bool {
        !self.stations[station].bypassed
    }

    /// Re-run the claim process over active stations and restart every
    /// active MAC at the new TTRT.
    fn reclaim(&mut self) {
        let now = self.events.now();
        let n = self.stations.len();
        let ring_latency = SimTime::from_ns(self.hop_latency.as_ns() * n as u64);
        let bids: Vec<(FddiAddr, SimTime, SimTime)> = self
            .stations
            .iter()
            .filter(|s| !s.bypassed)
            .map(|s| (s.addr, s.config.t_req, s.config.sync_alloc))
            .collect();
        let claim = claim_process(&bids, ring_latency).expect("active stations remain");
        let ttrt = claim.ttrt;
        for s in self.stations.iter_mut().filter(|s| !s.bypassed) {
            s.mac = MacTimers::new(now, ttrt, s.config.sync_alloc);
        }
        self.stats.ttrt = ttrt;
        self.stats.claim = claim;
        self.stats.recoveries += 1;
    }

    fn frame_time(len: usize) -> SimTime {
        SimTime::from_ns(((len + FRAME_OVERHEAD_OCTETS) as u64) * NS_PER_OCTET)
    }

    fn token_time() -> SimTime {
        SimTime::from_ns(TOKEN_OCTETS as u64 * NS_PER_OCTET)
    }

    /// Transmit `frame` from station `src` starting at `start`; schedule
    /// deliveries at every listening station. Returns the transmission
    /// duration.
    fn transmit(&mut self, src: usize, start: SimTime, frame: Vec<u8>) -> SimTime {
        let dur = Self::frame_time(frame.len());
        let view = Frame::new_unchecked(&frame[..]);
        let dst = view.dst();
        let n = self.stations.len();
        // Walk downstream from src; the frame is stripped at src, so it
        // passes each other station exactly once.
        let mut deliveries = Vec::new();
        for hop in 1..n {
            let idx = (src + hop) % n;
            if !self.stations[idx].bypassed && self.stations[idx].listens_to(dst) {
                let arrival = start + SimTime::from_ns(self.hop_latency.as_ns() * hop as u64) + dur;
                deliveries.push((arrival, idx));
            }
        }
        let len = frame.len();
        for (arrival, idx) in deliveries {
            self.events
                .push(arrival, RingEvent::Deliver { to: idx, from: src, frame: frame.clone() });
        }
        let s = &mut self.stations[src];
        s.stats.octets_tx += len as u64;
        dur
    }

    /// Process a single event. Returns the time processed, or `None`
    /// when no events remain (cannot happen on a healthy ring — the
    /// token always circulates).
    pub fn step(&mut self) -> Option<SimTime> {
        let (now, event) = self.events.pop()?;
        match event {
            RingEvent::Deliver { to, from, frame } => {
                let s = &mut self.stations[to];
                if s.bypassed {
                    return Some(now);
                }
                s.stats.frames_rx += 1;
                s.stats.octets_rx += frame.len() as u64;
                s.rx.push_back(Delivery { time: now, to, from, frame });
            }
            RingEvent::Token(i) => {
                if self.stations[i].bypassed {
                    // The bypass relay repeats the token downstream.
                    let next = (i + 1) % self.stations.len();
                    let arrival = now + self.hop_latency;
                    self.events.push(arrival, RingEvent::Token(next));
                    return Some(now);
                }
                if i == 0 {
                    if let Some(rot) = self.stations[0].mac.rotation_time(now) {
                        self.stats.rotation_us.record(rot.as_ns() / 1_000);
                        self.stats.rotations += 1;
                    }
                }
                let disposition = self.stations[i].mac.token_arrival(now);
                self.stations[i].stats.tokens_seen += 1;

                let mut t = now;
                // Synchronous transmission within the allocation: a frame
                // may start only if it completes within the allocation.
                let mut sync_used = SimTime::ZERO;
                while let Some(front_len) = self.stations[i].sync_q.front().map(|f| f.len()) {
                    let ft = Self::frame_time(front_len);
                    if sync_used + ft > disposition.sync_budget {
                        break;
                    }
                    let frame = self.stations[i].sync_q.pop_front().expect("checked front");
                    let dur = self.transmit(i, t, frame);
                    t += dur;
                    sync_used += dur;
                    self.stations[i].stats.sync_frames_tx += 1;
                }
                // Asynchronous transmission while THT has not expired: a
                // frame may *start* while budget remains and then runs to
                // completion (X3.139 THT semantics). Priorities serve
                // highest-first, and a priority-p frame may only start
                // while the remaining THT exceeds T_Pri[p].
                let mut async_used = SimTime::ZERO;
                'tht: while async_used < disposition.tht_budget {
                    let remaining = disposition.tht_budget - async_used;
                    let mut sent_one = false;
                    for prio in (0..8usize).rev() {
                        if remaining.as_ns() <= self.stations[i].config.t_pri[prio].as_ns() {
                            continue; // threshold bars this priority now
                        }
                        if let Some(frame) = self.stations[i].async_q[prio].pop_front() {
                            let dur = self.transmit(i, t, frame);
                            t += dur;
                            async_used += dur;
                            self.stations[i].stats.async_frames_tx += 1;
                            sent_one = true;
                            break;
                        }
                    }
                    if !sent_one {
                        break 'tht;
                    }
                }
                // Release the token downstream.
                let next = (i + 1) % self.stations.len();
                let arrival = t + Self::token_time() + self.hop_latency;
                self.events.push(arrival, RingEvent::Token(next));
            }
        }
        Some(now)
    }

    /// Run until simulated time reaches `until` (events at exactly
    /// `until` are processed).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_wire::fddi::{FrameControl, FrameRepr};

    fn data_frame(src: usize, dst: FddiAddr, len: usize, sync: bool) -> Vec<u8> {
        FrameRepr {
            fc: if sync { FrameControl::LlcSync } else { FrameControl::LlcAsync { priority: 0 } },
            dst,
            src: FddiAddr::station(src as u32),
            info: vec![0xAB; len],
        }
        .emit()
        .unwrap()
    }

    fn small_ring(n: usize) -> Ring {
        Ring::new(RingConfig::uniform(n, 10))
    }

    #[test]
    fn token_circulates_on_idle_ring() {
        let mut ring = small_ring(4);
        ring.run_until(SimTime::from_ms(10));
        for i in 0..4 {
            assert!(ring.station_stats(i).tokens_seen > 100, "station {i}");
        }
        assert!(ring.stats().rotations > 100);
    }

    #[test]
    fn idle_rotation_time_is_ring_latency() {
        let mut ring = small_ring(4);
        ring.run_until(SimTime::from_ms(50));
        // Idle rotation = n*(hop latency + token time) — far below TTRT.
        let mean_us = ring.stats().rotation_us.mean();
        let ttrt_us = ring.ttrt().as_ns() as f64 / 1000.0;
        assert!(mean_us < ttrt_us / 10.0, "idle rotation {mean_us}us vs TTRT {ttrt_us}us");
    }

    #[test]
    fn point_to_point_delivery() {
        let mut ring = small_ring(4);
        let frame = data_frame(0, FddiAddr::station(2), 100, false);
        ring.push_async(0, frame.clone()).unwrap();
        ring.run_until(SimTime::from_ms(5));
        let rx = ring.take_rx(2);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].frame, frame);
        assert_eq!(rx[0].from, 0);
        // Nobody else received it.
        for i in [0usize, 1, 3] {
            assert!(ring.take_rx(i).is_empty(), "station {i}");
        }
    }

    #[test]
    fn broadcast_reaches_everyone_but_source() {
        let mut ring = small_ring(5);
        ring.push_async(1, data_frame(1, FddiAddr::BROADCAST, 50, false)).unwrap();
        ring.run_until(SimTime::from_ms(5));
        for i in [0usize, 2, 3, 4] {
            assert_eq!(ring.take_rx(i).len(), 1, "station {i}");
        }
        assert!(ring.take_rx(1).is_empty(), "source strips its own frame");
    }

    #[test]
    fn group_addressing() {
        let mut config = RingConfig::uniform(4, 10);
        let g = FddiAddr::group(9);
        config.stations[1].groups.push(g);
        config.stations[3].groups.push(g);
        let mut ring = Ring::new(config);
        ring.push_async(0, data_frame(0, g, 80, false)).unwrap();
        ring.run_until(SimTime::from_ms(5));
        assert_eq!(ring.take_rx(1).len(), 1);
        assert_eq!(ring.take_rx(3).len(), 1);
        assert!(ring.take_rx(2).is_empty());
    }

    #[test]
    fn sync_requires_allocation() {
        // Station 0 has no sync allocation: its sync frame never leaves.
        let mut config = RingConfig::uniform(3, 10);
        config.stations[1].sync_alloc = SimTime::from_us(100);
        let mut ring = Ring::new(config);
        ring.push_sync(0, data_frame(0, FddiAddr::station(2), 60, true)).unwrap();
        ring.push_sync(1, data_frame(1, FddiAddr::station(2), 60, true)).unwrap();
        ring.run_until(SimTime::from_ms(20));
        assert_eq!(ring.station_stats(0).sync_frames_tx, 0);
        assert_eq!(ring.station_stats(1).sync_frames_tx, 1);
        assert_eq!(ring.take_rx(2).len(), 1);
    }

    #[test]
    fn async_transmission_consumes_tht() {
        let mut ring = small_ring(3);
        for _ in 0..10 {
            ring.push_async(0, data_frame(0, FddiAddr::station(1), 500, false)).unwrap();
        }
        ring.run_until(SimTime::from_ms(20));
        assert_eq!(ring.station_stats(0).async_frames_tx, 10);
        assert_eq!(ring.take_rx(1).len(), 10);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut config = RingConfig::uniform(2, 1);
        config.stations[0].async_queue_frames = 2;
        let mut ring = Ring::new(config);
        let f = data_frame(0, FddiAddr::station(1), 40, false);
        assert!(ring.push_async(0, f.clone()).is_ok());
        assert!(ring.push_async(0, f.clone()).is_ok());
        assert!(ring.push_async(0, f.clone()).is_err());
        assert_eq!(ring.station_stats(0).queue_drops, 1);
    }

    #[test]
    fn health_counters_aggregate_ring_state() {
        let mut config = RingConfig::uniform(3, 1);
        config.stations[0].async_queue_frames = 1;
        let mut ring = Ring::new(config);
        let f = data_frame(0, FddiAddr::station(1), 40, false);
        ring.push_async(0, f.clone()).unwrap();
        assert!(ring.push_async(0, f).is_err());
        ring.run_until(SimTime::from_ms(2));
        ring.bypass_station(2);
        let h = ring.health_counters();
        assert_eq!(h.ttrt_ns, ring.ttrt().as_ns());
        assert!(h.rotations > 0, "token circulated");
        assert_eq!(h.recoveries, 1, "bypass forced a re-claim");
        assert_eq!(h.bypassed_stations, 1);
        assert_eq!(h.active_stations, 2);
        assert_eq!(h.queue_drops, 1, "station 0's enqueue drop is visible ring-wide");
    }

    #[test]
    fn ttrt_is_minimum_bid() {
        let mut config = RingConfig::uniform(3, 10);
        config.stations[0].t_req = SimTime::from_ms(8);
        config.stations[1].t_req = SimTime::from_ms(4);
        config.stations[2].t_req = SimTime::from_ms(6);
        let ring = Ring::new(config);
        assert_eq!(ring.ttrt(), SimTime::from_ms(4));
        assert_eq!(ring.stats().claim.winner, 1);
    }

    #[test]
    #[should_panic(expected = "unschedulable")]
    fn oversubscribed_sync_panics() {
        let mut config = RingConfig::uniform(2, 10);
        config.stations[0].t_req = SimTime::from_us(100);
        config.stations[0].sync_alloc = SimTime::from_us(80);
        config.stations[1].sync_alloc = SimTime::from_us(80);
        let _ = Ring::new(config);
    }

    /// Johnson's bound (paper ref \[6\]): token rotation never exceeds
    /// 2×TTRT, even under full asynchronous saturation.
    #[test]
    fn rotation_bounded_by_twice_ttrt_under_saturation() {
        let mut config = RingConfig::uniform(8, 20);
        for s in &mut config.stations {
            s.t_req = SimTime::from_ms(4);
            s.async_queue_frames = 10_000;
        }
        let mut ring = Ring::new(config);
        // Saturate every station with max-size frames.
        for i in 0..8 {
            for _ in 0..200 {
                ring.push_async(
                    i,
                    data_frame(i, FddiAddr::station(((i + 1) % 8) as u32), 4400, false),
                )
                .unwrap();
            }
        }
        ring.run_until(SimTime::from_ms(200));
        let max_rot_us = ring.stats().rotation_us.max();
        let bound_us = 2 * ring.ttrt().as_ns() / 1000;
        assert!(max_rot_us <= bound_us, "max rotation {max_rot_us}us exceeds 2*TTRT {bound_us}us");
        assert!(ring.stats().rotations > 10);
    }

    /// Synchronous traffic keeps flowing (its guarantee) even when the
    /// ring is saturated with asynchronous traffic.
    #[test]
    fn sync_guarantee_survives_async_overload() {
        let mut config = RingConfig::uniform(4, 10);
        config.stations[0].sync_alloc = SimTime::from_us(400);
        config.stations[0].sync_queue_frames = 10_000;
        for s in &mut config.stations {
            s.t_req = SimTime::from_ms(4);
            s.async_queue_frames = 10_000;
        }
        let mut ring = Ring::new(config);
        for _ in 0..500 {
            ring.push_sync(0, data_frame(0, FddiAddr::station(1), 1000, true)).unwrap();
        }
        for i in 1..4 {
            for _ in 0..2000 {
                ring.push_async(i, data_frame(i, FddiAddr::station(0), 4000, false)).unwrap();
            }
        }
        ring.run_until(SimTime::from_ms(100));
        let sync_tx = ring.station_stats(0).sync_frames_tx;
        assert!(sync_tx > 100, "synchronous class starved: only {sync_tx} frames in 100ms");
    }

    #[test]
    fn bypassed_station_is_skipped_and_ring_survives() {
        let mut config = RingConfig::uniform(4, 10);
        config.stations[2].t_req = SimTime::from_ms(4); // claim winner
        let mut ring = Ring::new(config);
        assert_eq!(ring.ttrt(), SimTime::from_ms(4));
        ring.run_until(SimTime::from_ms(5));
        // Station 2 fails; its bypass relay engages.
        ring.push_async(2, data_frame(2, FddiAddr::station(1), 100, false)).unwrap();
        ring.bypass_station(2);
        assert!(!ring.is_active(2));
        assert_eq!(ring.stats().recoveries, 1);
        // TTRT re-negotiated without station 2's 4 ms bid.
        assert_eq!(ring.ttrt(), SimTime::from_ms(8));
        // Traffic between survivors flows; the bypassed station gets
        // neither tokens nor frames.
        let tokens_before = ring.station_stats(2).tokens_seen;
        ring.push_async(0, data_frame(0, FddiAddr::station(1), 200, false)).unwrap();
        ring.push_async(1, data_frame(1, FddiAddr::station(2), 200, false)).unwrap();
        ring.run_until(SimTime::from_ms(20));
        assert_eq!(ring.take_rx(1).len(), 1);
        assert!(ring.take_rx(2).is_empty(), "bypassed stations receive nothing");
        assert_eq!(ring.station_stats(2).tokens_seen, tokens_before);
        // Reinsertion restores participation and the original TTRT.
        ring.reinsert_station(2);
        assert_eq!(ring.ttrt(), SimTime::from_ms(4));
        assert_eq!(ring.stats().recoveries, 2);
        ring.push_async(0, data_frame(0, FddiAddr::station(2), 150, false)).unwrap();
        ring.run_until(SimTime::from_ms(40));
        assert_eq!(ring.take_rx(2).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two active stations")]
    fn cannot_bypass_below_two_stations() {
        let mut ring = small_ring(2);
        ring.run_until(SimTime::from_ms(1));
        ring.bypass_station(1);
    }

    #[test]
    fn bypass_drops_queued_frames() {
        let mut ring = small_ring(4);
        // Queue frames at station 3 before any token can serve them.
        for _ in 0..3 {
            ring.push_async(3, data_frame(3, FddiAddr::station(1), 100, false)).unwrap();
        }
        ring.bypass_station(3);
        assert_eq!(ring.station_stats(3).queue_drops, 3);
        ring.run_until(SimTime::from_ms(10));
        assert!(ring.take_rx(1).is_empty());
    }

    #[test]
    fn higher_async_priority_served_first() {
        let mut ring = small_ring(3);
        // Queue a low-priority frame first, then a high-priority one.
        ring.push_async(0, data_frame_prio(0, 1, 300, 0)).unwrap();
        ring.push_async(0, data_frame_prio(0, 1, 300, 7)).unwrap();
        ring.run_until(SimTime::from_ms(5));
        let rx = ring.take_rx(1);
        assert_eq!(rx.len(), 2);
        let prio_of = |f: &[u8]| match gw_wire::fddi::FrameControl::from_byte(f[0]).unwrap() {
            FrameControl::LlcAsync { priority } => priority,
            _ => 99,
        };
        assert_eq!(prio_of(&rx[0].frame), 7, "high priority transmits first");
        assert_eq!(prio_of(&rx[1].frame), 0);
    }

    #[test]
    fn t_pri_threshold_starves_low_priority_on_loaded_ring() {
        // Low priority requires > 3.5 ms of remaining THT to start; on a
        // ring loaded near its 4 ms TTRT the THT is always below that, so
        // only the high-priority class gets through.
        let mut config = RingConfig::uniform(4, 10);
        for s in &mut config.stations {
            s.t_req = SimTime::from_ms(4);
            s.async_queue_frames = 100_000;
        }
        config.stations[0].t_pri[0] = SimTime::from_us(3500);
        let mut ring = Ring::new(config);
        // Background load from stations 1-3 keeps rotations near TTRT.
        for i in 1..4 {
            for _ in 0..1000 {
                ring.push_async(i, data_frame_prio(i, (i + 1) % 4, 4000, 3)).unwrap();
            }
        }
        for _ in 0..50 {
            ring.push_async(0, data_frame_prio(0, 1, 500, 0)).unwrap();
            ring.push_async(0, data_frame_prio(0, 1, 500, 7)).unwrap();
        }
        ring.run_until(SimTime::from_ms(100));
        let rx = ring.take_rx(1);
        let high = rx
            .iter()
            .filter(|d| {
                matches!(
                    gw_wire::fddi::FrameControl::from_byte(d.frame[0]),
                    Ok(FrameControl::LlcAsync { priority: 7 })
                )
            })
            .count();
        let low = rx.len() - high;
        assert_eq!(high, 50, "unrestricted priority all delivered");
        assert!(low < 50, "threshold must bar low priority sometimes: {low}");
    }

    fn data_frame_prio(src: usize, dst: usize, len: usize, prio: u8) -> Vec<u8> {
        FrameRepr {
            fc: FrameControl::LlcAsync { priority: prio },
            dst: FddiAddr::station(dst as u32),
            src: FddiAddr::station(src as u32),
            info: vec![0xAB; len],
        }
        .emit()
        .unwrap()
    }

    #[test]
    fn nif_round_builds_ring_map_and_tracks_bypass() {
        use crate::smt::{Nif, SmtMonitor};
        let mut config = RingConfig::uniform(5, 10);
        config.stations[0].sync_alloc = SimTime::from_us(100);
        let mut ring = Ring::new(config);
        let mut monitor = SmtMonitor::new(ring.address(0));
        let nif_round = |ring: &mut Ring, monitor: &mut SmtMonitor| {
            for i in 0..ring.len() {
                if ring.is_active(i) {
                    let f = ring.nif_frame(i);
                    let _ = ring.push_async(i, f);
                }
            }
            // The monitor's own NIF never loops back (source stripping);
            // SMT observes it locally.
            let own =
                Nif::decode(gw_wire::fddi::Frame::new_unchecked(&ring.nif_frame(0)[..]).info())
                    .unwrap();
            let now = ring.now();
            monitor.observe(now, &own);
            ring.run_until(now + SimTime::from_ms(10));
            for d in ring.take_rx(0) {
                let frame = gw_wire::fddi::Frame::new_unchecked(&d.frame[..]);
                if frame.frame_control() == Ok(FrameControl::Smt) {
                    let nif = Nif::decode(frame.info()).unwrap();
                    monitor.observe(d.time, &nif);
                }
            }
        };
        nif_round(&mut ring, &mut monitor);
        let map = monitor.ring_map().expect("full map from one NIF round");
        assert_eq!(map.len(), 5);
        assert_eq!(map[0], ring.address(0));
        assert_eq!(monitor.sync_capable(ring.address(0)), Some(true));
        assert_eq!(monitor.sync_capable(ring.address(3)), Some(false));

        // Station 2 fails; the next NIF round shows the shrunken ring.
        ring.bypass_station(2);
        monitor.freshness = SimTime::from_ms(15);
        nif_round(&mut ring, &mut monitor);
        monitor.expire(ring.now());
        let map = monitor.ring_map().expect("map after bypass");
        assert_eq!(map.len(), 4);
        assert!(!map.contains(&ring.address(2)));
        // Station 3's upstream is now station 1.
        assert_eq!(ring.upstream_of(3), ring.address(1));
    }

    #[test]
    fn determinism_same_config_same_trace() {
        let run = || {
            let mut ring = small_ring(5);
            for i in 0..5usize {
                ring.push_async(
                    i,
                    data_frame(i, FddiAddr::station(((i + 2) % 5) as u32), 300, false),
                )
                .unwrap();
            }
            ring.run_until(SimTime::from_ms(10));
            (0..5).map(|i| (ring.station_stats(i), ring.take_rx(i))).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn utilization_approaches_line_rate() {
        // One saturated sender, large frames: goodput should approach
        // 100 Mb/s less token-passing overhead.
        let mut config = RingConfig::uniform(2, 2);
        config.stations[0].t_req = SimTime::from_ms(8);
        config.stations[0].async_queue_frames = 100_000;
        let mut ring = Ring::new(config);
        for _ in 0..4000 {
            ring.push_async(0, data_frame(0, FddiAddr::station(1), 4400, false)).unwrap();
        }
        let horizon = SimTime::from_ms(100);
        ring.run_until(horizon);
        let rx_octets = ring.station_stats(1).octets_rx;
        let goodput = rx_octets as f64 * 8.0 / horizon.as_secs_f64();
        assert!(goodput > 90.0e6, "goodput {:.1} Mb/s too far below line rate", goodput / 1e6);
    }
}
