//! Station management (SMT) neighbor notification.
//!
//! "Station and connection management are not implemented in the
//! SUPERNET chip set" (§4.3) — they run in software on the NPE. The
//! piece of SMT the gateway actually needs is **neighbor notification**
//! (the NIF protocol): every station periodically broadcasts a frame
//! naming itself and its upstream neighbor address (UNA). From the
//! collected NIFs any station can assemble a **ring map** — the ordered
//! list of active stations — and detect **duplicate addresses**, the
//! two facilities ring operators rely on for fault isolation.
//!
//! The [`crate::ring::Ring`] produces NIF frames with the true upstream
//! neighbor (it knows the physical order); the [`SmtMonitor`] consumes
//! whatever SMT frames a station's receive queue delivers.

use gw_sim::time::SimTime;
use gw_wire::fddi::FddiAddr;
use gw_wire::{Error, Result};
use std::collections::HashMap;

/// NIF payload size: station (6) + UNA (6) + flags (1).
pub const NIF_SIZE: usize = 13;

/// A neighbor-information announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nif {
    /// The announcing station.
    pub station: FddiAddr,
    /// Its upstream neighbor address (UNA).
    pub upstream: FddiAddr,
    /// The station transmits synchronous traffic.
    pub sync_capable: bool,
}

impl Nif {
    /// Encode to the SMT frame's info field.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(NIF_SIZE);
        out.extend_from_slice(&self.station.0);
        out.extend_from_slice(&self.upstream.0);
        out.push(self.sync_capable as u8);
        out
    }

    /// Decode from an SMT frame's info field.
    pub fn decode(bytes: &[u8]) -> Result<Nif> {
        if bytes.len() < NIF_SIZE {
            return Err(Error::Truncated);
        }
        Ok(Nif {
            station: FddiAddr(bytes[0..6].try_into().expect("6 octets")),
            upstream: FddiAddr(bytes[6..12].try_into().expect("6 octets")),
            sync_capable: bytes[12] != 0,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    upstream: FddiAddr,
    sync_capable: bool,
    heard_at: SimTime,
}

/// Collects NIFs and answers ring-map and duplicate-address queries.
#[derive(Debug)]
pub struct SmtMonitor {
    my_addr: FddiAddr,
    entries: HashMap<FddiAddr, Entry>,
    /// Addresses announced with conflicting upstream neighbors within
    /// one freshness window — the duplicate-address signature.
    duplicates: Vec<FddiAddr>,
    /// Entries older than this are dropped by [`SmtMonitor::expire`].
    pub freshness: SimTime,
}

impl SmtMonitor {
    /// A monitor running at `my_addr`.
    pub fn new(my_addr: FddiAddr) -> SmtMonitor {
        SmtMonitor {
            my_addr,
            entries: HashMap::new(),
            duplicates: Vec::new(),
            freshness: SimTime::from_secs(30),
        }
    }

    /// Ingest one NIF heard at `now`.
    pub fn observe(&mut self, now: SimTime, nif: &Nif) {
        if let Some(prev) = self.entries.get(&nif.station) {
            // The same address claiming two different upstream neighbors
            // while both claims are fresh means two physical stations
            // share the address.
            if prev.upstream != nif.upstream
                && now.saturating_sub(prev.heard_at) < self.freshness
                && !self.duplicates.contains(&nif.station)
            {
                self.duplicates.push(nif.station);
            }
        }
        self.entries.insert(
            nif.station,
            Entry { upstream: nif.upstream, sync_capable: nif.sync_capable, heard_at: now },
        );
    }

    /// Drop entries not refreshed within the freshness window.
    pub fn expire(&mut self, now: SimTime) {
        let window = self.freshness;
        self.entries.retain(|_, e| now.saturating_sub(e.heard_at) < window);
    }

    /// The ordered ring map starting at this monitor's own station,
    /// walking upstream announcements downstream: each station's
    /// successor is the one that names it as UNA. `None` until the
    /// collected NIFs close a consistent cycle through `my_addr`.
    pub fn ring_map(&self) -> Option<Vec<FddiAddr>> {
        if !self.entries.contains_key(&self.my_addr) {
            return None;
        }
        // successor[x] = station whose UNA is x.
        let mut successor: HashMap<FddiAddr, FddiAddr> = HashMap::new();
        for (&station, entry) in &self.entries {
            if successor.insert(entry.upstream, station).is_some() {
                return None; // two stations claim the same upstream: inconsistent
            }
        }
        let mut map = vec![self.my_addr];
        let mut cur = self.my_addr;
        loop {
            let &next = successor.get(&cur)?;
            if next == self.my_addr {
                break;
            }
            if map.contains(&next) {
                return None; // inner loop that skips my_addr: inconsistent
            }
            map.push(next);
            cur = next;
            if map.len() > self.entries.len() {
                return None;
            }
        }
        (map.len() == self.entries.len()).then_some(map)
    }

    /// Stations whose address appears duplicated.
    pub fn duplicates(&self) -> &[FddiAddr] {
        &self.duplicates
    }

    /// Number of stations currently known.
    pub fn known(&self) -> usize {
        self.entries.len()
    }

    /// Whether a known station announced synchronous capability.
    pub fn sync_capable(&self, station: FddiAddr) -> Option<bool> {
        self.entries.get(&station).map(|e| e.sync_capable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(i: u32) -> FddiAddr {
        FddiAddr::station(i)
    }

    fn nif(i: u32, up: u32, sync: bool) -> Nif {
        Nif { station: st(i), upstream: st(up), sync_capable: sync }
    }

    #[test]
    fn nif_codec_roundtrip() {
        let n = nif(3, 2, true);
        assert_eq!(Nif::decode(&n.encode()).unwrap(), n);
        assert_eq!(Nif::decode(&[0u8; 12]), Err(Error::Truncated));
    }

    #[test]
    fn ring_map_from_complete_nif_set() {
        // Ring order 0 -> 1 -> 2 -> 3 -> 0; upstream of i is i-1.
        let mut m = SmtMonitor::new(st(0));
        assert_eq!(m.ring_map(), None, "nothing known yet");
        for i in 0..4u32 {
            let up = (i + 3) % 4;
            m.observe(SimTime::from_secs(1), &nif(i, up, i == 0));
        }
        let map = m.ring_map().expect("complete");
        assert_eq!(map, vec![st(0), st(1), st(2), st(3)]);
        assert_eq!(m.known(), 4);
        assert_eq!(m.sync_capable(st(0)), Some(true));
        assert_eq!(m.sync_capable(st(2)), Some(false));
    }

    #[test]
    fn incomplete_set_yields_no_map() {
        let mut m = SmtMonitor::new(st(0));
        m.observe(SimTime::ZERO, &nif(0, 3, false));
        m.observe(SimTime::ZERO, &nif(1, 0, false));
        // Stations 2 and 3 silent: the cycle cannot close.
        assert_eq!(m.ring_map(), None);
    }

    #[test]
    fn map_updates_after_bypass() {
        let mut m = SmtMonitor::new(st(0));
        for i in 0..4u32 {
            m.observe(SimTime::from_secs(1), &nif(i, (i + 3) % 4, false));
        }
        assert_eq!(m.ring_map().unwrap().len(), 4);
        // Station 2 is bypassed: station 3's UNA becomes 1, and station
        // 2's entry expires.
        m.freshness = SimTime::from_secs(10);
        m.observe(SimTime::from_secs(15), &nif(3, 1, false));
        m.observe(SimTime::from_secs(15), &nif(0, 3, false));
        m.observe(SimTime::from_secs(15), &nif(1, 0, false));
        m.expire(SimTime::from_secs(16));
        let map = m.ring_map().expect("shrunken ring still closes");
        assert_eq!(map, vec![st(0), st(1), st(3)]);
    }

    #[test]
    fn duplicate_address_detected() {
        let mut m = SmtMonitor::new(st(0));
        // Two physical stations both claim address 5 with different
        // upstream neighbors, within the freshness window.
        m.observe(SimTime::from_secs(1), &nif(5, 1, false));
        m.observe(SimTime::from_secs(2), &nif(5, 3, false));
        assert_eq!(m.duplicates(), &[st(5)]);
        // A refresh from the same place is not a duplicate.
        let mut m2 = SmtMonitor::new(st(0));
        m2.observe(SimTime::from_secs(1), &nif(5, 1, false));
        m2.observe(SimTime::from_secs(2), &nif(5, 1, false));
        assert!(m2.duplicates().is_empty());
    }

    #[test]
    fn stale_entries_expire() {
        let mut m = SmtMonitor::new(st(0));
        m.freshness = SimTime::from_secs(5);
        m.observe(SimTime::ZERO, &nif(0, 1, false));
        m.observe(SimTime::from_secs(4), &nif(1, 0, false));
        m.expire(SimTime::from_secs(6));
        assert_eq!(m.known(), 1, "only the fresh entry survives");
    }
}
