//! Property tests for the timed-token ring: protocol invariants that
//! must hold for *any* configuration and workload.

use gw_fddi::ring::{Ring, RingConfig};
use gw_sim::time::SimTime;
use gw_wire::fddi::{FddiAddr, FrameControl, FrameRepr};
use proptest::prelude::*;

fn frame(src: usize, dst: usize, len: usize, prio: u8) -> Vec<u8> {
    FrameRepr {
        fc: FrameControl::LlcAsync { priority: prio },
        dst: FddiAddr::station(dst as u32),
        src: FddiAddr::station(src as u32),
        info: vec![0x5A; len],
    }
    .emit()
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Johnson's bound holds for any station count, ring length, TTRT,
    /// and offered load.
    #[test]
    fn rotation_never_exceeds_twice_ttrt(
        n in 2usize..12,
        ring_km in 1u64..60,
        ttrt_ms in 2u64..20,
        load in proptest::collection::vec((0usize..12, 64usize..4000, 0u8..8), 0..60),
    ) {
        let mut cfg = RingConfig::uniform(n, ring_km);
        for s in &mut cfg.stations {
            s.t_req = SimTime::from_ms(ttrt_ms);
            s.async_queue_frames = 10_000;
        }
        let mut ring = Ring::new(cfg);
        for (src, len, prio) in load {
            let src = src % n;
            let dst = (src + 1) % n;
            let _ = ring.push_async(src, frame(src, dst, len, prio));
        }
        ring.run_until(SimTime::from_ms(200));
        let max_us = ring.stats().rotation_us.max();
        prop_assert!(
            max_us <= 2 * ttrt_ms * 1000,
            "max rotation {max_us}us > 2*TTRT with n={n}"
        );
    }

    /// Conservation: every point-to-point frame transmitted is received
    /// exactly once — no duplication, no loss on a healthy ring.
    #[test]
    fn frames_conserved(
        n in 3usize..10,
        sends in proptest::collection::vec((0usize..10, 1usize..10, 100usize..2000), 1..40),
    ) {
        let mut cfg = RingConfig::uniform(n, 10);
        for s in &mut cfg.stations {
            s.async_queue_frames = 10_000;
        }
        let mut ring = Ring::new(cfg);
        let mut expected = vec![0usize; n];
        for (src, hop, len) in sends {
            let src = src % n;
            let dst = (src + 1 + hop % (n - 1)) % n;
            if dst == src {
                continue;
            }
            if ring.push_async(src, frame(src, dst, len, 0)).is_ok() {
                expected[dst] += 1;
            }
        }
        ring.run_until(SimTime::from_ms(500));
        for (station, &want) in expected.iter().enumerate() {
            let got = ring.take_rx(station).len();
            prop_assert_eq!(got, want, "station {}", station);
        }
    }

    /// The synchronous class always delivers its allocation's worth,
    /// regardless of competing async load.
    #[test]
    fn sync_class_never_starves(
        n in 3usize..8,
        async_frames in 0usize..500,
    ) {
        let mut cfg = RingConfig::uniform(n, 10);
        for s in &mut cfg.stations {
            s.t_req = SimTime::from_ms(8);
            s.async_queue_frames = 10_000;
        }
        cfg.stations[0].sync_alloc = SimTime::from_us(200);
        cfg.stations[0].sync_queue_frames = 1000;
        let mut ring = Ring::new(cfg);
        let sync_sends = 50usize;
        for _ in 0..sync_sends {
            let f = FrameRepr {
                fc: FrameControl::LlcSync,
                dst: FddiAddr::station(1),
                src: FddiAddr::station(0),
                info: vec![0; 500],
            }
            .emit()
            .unwrap();
            ring.push_sync(0, f).unwrap();
        }
        for k in 0..async_frames {
            let src = 1 + k % (n - 1);
            let _ = ring.push_async(src, frame(src, (src + 1) % n, 4000, 0));
        }
        ring.run_until(SimTime::from_ms(300));
        prop_assert_eq!(ring.station_stats(0).sync_frames_tx as usize, sync_sends);
    }

    /// Determinism: identical configuration and sends produce identical
    /// statistics, whatever they are.
    #[test]
    fn ring_is_deterministic(
        n in 2usize..8,
        sends in proptest::collection::vec((0usize..8, 64usize..1500), 0..30),
    ) {
        let run = || {
            let mut ring = Ring::new(RingConfig::uniform(n, 15));
            for &(src, len) in &sends {
                let src = src % n;
                let _ = ring.push_async(src, frame(src, (src + 1) % n, len, 0));
            }
            ring.run_until(SimTime::from_ms(100));
            (0..n).map(|i| ring.station_stats(i)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
