//! The depth-first search over interleavings: run, backtrack, rerun.
//!
//! [`explore`] repeatedly executes the scenario closure, each time
//! steering the schedule along a recorded trail of choice points. At
//! the end of a clean execution the trail is advanced like an odometer
//! — the deepest choice point with an unexplored, budget-respecting
//! alternative is bumped and everything below it is discarded — until
//! the space within the preemption bound is exhausted.
//!
//! The preemption bound counts involuntary context switches: picking a
//! thread other than the current runner *while the current runner is
//! still enabled*. Switches at blocking or thread exit are free. This
//! is the CHESS insight — almost every real concurrency bug manifests
//! within two or three preemptions — and it is what keeps exhaustive
//! runs of the ring and barrier protocols inside `cargo test` budgets.

use crate::sim::{Choice, Engine, Sim};
use std::sync::Arc;

/// Exploration budgets. `Default` is tuned for the protocol sizes this
/// workspace checks (capacity 2–4 rings, 2 threads, ≤6 operations per
/// side).
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum involuntary context switches per execution (see module
    /// docs). Raising it multiplies the execution count steeply.
    pub preemption_bound: usize,
    /// Maximum scheduled operations in a single execution before a
    /// [`ConvictionKind::StepBudget`] conviction — the stand-in for
    /// livelock.
    pub max_steps: usize,
    /// Maximum executions before giving up with `complete: false`
    /// (still no conviction — the space was just too large).
    pub max_executions: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options { preemption_bound: 2, max_steps: 20_000, max_executions: 200_000 }
    }
}

/// Why an execution was convicted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConvictionKind {
    /// Vector-clock happens-before violation on an [`crate::MCell`].
    DataRace,
    /// Every live thread parked with no enabled wake.
    Deadlock,
    /// An end-of-execution oracle returned `Err`, or scenario code
    /// called [`crate::Thr::convict`].
    Oracle,
    /// Scenario code panicked (assertion, overflow, index…).
    Panic,
    /// One execution exceeded [`Options::max_steps`] operations.
    StepBudget,
}

/// A failed execution: what went wrong and the operation trace that
/// led there.
#[derive(Clone, Debug)]
pub struct Conviction {
    /// The failure class.
    pub kind: ConvictionKind,
    /// Human-readable description naming threads and locations.
    pub message: String,
    /// The scheduled operations of the convicted execution, in order.
    pub trace: Vec<String>,
}

/// Result of an [`explore`] run.
#[derive(Debug)]
pub struct Report {
    /// Executions performed (including the convicted one, if any).
    pub executions: usize,
    /// Whether the bounded interleaving space was fully enumerated.
    pub complete: bool,
    /// The first conviction found, if any; exploration stops at one.
    pub conviction: Option<Conviction>,
}

impl Report {
    /// Assert the space was fully explored with no conviction —
    /// the healthy-protocol acceptance check.
    #[track_caller]
    pub fn assert_clean(&self) {
        if let Some(c) = &self.conviction {
            panic!(
                "expected a clean exhaustive run, got {:?} after {} executions: {}\ntrace:\n  {}",
                c.kind,
                self.executions,
                c.message,
                c.trace.join("\n  ")
            );
        }
        assert!(
            self.complete,
            "exploration did not complete within budget ({} executions)",
            self.executions
        );
    }

    /// Assert the run was convicted with `kind` — the mutation-test
    /// acceptance check proving the checker has teeth.
    #[track_caller]
    pub fn assert_convicted(&self, kind: ConvictionKind) {
        match &self.conviction {
            Some(c) if c.kind == kind => {}
            Some(c) => panic!(
                "expected a {:?} conviction, got {:?} after {} executions: {}",
                kind, c.kind, self.executions, c.message
            ),
            None => panic!(
                "expected a {:?} conviction but {} executions ran clean (complete: {})",
                kind, self.executions, self.complete
            ),
        }
    }
}

/// Enumerate the interleavings of `scenario` within `opts`'s bounds.
///
/// The closure runs once per execution: it registers atomics, cells,
/// threads, and oracles on the fresh [`Sim`] it receives, and must be
/// deterministic — same registrations, same per-thread operation
/// sequences — for the trail replay to be meaningful (the scheduler
/// panics on divergence rather than exploring garbage).
pub fn explore<F: Fn(&mut Sim)>(opts: Options, scenario: F) -> Report {
    let mut trail: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let engine = Arc::new(Engine::new(opts.max_steps, std::mem::take(&mut trail)));
        let mut sim = Sim::new(&engine);
        scenario(&mut sim);
        let Sim { bodies, oracles, .. } = sim;
        engine.init_threads(bodies.len());
        std::thread::scope(|s| {
            for (tid, body) in bodies.into_iter().enumerate() {
                let engine = Arc::clone(&engine);
                s.spawn(move || engine.run_thread(tid, body));
            }
            engine.wait_done();
        });
        let (mut conviction, trail_back, trace) = {
            let mut k = engine.lock();
            (k.conviction.take(), std::mem::take(&mut k.trail), std::mem::take(&mut k.trace))
        };
        if conviction.is_none() {
            for oracle in &oracles {
                if let Err(message) = oracle() {
                    conviction = Some(Conviction { kind: ConvictionKind::Oracle, message, trace });
                    break;
                }
            }
        }
        if conviction.is_some() {
            return Report { executions, complete: false, conviction };
        }
        trail = trail_back;
        if !advance(&mut trail, opts.preemption_bound) {
            return Report { executions, complete: true, conviction: None };
        }
        if executions >= opts.max_executions {
            return Report { executions, complete: false, conviction: None };
        }
    }
}

/// Odometer step over the trail: bump the deepest choice point that
/// still has an untaken, budget-respecting alternative; drop the
/// points below it (they will be re-discovered under the new prefix).
/// Returns `false` when the bounded space is exhausted.
fn advance(trail: &mut Vec<Choice>, preemption_bound: usize) -> bool {
    while let Some(last) = trail.last_mut() {
        let next = last.idx + 1;
        if next < last.candidates.len()
            && (!last.preempt_possible || last.preemptions_at < preemption_bound)
        {
            last.idx = next;
            return true;
        }
        trail.pop();
    }
    false
}
