//! The virtual machine under the explorer: virtual atomics, virtual
//! cells, and the deterministic baton scheduler.
//!
//! Execution model: every registered thread runs as a real OS thread,
//! but a single baton (the kernel's `current` field, guarded by one
//! mutex/condvar pair) lets exactly one of them run at a time. A
//! thread only releases the baton at a *scheduling point* — an atomic
//! access or a [`Thr::wait_change`] park — where it records what it is
//! about to do and asks the kernel to pick the next runner. The pick
//! follows a recorded trail (depth-first search state owned by
//! [`crate::explore`]): within the trail the choice is replayed,
//! beyond it the first runnable thread is chosen and a new trail entry
//! is pushed for later backtracking.
//!
//! Non-atomic [`MCell`] accesses are deliberately *not* scheduling
//! points: the vector-clock race check is path-based, so exploring
//! orderings of unsynchronised accesses adds executions without adding
//! convictions — if two cell accesses are unordered by the atomics,
//! the clocks convict them in whichever interleaving reaches them.
//!
//! Abort protocol: the first conviction sets the kernel's abort flag
//! and wakes everyone; every scheduling point and cell access then
//! raises a private panic payload ([`ModelAbort`]) that unwinds the
//! scenario body out of any loop, is caught by the per-thread
//! `catch_unwind` in the harness, and is *not* itself a failure. Real
//! panics from scenario code are caught the same way and recorded as
//! [`ConvictionKind::Panic`]. Because threads can unwind while the
//! kernel mutex is held, every lock acquisition recovers from
//! poisoning with `into_inner` — the kernel state is always left
//! consistent before a panic is raised.

use crate::clock::{VClock, MAX_THREADS};
use crate::explore::{Conviction, ConvictionKind};
use std::panic::panic_any;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Memory ordering for model atomics, mirroring
/// [`std::sync::atomic::Ordering`]. Conversions from the std type
/// exist so protocol modules can declare orderings once (as std
/// constants the shipping code compiles against) and hand the same
/// constants to the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MOrd {
    /// No synchronisation: the access moves data, never clocks.
    Relaxed,
    /// Load side of a release/acquire pair.
    Acquire,
    /// Store side of a release/acquire pair.
    Release,
    /// Both sides at once (read-modify-write only in std; accepted
    /// here for completeness).
    AcqRel,
    /// Sequential consistency. The model treats it as acquire+release;
    /// it does not model the global SC order separately (the protocols
    /// under check must not rely on it — `gw-lint`'s atomics rule
    /// flags `SeqCst` for exactly that reason).
    SeqCst,
}

impl MOrd {
    pub(crate) fn acquires(self) -> bool {
        matches!(self, MOrd::Acquire | MOrd::AcqRel | MOrd::SeqCst)
    }

    pub(crate) fn releases(self) -> bool {
        matches!(self, MOrd::Release | MOrd::AcqRel | MOrd::SeqCst)
    }
}

impl From<Ordering> for MOrd {
    fn from(o: Ordering) -> MOrd {
        match o {
            Ordering::Relaxed => MOrd::Relaxed,
            Ordering::Acquire => MOrd::Acquire,
            Ordering::Release => MOrd::Release,
            Ordering::AcqRel => MOrd::AcqRel,
            Ordering::SeqCst => MOrd::SeqCst,
            // `Ordering` is non_exhaustive; map anything new to the
            // strongest ordering so the model under-convicts rather
            // than over-convicts.
            _ => MOrd::SeqCst,
        }
    }
}

/// Panic payload used to unwind scenario threads after an abort; the
/// harness swallows it.
pub(crate) struct ModelAbort;

/// What a parked thread is about to do, for the scheduler's
/// enabled-set computation.
enum Pending {
    /// Initial park: the thread has not run any scenario code yet.
    Start,
    /// An always-enabled operation (atomic access).
    Op,
    /// Parked until any watched atomic's version counter moves past
    /// the recorded value. This is how the model keeps spin loops
    /// finite: a loop that would spin re-reading an atomic parks
    /// instead, and a deadlock becomes detectable as "no thread
    /// enabled".
    Wait(Vec<(usize, u64)>),
}

/// One depth-first-search choice point: which thread ran, out of whom.
pub(crate) struct Choice {
    /// Runnable threads at this point, continuation (previous runner)
    /// first — so index 0 is the non-preemptive choice.
    pub(crate) candidates: Vec<usize>,
    /// Index of the branch taken in this execution.
    pub(crate) idx: usize,
    /// Whether picking index > 0 preempts a still-runnable thread
    /// (and therefore spends preemption budget).
    pub(crate) preempt_possible: bool,
    /// Preemptions already spent when this point was reached.
    pub(crate) preemptions_at: usize,
}

struct ThreadState {
    pending: Option<Pending>,
    finished: bool,
}

struct AtomicState {
    name: String,
    value: usize,
    /// Clock published by the latest store, if that store released.
    /// A relaxed store *clears* this: an acquire load of a
    /// relaxed-published value synchronises with nothing, which is
    /// precisely how weakened publication orderings get convicted.
    sync: Option<VClock>,
    /// Bumped by every store; watched by [`Pending::Wait`].
    version: u64,
}

struct CellMeta {
    name: String,
    /// Thread and epoch of the latest write.
    writer: Option<(usize, u32)>,
    /// Epoch of each thread's latest read since that write (0 = none).
    reads: [u32; MAX_THREADS],
}

pub(crate) struct Kernel {
    max_steps: usize,
    threads: Vec<ThreadState>,
    /// Threads that have reached their initial park; no scheduling
    /// happens until all of them have.
    started: usize,
    alive: usize,
    current: Option<usize>,
    prev: Option<usize>,
    /// Position in `trail` (equals choices made so far).
    step: usize,
    steps_taken: usize,
    preemptions: usize,
    pub(crate) trail: Vec<Choice>,
    atomics: Vec<AtomicState>,
    cells: Vec<CellMeta>,
    clocks: Vec<VClock>,
    pub(crate) trace: Vec<String>,
    pub(crate) conviction: Option<Conviction>,
    abort: bool,
    done: bool,
}

pub(crate) struct Engine {
    kernel: Mutex<Kernel>,
    cv: Condvar,
}

impl Engine {
    pub(crate) fn new(max_steps: usize, trail: Vec<Choice>) -> Engine {
        Engine {
            kernel: Mutex::new(Kernel {
                max_steps,
                threads: Vec::new(),
                started: 0,
                alive: 0,
                current: None,
                prev: None,
                step: 0,
                steps_taken: 0,
                preemptions: 0,
                trail,
                atomics: Vec::new(),
                cells: Vec::new(),
                clocks: vec![VClock::zero(); MAX_THREADS],
                trace: Vec::new(),
                conviction: None,
                abort: false,
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Lock the kernel, recovering from poisoning (threads unwind with
    /// the guard held by design; state is consistent at every panic).
    pub(crate) fn lock(&self) -> MutexGuard<'_, Kernel> {
        self.kernel.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn init_threads(&self, n: usize) {
        let mut k = self.lock();
        assert!((1..=MAX_THREADS).contains(&n), "scenario must register 1..={MAX_THREADS} threads");
        k.threads = (0..n).map(|_| ThreadState { pending: None, finished: false }).collect();
        k.alive = n;
    }

    /// Block the calling (main) thread until the execution finishes.
    pub(crate) fn wait_done(&self) {
        let mut k = self.lock();
        while !k.done {
            k = self.cv.wait(k).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Record a conviction (first one wins) and put the kernel into
    /// abort mode. Callers must notify the condvar afterwards.
    fn convict(&self, k: &mut Kernel, kind: ConvictionKind, message: String) {
        if k.conviction.is_none() {
            k.conviction = Some(Conviction { kind, message, trace: std::mem::take(&mut k.trace) });
        }
        k.abort = true;
        k.done = k.alive == 0;
    }

    /// Conviction raised from inside a scenario thread: record, wake
    /// everyone, unwind.
    fn fail(&self, mut k: MutexGuard<'_, Kernel>, kind: ConvictionKind, message: String) -> ! {
        self.convict(&mut k, kind, message);
        self.cv.notify_all();
        drop(k);
        panic_any(ModelAbort)
    }

    /// Pick the next runner. Called with every alive thread parked
    /// (the caller just parked itself or just finished).
    fn schedule(&self, k: &mut Kernel) {
        if k.abort {
            k.done = k.alive == 0;
            return;
        }
        if k.started < k.threads.len() {
            k.current = None;
            return;
        }
        let mut runnable: Vec<usize> = Vec::new();
        for (tid, t) in k.threads.iter().enumerate() {
            if t.finished {
                continue;
            }
            let enabled = match &t.pending {
                Some(Pending::Wait(watch)) => {
                    watch.iter().any(|(id, seen)| k.atomics[*id].version != *seen)
                }
                Some(_) => true,
                None => unreachable!("alive thread without a pending op during scheduling"),
            };
            if enabled {
                runnable.push(tid);
            }
        }
        if runnable.is_empty() {
            if k.alive == 0 {
                k.done = true;
            } else {
                let stuck = self.describe_blocked(k);
                self.convict(
                    k,
                    ConvictionKind::Deadlock,
                    format!("deadlock: every live thread is parked with no enabled wake ({stuck})"),
                );
            }
            return;
        }
        let step = k.step;
        let chosen = if step < k.trail.len() {
            let e = &k.trail[step];
            let c = e.candidates[e.idx];
            assert!(
                runnable.contains(&c),
                "nondeterministic scenario: replay chose t{c} but runnable set is {runnable:?}"
            );
            if e.preempt_possible && e.idx > 0 {
                k.preemptions += 1;
            }
            c
        } else {
            let mut cands = runnable;
            let preempt_possible = k.prev.is_some_and(|p| cands.contains(&p));
            if let Some(p) = k.prev {
                if let Some(pos) = cands.iter().position(|&c| c == p) {
                    cands.remove(pos);
                    cands.insert(0, p);
                }
            }
            let preemptions_at = k.preemptions;
            let c = cands[0];
            k.trail.push(Choice { candidates: cands, idx: 0, preempt_possible, preemptions_at });
            c
        };
        k.step += 1;
        k.prev = Some(chosen);
        k.current = Some(chosen);
    }

    fn describe_blocked(&self, k: &Kernel) -> String {
        let mut parts = Vec::new();
        for (tid, t) in k.threads.iter().enumerate() {
            if t.finished {
                continue;
            }
            if let Some(Pending::Wait(watch)) = &t.pending {
                let names: Vec<&str> =
                    watch.iter().map(|(id, _)| k.atomics[*id].name.as_str()).collect();
                parts.push(format!("t{tid} waits on {}", names.join("+")));
            } else {
                parts.push(format!("t{tid} parked"));
            }
        }
        parts.join(", ")
    }

    /// Run one thread of the scenario to completion, including the
    /// initial park and the finish hand-off.
    pub(crate) fn run_thread(
        self: &Arc<Engine>,
        tid: usize,
        body: Box<dyn FnOnce(&mut Thr) + Send + '_>,
    ) {
        let mut thr = Thr { engine: Arc::clone(self), tid };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            thr.enter();
            body(&mut thr);
        }));
        let mut k = self.lock();
        k.threads[tid].finished = true;
        k.threads[tid].pending = None;
        k.alive -= 1;
        match result {
            Ok(()) => {}
            Err(payload) if payload.is::<ModelAbort>() => {}
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                self.convict(
                    &mut k,
                    ConvictionKind::Panic,
                    format!("thread t{tid} panicked: {msg}"),
                );
            }
        }
        if k.abort {
            k.done = k.alive == 0;
        } else {
            k.current = None;
            self.schedule(&mut k);
        }
        self.cv.notify_all();
    }
}

/// A scenario thread's handle to the model: every atomic or cell
/// access goes through one of these, which is how the scheduler knows
/// who is asking.
pub struct Thr {
    engine: Arc<Engine>,
    tid: usize,
}

impl Thr {
    /// This thread's index, in registration order (`t0`, `t1`, …) —
    /// the names used in traces and conviction messages.
    pub fn index(&self) -> usize {
        self.tid
    }

    /// Initial park: wait until every scenario thread exists, then
    /// until the scheduler hands this one the baton.
    fn enter(&mut self) {
        let mut k = self.engine.lock();
        if k.abort {
            drop(k);
            panic_any(ModelAbort);
        }
        k.threads[self.tid].pending = Some(Pending::Start);
        k.started += 1;
        if k.started == k.threads.len() {
            self.engine.schedule(&mut k);
        }
        self.engine.cv.notify_all();
        k = self.await_baton(k);
        k.threads[self.tid].pending = None;
    }

    /// Park with `pending`, hand the baton over, and return the kernel
    /// guard once the scheduler picks this thread again — with the
    /// step executed (budget charged, clock ticked), ready for the
    /// caller to perform the operation's semantics under the guard.
    fn step(&mut self, pending: Pending) -> MutexGuard<'_, Kernel> {
        let mut k = self.engine.lock();
        if k.abort {
            drop(k);
            panic_any(ModelAbort);
        }
        k.threads[self.tid].pending = Some(pending);
        self.engine.schedule(&mut k);
        self.engine.cv.notify_all();
        k = self.await_baton(k);
        k.threads[self.tid].pending = None;
        k.steps_taken += 1;
        if k.steps_taken > k.max_steps {
            let max = k.max_steps;
            let engine = Arc::clone(&self.engine);
            engine.fail(
                k,
                ConvictionKind::StepBudget,
                format!("execution exceeded {max} scheduled operations (livelock or runaway loop)"),
            );
        }
        let tid = self.tid;
        k.clocks[tid].0[tid] += 1;
        k
    }

    fn await_baton<'a>(&self, mut k: MutexGuard<'a, Kernel>) -> MutexGuard<'a, Kernel> {
        loop {
            if k.abort {
                drop(k);
                panic_any(ModelAbort);
            }
            if k.current == Some(self.tid) {
                return k;
            }
            k = self.engine.cv.wait(k).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Park until any of `watch`'s version counters changes from its
    /// value at the moment of parking. The model's replacement for a
    /// spin loop: `loop { try_op() or wait_change(..) }` explores the
    /// same interleavings with finitely many steps, and turns a wait
    /// that can never be satisfied into a deadlock conviction instead
    /// of a hang.
    pub fn wait_change(&mut self, watch: &[&MAtomicUsize]) {
        let seen: Vec<(usize, u64)> = {
            let k = self.engine.lock();
            if k.abort {
                drop(k);
                panic_any(ModelAbort);
            }
            watch.iter().map(|a| (a.id, k.atomics[a.id].version)).collect()
        };
        let tid = self.tid;
        let mut k = self.step(Pending::Wait(seen));
        k.trace.push(format!("t{tid}: wakes from wait_change"));
    }

    /// Convict the current execution from scenario code (an in-thread
    /// assertion about protocol state).
    pub fn convict(&mut self, message: impl Into<String>) -> ! {
        let engine = Arc::clone(&self.engine);
        let k = engine.lock();
        engine.fail(k, ConvictionKind::Oracle, message.into())
    }
}

/// A virtual atomic `usize` with explicit per-access orderings,
/// registered via [`Sim::atomic`].
#[derive(Clone)]
pub struct MAtomicUsize {
    engine: Arc<Engine>,
    id: usize,
}

impl MAtomicUsize {
    /// Atomic load at `ord`; a scheduling point.
    pub fn load(&self, t: &mut Thr, ord: MOrd) -> usize {
        assert!(Arc::ptr_eq(&self.engine, &t.engine), "atomic used under a different explore()");
        let tid = t.tid;
        let mut k = t.step(Pending::Op);
        let k = &mut *k;
        let a = &k.atomics[self.id];
        if ord.acquires() {
            if let Some(sync) = a.sync {
                k.clocks[tid].join(&sync);
            }
        }
        let value = a.value;
        k.trace.push(format!("t{tid}: {}.load({ord:?}) -> {value}", a.name));
        value
    }

    /// Atomic store at `ord`; a scheduling point. A non-release store
    /// clears the location's published clock — see the module docs for
    /// why that is the conviction mechanism for weakened orderings.
    pub fn store(&self, t: &mut Thr, value: usize, ord: MOrd) {
        assert!(Arc::ptr_eq(&self.engine, &t.engine), "atomic used under a different explore()");
        let tid = t.tid;
        let mut k = t.step(Pending::Op);
        let k = &mut *k;
        let a = &mut k.atomics[self.id];
        a.value = value;
        a.version += 1;
        a.sync = if ord.releases() { Some(k.clocks[tid]) } else { None };
        k.trace.push(format!("t{tid}: {}.store({value}, {ord:?})", a.name));
    }

    /// The value outside any thread context — for end-of-execution
    /// oracles only.
    pub fn raw(&self) -> usize {
        self.engine.lock().atomics[self.id].value
    }
}

/// Bookkeeping handle for a non-atomic memory location carrying `T`,
/// registered via [`Sim::cell`]. Accesses are race-checked against the
/// vector clocks but are not scheduling points.
#[derive(Clone)]
pub struct MCell<T> {
    engine: Arc<Engine>,
    id: usize,
    value: Arc<Mutex<T>>,
}

impl<T: Copy + Send + 'static> MCell<T> {
    /// Non-atomic read. Convicts if the latest write is not ordered
    /// happens-before this thread's current point.
    pub fn get(&self, t: &mut Thr) -> T {
        {
            let mut k = self.engine.lock();
            if k.abort {
                drop(k);
                panic_any(ModelAbort);
            }
            let tid = t.tid;
            k.clocks[tid].0[tid] += 1;
            let clock = k.clocks[tid];
            let cell = &mut k.cells[self.id];
            if let Some((w, epoch)) = cell.writer {
                if w != tid && !clock.covers(w, epoch) {
                    let name = cell.name.clone();
                    let engine = Arc::clone(&self.engine);
                    engine.fail(
                        k,
                        ConvictionKind::DataRace,
                        format!(
                            "data race on `{name}`: t{tid} reads a write by t{w} (epoch {epoch}) \
                             with no happens-before edge — the value was never published to this \
                             thread"
                        ),
                    );
                }
            }
            let epoch = clock.0[tid];
            k.cells[self.id].reads[tid] = epoch;
        }
        *self.value.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-atomic write. Convicts if the latest write or any
    /// outstanding read is not ordered happens-before this thread's
    /// current point.
    pub fn set(&self, t: &mut Thr, value: T) {
        {
            let mut k = self.engine.lock();
            if k.abort {
                drop(k);
                panic_any(ModelAbort);
            }
            let tid = t.tid;
            k.clocks[tid].0[tid] += 1;
            let clock = k.clocks[tid];
            let cell = &k.cells[self.id];
            let name = cell.name.clone();
            if let Some((w, epoch)) = cell.writer {
                if w != tid && !clock.covers(w, epoch) {
                    let engine = Arc::clone(&self.engine);
                    engine.fail(
                        k,
                        ConvictionKind::DataRace,
                        format!(
                            "data race on `{name}`: t{tid} overwrites a write by t{w} \
                             (epoch {epoch}) with no happens-before edge"
                        ),
                    );
                }
            }
            for (r, &epoch) in cell.reads.iter().enumerate() {
                if epoch != 0 && r != tid && !clock.covers(r, epoch) {
                    let engine = Arc::clone(&self.engine);
                    engine.fail(
                        k,
                        ConvictionKind::DataRace,
                        format!(
                            "data race on `{name}`: t{tid} overwrites a value t{r} is still \
                             reading (read epoch {epoch} not ordered before the write)"
                        ),
                    );
                }
            }
            let epoch = clock.0[tid];
            let cell = &mut k.cells[self.id];
            cell.writer = Some((tid, epoch));
            cell.reads = [0; MAX_THREADS];
        }
        *self.value.lock().unwrap_or_else(|e| e.into_inner()) = value;
    }

    /// The value outside any thread context — for end-of-execution
    /// oracles only.
    pub fn raw(&self) -> T {
        *self.value.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A registered thread body, boxed for storage until [`crate::explore`]
/// spawns the execution's real threads.
pub(crate) type ThreadBody = Box<dyn FnOnce(&mut Thr) + Send>;

/// Per-execution scenario builder handed to the closure given to
/// [`crate::explore`]: register shared state, threads, and oracles.
/// The closure runs once per explored execution, so everything it
/// creates is fresh state for that execution.
pub struct Sim {
    pub(crate) engine: Arc<Engine>,
    pub(crate) bodies: Vec<ThreadBody>,
    pub(crate) oracles: Vec<Box<dyn Fn() -> Result<(), String>>>,
}

impl Sim {
    pub(crate) fn new(engine: &Arc<Engine>) -> Sim {
        Sim { engine: Arc::clone(engine), bodies: Vec::new(), oracles: Vec::new() }
    }

    /// Register a virtual atomic with an initial value. The name
    /// appears in traces and deadlock reports.
    pub fn atomic(&mut self, name: &str, init: usize) -> MAtomicUsize {
        let mut k = self.engine.lock();
        let id = k.atomics.len();
        k.atomics.push(AtomicState { name: name.to_string(), value: init, sync: None, version: 0 });
        MAtomicUsize { engine: Arc::clone(&self.engine), id }
    }

    /// Register a race-checked non-atomic location with an initial
    /// value. The initial value is considered published to every
    /// thread (it is written before any thread starts).
    pub fn cell<T: Copy + Send + 'static>(&mut self, name: &str, init: T) -> MCell<T> {
        let mut k = self.engine.lock();
        let id = k.cells.len();
        k.cells.push(CellMeta { name: name.to_string(), writer: None, reads: [0; MAX_THREADS] });
        MCell { engine: Arc::clone(&self.engine), id, value: Arc::new(Mutex::new(init)) }
    }

    /// Register a scenario thread. At most [`MAX_THREADS`] per
    /// scenario; thread indices follow registration order.
    pub fn thread(&mut self, body: impl FnOnce(&mut Thr) + Send + 'static) {
        assert!(self.bodies.len() < MAX_THREADS, "scenario registers too many threads");
        self.bodies.push(Box::new(body));
    }

    /// Register an end-of-execution oracle, run after every clean
    /// execution; an `Err` convicts it (lost/duplicated values live
    /// here). Capture the `Arc`s your threads write into.
    pub fn oracle(&mut self, f: impl Fn() -> Result<(), String> + 'static) {
        self.oracles.push(Box::new(f));
    }
}
