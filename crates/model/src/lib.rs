//! `gw-model` — a dependency-free, loom-style bounded interleaving
//! explorer for the gateway's lock-free protocols.
//!
//! PR 8 put the cell path on hand-written lock-free SPSC rings and a
//! control-barrier/journal hand-off whose memory safety rested on
//! prose `SAFETY:` comments plus whatever interleavings the OS
//! scheduler happened to produce under stress. The paper this
//! repository reproduces treats the classifier/engine hand-off as the
//! part of a parallel router one must *prove*, not stress — this crate
//! is that proof engine, sized for the protocols we actually run:
//!
//! * **virtual atomics** ([`MAtomicUsize`]) whose every access names an
//!   explicit [`MOrd`] ordering, and **virtual cells** ([`MCell`]) for
//!   the non-atomic payload the atomics are supposed to fence;
//! * a **deterministic scheduler** that enumerates thread
//!   interleavings by depth-first search over a recorded trail, with a
//!   context-switch (preemption) bound to keep small protocols
//!   exhaustively checkable in `cargo test`;
//! * **vector-clock happens-before tracking** that convicts data
//!   races and reads of unsynchronised writes on the spot, plus user
//!   oracles that convict lost or duplicated values at the end of each
//!   execution.
//!
//! What the model explores is the set of sequentially-consistent
//! interleavings of the scheduled operations; weak-memory effects are
//! caught *analytically* rather than by value speculation — a relaxed
//! store publishes no happens-before edge, so a consumer that relies
//! on one is convicted for racing on the payload even though the
//! interleaving itself executed in order (the same lens
//! ThreadSanitizer applies, but under *every* schedule within the
//! bound instead of the ones the OS serves up). Store-buffering litmus
//! outcomes that require reading stale values are out of scope;
//! DESIGN.md §14 spells out the boundary.
//!
//! The shipping ring and the modelled ring share one protocol source
//! (`gw_ring::protocol`), so the orderings checked here are the
//! orderings the data path runs — see [`spsc`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod clock;
mod explore;
mod sim;
pub mod spsc;

pub use explore::{explore, Conviction, ConvictionKind, Options, Report};
pub use sim::{MAtomicUsize, MCell, MOrd, Sim, Thr};
