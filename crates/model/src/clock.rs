//! Vector clocks for happens-before tracking.
//!
//! Fixed-width (the explorer caps scenarios at [`MAX_THREADS`]
//! threads), `Copy`, and allocation-free: clock joins sit on the
//! per-operation path of every explored execution, and executions
//! number in the tens of thousands per test.

/// Maximum threads per scenario. The protocols under check are
/// pairwise (one producer, one consumer; one merge, N≤3 shards), and
/// every extra thread multiplies the interleaving space, so four is
/// both sufficient and a deliberate brake.
pub const MAX_THREADS: usize = 4;

/// A vector clock: component `i` counts the operations thread `i` is
/// known (to the clock's owner) to have performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VClock(pub [u32; MAX_THREADS]);

impl VClock {
    /// The zero clock — knows of no operations by anyone.
    pub const fn zero() -> Self {
        VClock([0; MAX_THREADS])
    }

    /// Pointwise maximum: after `self.join(other)` the owner knows
    /// everything either clock knew.
    pub fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether this clock has seen thread `tid` reach epoch `epoch` —
    /// i.e. whether the event `(tid, epoch)` happened-before the
    /// owner's current point.
    pub fn covers(&self, tid: usize, epoch: u32) -> bool {
        self.0[tid] >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_covers_tracks_epochs() {
        let mut a = VClock([3, 0, 1, 0]);
        let b = VClock([1, 2, 0, 0]);
        a.join(&b);
        assert_eq!(a, VClock([3, 2, 1, 0]));
        assert!(a.covers(1, 2));
        assert!(!a.covers(1, 3));
        assert!(VClock::zero().covers(0, 0));
    }
}
