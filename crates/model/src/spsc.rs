//! The SPSC ring protocol ported onto the model's atomics.
//!
//! This is `crates/ring`'s push/pop/batch-pop re-expressed over
//! [`MAtomicUsize`]/[`MCell`] — **same index arithmetic, same
//! orderings**, because both sides compile against
//! `gw_ring::protocol`: the predicates (`is_full`, `is_empty`,
//! `advance`, `slot`) are called directly, and [`SpscSpec::default`]
//! converts the protocol's `Ordering` constants into [`MOrd`]s. Weaken
//! an ordering in the shipping protocol module and the healthy
//! exhaustive test in `crates/ring/tests/model.rs` convicts; the seam
//! has no second copy to drift.
//!
//! [`SpscSpec`]'s other knobs exist to *break* the protocol on
//! purpose: each mutation the ISSUE demands (publish-before-write,
//! skipped cache refresh, off-by-one full/empty) is a field here, and
//! the mutation selftests assert every one of them is convicted. The
//! payload type is `usize`: the model checks the hand-off protocol,
//! not the payload, and sequence oracles need nothing richer.

use crate::sim::{MAtomicUsize, MCell, MOrd, Sim, Thr};
use gw_ring::protocol as proto;

/// The knobs of the modelled ring. `Default` is the shipping protocol,
/// pulled from `gw_ring::protocol`; every other setting is a seeded
/// fault for the mutation selftests.
#[derive(Clone, Copy, Debug)]
pub struct SpscSpec {
    /// Producer's ordering for the `tail` store.
    pub tail_publish: MOrd,
    /// Consumer's ordering for the `tail` load.
    pub tail_observe: MOrd,
    /// Consumer's ordering for the `head` store.
    pub head_publish: MOrd,
    /// Producer's ordering for the `head` load.
    pub head_observe: MOrd,
    /// `false` seeds the mutation that publishes the new tail before
    /// writing the slot payload.
    pub write_before_publish: bool,
    /// `false` seeds the mutation where the producer never refreshes
    /// its cached view of `head` on apparent-full.
    pub refresh_head_cache: bool,
    /// `false` seeds the mutation where the consumer never refreshes
    /// its cached view of `tail` on apparent-empty.
    pub refresh_tail_cache: bool,
    /// Added to the full threshold: `+1` seeds the off-by-one that
    /// overwrites a slot the consumer has not drained.
    pub full_bias: i64,
    /// Added to the empty threshold: `-1` seeds the off-by-one that
    /// pops a slot the producer never filled.
    pub empty_bias: i64,
}

impl Default for SpscSpec {
    fn default() -> SpscSpec {
        SpscSpec {
            tail_publish: proto::TAIL_PUBLISH.into(),
            tail_observe: proto::TAIL_OBSERVE.into(),
            head_publish: proto::HEAD_PUBLISH.into(),
            head_observe: proto::HEAD_OBSERVE.into(),
            write_before_publish: true,
            refresh_head_cache: true,
            refresh_tail_cache: true,
            full_bias: 0,
            empty_bias: 0,
        }
    }
}

/// Producer half of a modelled ring, mirroring `gw_ring::Producer`.
pub struct ModelProducer {
    head: MAtomicUsize,
    tail: MAtomicUsize,
    slots: Vec<MCell<usize>>,
    mask: usize,
    cap: usize,
    /// Private tail (this side is its only writer).
    ltail: usize,
    /// Cached view of the consumer's head.
    head_cache: usize,
    spec: SpscSpec,
}

/// Consumer half of a modelled ring, mirroring `gw_ring::Consumer`.
pub struct ModelConsumer {
    head: MAtomicUsize,
    tail: MAtomicUsize,
    slots: Vec<MCell<usize>>,
    mask: usize,
    /// Private head (this side is its only writer).
    lhead: usize,
    /// Cached view of the producer's tail.
    tail_cache: usize,
    spec: SpscSpec,
}

/// Build a modelled ring inside a scenario. `start` seeds the
/// free-running counters (pass `usize::MAX - k` to model-check the
/// wrap); `capacity` rounds up exactly as the shipping constructor
/// does.
pub fn model_ring(
    sim: &mut Sim,
    capacity: usize,
    start: usize,
    spec: SpscSpec,
) -> (ModelProducer, ModelConsumer) {
    let cap = proto::capacity_for(capacity);
    let head = sim.atomic("head", start);
    let tail = sim.atomic("tail", start);
    let slots: Vec<MCell<usize>> =
        (0..cap).map(|i| sim.cell(&format!("slot[{i}]"), 0usize)).collect();
    (
        ModelProducer {
            head: head.clone(),
            tail: tail.clone(),
            slots: slots.clone(),
            mask: cap - 1,
            cap,
            ltail: start,
            head_cache: start,
            spec,
        },
        ModelConsumer { head, tail, slots, mask: cap - 1, lhead: start, tail_cache: start, spec },
    )
}

impl ModelProducer {
    fn looks_full(&self, tail: usize) -> bool {
        if self.spec.full_bias == 0 {
            proto::is_full(tail, self.head_cache, self.cap)
        } else {
            proto::occupancy(tail, self.head_cache) as i64 >= self.cap as i64 + self.spec.full_bias
        }
    }

    /// `gw_ring::Producer::push`: refresh the head cache only on
    /// apparent-full, write the slot, publish the tail.
    pub fn try_push(&mut self, t: &mut Thr, value: usize) -> bool {
        let tail = self.ltail;
        if self.looks_full(tail) {
            if self.spec.refresh_head_cache {
                self.head_cache = self.head.load(t, self.spec.head_observe);
            }
            if self.looks_full(tail) {
                return false;
            }
        }
        let idx = proto::slot(tail, self.mask);
        if self.spec.write_before_publish {
            self.slots[idx].set(t, value);
            self.ltail = proto::advance(tail);
            self.tail.store(t, self.ltail, self.spec.tail_publish);
        } else {
            self.ltail = proto::advance(tail);
            self.tail.store(t, self.ltail, self.spec.tail_publish);
            self.slots[idx].set(t, value);
        }
        true
    }

    /// Push, parking on a full ring until the consumer frees a slot —
    /// the model analogue of a retry loop, kept finite by
    /// [`Thr::wait_change`].
    pub fn push_blocking(&mut self, t: &mut Thr, value: usize) {
        while !self.try_push(t, value) {
            t.wait_change(&[&self.head]);
        }
    }
}

impl ModelConsumer {
    fn looks_empty(&self, head: usize) -> bool {
        if self.spec.empty_bias == 0 {
            proto::is_empty(self.tail_cache, head)
        } else {
            (proto::occupancy(self.tail_cache, head) as i64) <= self.spec.empty_bias
        }
    }

    /// `gw_ring::Consumer::pop`: refresh the tail cache only on
    /// apparent-empty, read the slot, publish the head.
    pub fn try_pop(&mut self, t: &mut Thr) -> Option<usize> {
        let head = self.lhead;
        if self.looks_empty(head) {
            if self.spec.refresh_tail_cache {
                self.tail_cache = self.tail.load(t, self.spec.tail_observe);
            }
            if self.looks_empty(head) {
                return None;
            }
        }
        let value = self.slots[proto::slot(head, self.mask)].get(t);
        self.lhead = proto::advance(head);
        self.head.store(t, self.lhead, self.spec.head_publish);
        Some(value)
    }

    /// `gw_ring::Consumer::pop_batch`: drain up to `max` items with a
    /// single deferred head publish at the end.
    pub fn pop_batch(&mut self, t: &mut Thr, max: usize, out: &mut Vec<usize>) -> usize {
        let mut taken = 0usize;
        while taken < max {
            let head = self.lhead;
            if self.looks_empty(head) {
                if !self.spec.refresh_tail_cache {
                    break;
                }
                self.tail_cache = self.tail.load(t, self.spec.tail_observe);
                if self.looks_empty(head) {
                    break;
                }
            }
            out.push(self.slots[proto::slot(head, self.mask)].get(t));
            self.lhead = proto::advance(head);
            taken += 1;
        }
        if taken > 0 {
            self.head.store(t, self.lhead, self.spec.head_publish);
        }
        taken
    }

    /// Pop, parking on an empty ring until the producer publishes.
    pub fn pop_blocking(&mut self, t: &mut Thr) -> usize {
        loop {
            if let Some(v) = self.try_pop(t) {
                return v;
            }
            t.wait_change(&[&self.tail]);
        }
    }

    /// Handle to the tail atomic, for scenarios that interleave batch
    /// drains with [`Thr::wait_change`].
    pub fn tail_rail(&self) -> &MAtomicUsize {
        &self.tail
    }
}
