//! Litmus tests for the explorer itself: known-racy programs must be
//! convicted, known-clean ones must enumerate to completion, and the
//! search bookkeeping (execution counts, traces, budgets) must behave.
//!
//! These are the checks that make the ring/shard model tests
//! meaningful — a checker that cannot convict the message-passing
//! litmus with a relaxed store would wave through anything.

use gw_model::{explore, ConvictionKind, MOrd, Options, Sim};
use std::sync::{Arc, Mutex};

fn opts() -> Options {
    Options { preemption_bound: 2, ..Options::default() }
}

#[test]
fn unsynchronised_write_is_a_data_race() {
    // Two threads store to the same cell with no atomics at all.
    let report = explore(opts(), |sim: &mut Sim| {
        let c = sim.cell("payload", 0usize);
        let c2 = c.clone();
        sim.thread(move |t| c.set(t, 1));
        sim.thread(move |t| c2.set(t, 2));
    });
    report.assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn release_acquire_message_passing_is_clean() {
    // The classic MP litmus, correctly fenced: writer fills the
    // payload then release-publishes a flag; reader acquire-loads the
    // flag (parking until it moves) and reads the payload.
    let report = explore(opts(), |sim: &mut Sim| {
        let payload = sim.cell("payload", 0usize);
        let flag = sim.atomic("flag", 0);
        let (p2, f2) = (payload.clone(), flag.clone());
        sim.thread(move |t| {
            payload.set(t, 42);
            flag.store(t, 1, MOrd::Release);
        });
        let seen = Arc::new(Mutex::new(0usize));
        let seen_w = Arc::clone(&seen);
        sim.thread(move |t| {
            while f2.load(t, MOrd::Acquire) == 0 {
                t.wait_change(&[&f2]);
            }
            *seen_w.lock().unwrap() = p2.get(t);
        });
        sim.oracle(move || {
            let v = *seen.lock().unwrap();
            if v == 42 {
                Ok(())
            } else {
                Err(format!("reader saw {v}, expected 42"))
            }
        });
    });
    report.assert_clean();
}

#[test]
fn relaxed_publication_is_convicted() {
    // Same program, store weakened to Relaxed: the payload write is
    // never published to the reader, so the read is a race — in every
    // interleaving where the reader gets that far, including the
    // first. This is the mechanism that makes every ordering in
    // `gw_ring::protocol` load-bearing under the model.
    let report = explore(opts(), |sim: &mut Sim| {
        let payload = sim.cell("payload", 0usize);
        let flag = sim.atomic("flag", 0);
        let (p2, f2) = (payload.clone(), flag.clone());
        sim.thread(move |t| {
            payload.set(t, 42);
            flag.store(t, 1, MOrd::Relaxed);
        });
        sim.thread(move |t| {
            while f2.load(t, MOrd::Acquire) == 0 {
                t.wait_change(&[&f2]);
            }
            let _ = p2.get(t);
        });
    });
    report.assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn relaxed_observation_is_convicted() {
    // Dual weakening: the load side drops to Relaxed, so the reader
    // never joins the writer's clock even though the store released.
    let report = explore(opts(), |sim: &mut Sim| {
        let payload = sim.cell("payload", 0usize);
        let flag = sim.atomic("flag", 0);
        let (p2, f2) = (payload.clone(), flag.clone());
        sim.thread(move |t| {
            payload.set(t, 42);
            flag.store(t, 1, MOrd::Release);
        });
        sim.thread(move |t| {
            while f2.load(t, MOrd::Relaxed) == 0 {
                t.wait_change(&[&f2]);
            }
            let _ = p2.get(t);
        });
    });
    report.assert_convicted(ConvictionKind::DataRace);
}

#[test]
fn waiting_on_a_flag_nobody_raises_is_a_deadlock() {
    let report = explore(opts(), |sim: &mut Sim| {
        let flag = sim.atomic("flag", 0);
        let f2 = flag.clone();
        sim.thread(move |t| {
            while flag.load(t, MOrd::Acquire) == 0 {
                t.wait_change(&[&flag]);
            }
        });
        sim.thread(move |t| {
            // Touches a different location, never the flag.
            let _ = f2.load(t, MOrd::Relaxed);
        });
    });
    report.assert_convicted(ConvictionKind::Deadlock);
    let c = report.conviction.unwrap();
    assert!(c.message.contains("flag"), "deadlock message names the watched atomic: {}", c.message);
}

#[test]
fn oracle_failures_convict_lost_values() {
    // The threads run race-free but the oracle's expectation fails —
    // this is the lost/duplicated-value conviction channel.
    let report = explore(opts(), |sim: &mut Sim| {
        let flag = sim.atomic("flag", 0);
        sim.thread(move |t| flag.store(t, 7, MOrd::Release));
        sim.oracle(|| Err("seeded oracle failure".to_string()));
    });
    report.assert_convicted(ConvictionKind::Oracle);
}

#[test]
fn scenario_panics_are_captured_as_convictions() {
    let report = explore(opts(), |sim: &mut Sim| {
        let flag = sim.atomic("flag", 0);
        sim.thread(move |t| {
            flag.store(t, 1, MOrd::Release);
            panic!("seeded scenario panic");
        });
        sim.thread(|_| {});
    });
    report.assert_convicted(ConvictionKind::Panic);
    assert!(report.conviction.unwrap().message.contains("seeded scenario panic"));
}

#[test]
fn in_thread_convict_is_an_oracle_conviction() {
    let report = explore(opts(), |sim: &mut Sim| {
        let flag = sim.atomic("flag", 0);
        sim.thread(move |t| {
            if flag.load(t, MOrd::Acquire) == 0 {
                t.convict("seeded in-thread conviction");
            }
        });
    });
    report.assert_convicted(ConvictionKind::Oracle);
}

#[test]
fn preemption_bound_scales_the_explored_space() {
    // Two threads, three relaxed stores each to private atomics: no
    // races, no blocking, so the execution count is purely a function
    // of the schedule enumeration. Bound 0 = no preemptions: the only
    // choices are at thread start/exit. Higher bounds must explore
    // strictly more schedules, and each run must be complete.
    let scenario = |sim: &mut Sim| {
        let a = sim.atomic("a", 0);
        let b = sim.atomic("b", 0);
        sim.thread(move |t| {
            for i in 1..=3 {
                a.store(t, i, MOrd::Relaxed);
            }
        });
        sim.thread(move |t| {
            for i in 1..=3 {
                b.store(t, i, MOrd::Relaxed);
            }
        });
    };
    let mut counts = Vec::new();
    for bound in 0..=2 {
        let report = explore(Options { preemption_bound: bound, ..Options::default() }, scenario);
        report.assert_clean();
        counts.push(report.executions);
    }
    assert!(
        counts[0] < counts[1] && counts[1] < counts[2],
        "execution counts must grow with the bound: {counts:?}"
    );
    // Bound 0 still explores the free (non-preemptive) switch points:
    // with two threads that is both serial orders at least.
    assert!(counts[0] >= 2, "bound 0 explores at least the serial orders: {}", counts[0]);
}

#[test]
fn lost_update_needs_a_preemption_and_the_search_finds_it() {
    // Two unsynchronised load-then-store increments. Both serial
    // orders yield 2; only an interleaving where both threads load
    // before either stores yields 1. Bound 0 explores exactly the
    // serial orders and must run clean; bound 1 must find the bug.
    // This is the test that the DFS genuinely enumerates schedules
    // rather than re-running one of them.
    let scenario = |sim: &mut Sim| {
        let a = sim.atomic("counter", 0);
        let a2 = a.clone();
        let check = a.clone();
        sim.thread(move |t| {
            let v = a.load(t, MOrd::Relaxed);
            a.store(t, v + 1, MOrd::Relaxed);
        });
        sim.thread(move |t| {
            let v = a2.load(t, MOrd::Relaxed);
            a2.store(t, v + 1, MOrd::Relaxed);
        });
        sim.oracle(move || {
            let v = check.raw();
            if v == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter ended at {v}, expected 2"))
            }
        });
    };
    let serial = explore(Options { preemption_bound: 0, ..Options::default() }, scenario);
    serial.assert_clean();
    let bounded = explore(Options { preemption_bound: 1, ..Options::default() }, scenario);
    bounded.assert_convicted(ConvictionKind::Oracle);
}

#[test]
fn step_budget_convicts_runaway_loops() {
    let report = explore(Options { max_steps: 64, ..Options::default() }, |sim: &mut Sim| {
        let a = sim.atomic("spin", 0);
        sim.thread(move |t| {
            // A livelock the wait-park cannot save: each iteration
            // stores, so the version always moves.
            loop {
                let v = a.load(t, MOrd::Relaxed);
                a.store(t, v.wrapping_add(1), MOrd::Relaxed);
            }
        });
    });
    report.assert_convicted(ConvictionKind::StepBudget);
}

#[test]
fn convictions_carry_a_non_empty_trace() {
    let report = explore(opts(), |sim: &mut Sim| {
        let c = sim.cell("payload", 0usize);
        let flag = sim.atomic("flag", 0);
        let (c2, f2) = (c.clone(), flag.clone());
        sim.thread(move |t| {
            c.set(t, 1);
            flag.store(t, 1, MOrd::Relaxed);
        });
        sim.thread(move |t| {
            while f2.load(t, MOrd::Acquire) == 0 {
                t.wait_change(&[&f2]);
            }
            let _ = c2.get(t);
        });
    });
    let c = report.conviction.expect("relaxed publication must convict");
    assert!(!c.trace.is_empty(), "conviction trace must show the scheduled operations");
    assert!(
        c.trace.iter().any(|line| line.contains("flag.store(1, Relaxed)")),
        "trace lines name location, value, and ordering: {:?}",
        c.trace
    );
}

#[test]
fn single_thread_scenarios_are_exhausted_in_one_execution() {
    let report = explore(opts(), |sim: &mut Sim| {
        let a = sim.atomic("a", 0);
        sim.thread(move |t| {
            a.store(t, 1, MOrd::Release);
            assert_eq!(a.load(t, MOrd::Acquire), 1);
        });
    });
    report.assert_clean();
    assert_eq!(report.executions, 1);
}
