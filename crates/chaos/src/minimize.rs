//! Naive schedule minimization by halving.
//!
//! A failing scenario usually needs only a fraction of its schedule to
//! fail. The shrinker repeatedly tries to keep only the front half,
//! then only the back half, of the current schedule, re-running the
//! full scenario each time and keeping whichever half still fails.
//! O(log n) runs, no oracle beyond "does it still fail", and the
//! result is still driven by the original seed's fault streams so it
//! replays exactly.

use crate::runner::run_scenario;
use crate::workload::Scenario;

/// Shrink a failing scenario's schedule; returns the smallest failing
/// scenario found (the input itself if it passes or nothing smaller
/// fails).
pub fn minimize(sc: &Scenario) -> Scenario {
    let mut best = sc.clone();
    if run_scenario(&best).passed() {
        return best;
    }
    while best.sends.len() > 1 {
        let half = best.sends.len() / 2;
        let front = Scenario { sends: best.sends[..half].to_vec(), ..best.clone() };
        if !run_scenario(&front).passed() {
            best = front;
            continue;
        }
        let back = Scenario { sends: best.sends[half..].to_vec(), ..best.clone() };
        if !run_scenario(&back).passed() {
            best = back;
            continue;
        }
        break;
    }
    best
}
