//! Seed → scenario materialization.
//!
//! Everything a run does — how many congrams, which frames fly when,
//! which faults are armed and how hard — is derived from the seed
//! through independent [`SimRng`] fork streams, so changing one axis
//! of the generator never perturbs the others and a seed printed by a
//! failing soak reconstructs the exact same scenario forever.

use gw_sim::fault::{FaultConfig, GilbertElliott};
use gw_sim::rng::SimRng;
use gw_sim::time::SimTime;

/// Direction of one scheduled frame injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// ATM host segments the frame into cells toward the gateway.
    AtmToFddi,
    /// An FDDI station sends the frame onto the ring toward the
    /// gateway.
    FddiToAtm,
}

/// One scheduled frame injection.
#[derive(Debug, Clone, Copy)]
pub struct Send {
    /// Injection time.
    pub at: SimTime,
    /// Index into the scenario's installed congrams.
    pub vc: usize,
    /// Which port the frame enters.
    pub direction: Direction,
    /// MCHIP payload length, octets.
    pub len: usize,
    /// Payload fill byte (cheap integrity check at the far side).
    pub fill: u8,
}

/// The armed fault mix, kept as raw knob values so reports can print
/// what a seed actually exercised.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Independent cell-loss probability.
    pub drops: f64,
    /// Single-bit payload corruption probability.
    pub corruption: f64,
    /// Duplication probability per cell.
    pub duplication: f64,
    /// Max copies per duplication event (burst duplication).
    pub dup_copies: u32,
    /// Adjacent-swap reordering probability.
    pub reordering: f64,
    /// Misinsertion (VCI rewrite onto a live foreign VC) probability.
    pub misinsertion: f64,
    /// Deterministic sinusoidal delivery-deadline skew, when armed.
    pub delay_skew: Option<(SimTime, SimTime)>,
    /// Gilbert-Elliott burst-loss process, when armed.
    pub burst: Option<GilbertElliott>,
}

impl FaultPlan {
    /// Lower the plan into the injector's configuration.
    pub fn to_config(&self) -> FaultConfig {
        let mut b = FaultConfig::builder()
            .drops(self.drops)
            .corruption(self.corruption)
            .duplication(self.duplication)
            .duplication_burst(self.dup_copies)
            .reordering(self.reordering)
            .misinsertion(self.misinsertion);
        if let Some((period, magnitude)) = self.delay_skew {
            b = b.delay_skew(period, magnitude);
        }
        if let Some(ge) = self.burst {
            b = b.burst(ge);
        }
        b.build()
    }
}

/// A fully materialized chaos scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed it was generated from.
    pub seed: u64,
    /// Number of data congrams to install (round-robin over stations).
    pub vcs: usize,
    /// Arm the VC liveness monitor (quarantine after inactivity).
    pub liveness: bool,
    /// Starve the SUPERNET buffer memories (small tx/rx capacity) so
    /// pool-exhaustion paths (shed/overflow) get exercised.
    pub starve_buffers: bool,
    /// Arm overload shedding on top of starvation.
    pub shedding: bool,
    /// Install a GCRA policer (drop action) on the first congram.
    pub police: bool,
    /// Reassembly timeout for the run.
    pub reassembly_timeout: SimTime,
    /// The traffic schedule, sorted by time.
    pub sends: Vec<Send>,
    /// The armed fault mix.
    pub faults: FaultPlan,
}

impl Scenario {
    /// Materialize the scenario a seed denotes.
    pub fn generate(seed: u64) -> Scenario {
        let mut root = SimRng::new(seed);
        let mut shape = root.fork(1);
        let mut traffic = root.fork(2);
        let mut fault = root.fork(3);

        let vcs = 2 + shape.below(3) as usize; // 2..=4
        let liveness = shape.chance(0.3);
        let starve_buffers = shape.chance(0.25);
        let shedding = starve_buffers && shape.chance(0.5);
        let police = shape.chance(0.3);
        let reassembly_timeout = SimTime::from_ms(4 + shape.below(7)); // 4..=10 ms

        let n_sends = 40 + traffic.below(81) as usize; // 40..=120
        let mut sends = Vec::with_capacity(n_sends);
        for _ in 0..n_sends {
            sends.push(Send {
                at: SimTime::from_us(traffic.below(40_000)),
                vc: traffic.below(vcs as u64) as usize,
                direction: if traffic.chance(0.6) {
                    Direction::AtmToFddi
                } else {
                    Direction::FddiToAtm
                },
                len: 16 + traffic.below(1785) as usize, // 16..=1800
                fill: traffic.below(256) as u8,
            });
        }
        if starve_buffers {
            // Starved buffer memories only overflow when several VCs
            // complete large frames inside one co-simulation slice, so
            // synchronized waves of max-size frames ride along: every
            // VC starts an 1800-octet frame at the same instant. One
            // frame per VC per wave — the cells interleave on the
            // shared access link and the frames' last cells arrive
            // back to back, without overrunning the 128-cell switch
            // queue the way a deeper burst would (lost cells there
            // never reach the buffer under test). The FDDI-side wave
            // exceeds the starved receive memory outright (the RBC
            // path drains per frame, so only a single oversized frame
            // can overflow it).
            for wave in 0..3u64 {
                for vc in 0..vcs {
                    sends.push(Send {
                        at: SimTime::from_ms(10 + wave * 10),
                        vc,
                        direction: Direction::AtmToFddi,
                        len: 1800,
                        fill: 0xB5,
                    });
                    sends.push(Send {
                        at: SimTime::from_ms(10 + wave * 10),
                        vc,
                        direction: Direction::FddiToAtm,
                        len: 1800,
                        fill: 0x4A,
                    });
                }
            }
        }
        // Stable sort: same-instant sends keep generation order, so the
        // schedule (and the run) is a pure function of the seed.
        sends.sort_by_key(|s| s.at);

        let faults = FaultPlan {
            drops: if fault.chance(0.5) { fault.uniform() * 0.03 } else { 0.0 },
            corruption: if fault.chance(0.4) { fault.uniform() * 0.02 } else { 0.0 },
            duplication: if fault.chance(0.5) { fault.uniform() * 0.04 } else { 0.0 },
            dup_copies: 2 + fault.below(3) as u32, // 2..=4
            reordering: if fault.chance(0.5) { fault.uniform() * 0.04 } else { 0.0 },
            misinsertion: if fault.chance(0.5) { fault.uniform() * 0.02 } else { 0.0 },
            delay_skew: if fault.chance(0.3) {
                Some((SimTime::from_ms(2 + fault.below(6)), SimTime::from_us(fault.below(400))))
            } else {
                None
            },
            burst: if fault.chance(0.25) {
                Some(GilbertElliott::bursty(0.02 + fault.uniform() * 0.05, 0.3))
            } else {
                None
            },
        };

        Scenario {
            seed,
            vcs,
            liveness,
            starve_buffers,
            shedding,
            police,
            reassembly_timeout,
            sends,
            faults,
        }
    }
}
