//! The `.scene` bridge: seed ↔ scene translation and scene-driven runs.
//!
//! A chaos scenario is a pure function of its seed; this module gives
//! that function a durable spelling. [`scenario_to_scene`] translates
//! a materialized [`Scenario`] into the `gw-scene/1` AST **losslessly**
//! — the scene's seed feeds the same injective testbed-seed derivation,
//! congrams install in the same order (so [`gw_scene::wire_ids`]
//! assigns the same VCIs and ICNs), and every knob lowers to the same
//! configuration value — so [`run_scene`] on the translation renders
//! the byte-identical `gw-snapshot/1` document the seed run does.
//! That equivalence is pinned by `tests/replay.rs`.
//!
//! The translation is also how failures escape the seed encoding:
//! `gw-chaos emit-scene` writes a seed's canonical scene, and the
//! minimizer emits shrunk failures as `.scene` artifacts any harness
//! (or any human) can read, edit, and replay.

use atm_fddi_gateway::scene_run;
use atm_fddi_gateway::testbed::Testbed;
use gw_phy::PhyMode;
use gw_scene::{
    format_scene, CongramDecl, Dir, Expect, PoliceAction, PoliceDecl, Scene, SendDecl, Starve,
    Traffic,
};

use crate::report::{RunReport, TransportCoverage};
use crate::runner::{audit, AuditInputs};
use crate::workload::{Direction, Scenario};

/// Translate a materialized scenario into the equivalent scene AST.
/// Running the result through [`run_scene`] reproduces the seed run
/// bit for bit (same snapshot, same violations, same delivery count).
pub fn scenario_to_scene(sc: &Scenario) -> Scene {
    let mut scene =
        Scene { name: format!("seed-{}", sc.seed), seed: Some(sc.seed), ..Scene::default() };
    scene.reassembly_timeout_us = Some(sc.reassembly_timeout.as_ns() / 1_000);
    if sc.liveness {
        // The runner arms the monitor at a fixed 8 ms.
        scene.liveness_us = Some(8_000);
    }
    if sc.starve_buffers {
        scene.starve = Some(Starve { tx_octets: 2048, rx_octets: 1024 });
    }
    scene.shedding = sc.shedding;

    // Congrams install round-robin over stations 1..4 (the default
    // 4-station ring), exactly as the runner's install loop does.
    for i in 0..sc.vcs {
        let police = (i == 0 && sc.police).then_some(PoliceDecl {
            pcr_bps: 2_000_000,
            tolerance_us: 20,
            action: PoliceAction::Drop,
        });
        scene.congrams.push(CongramDecl {
            name: format!("c{i}"),
            station: (1 + i % 3) as u32,
            sync: false,
            police,
        });
    }

    for s in &sc.sends {
        debug_assert_eq!(s.at.as_ns() % 1_000, 0, "chaos schedules are whole-microsecond");
        scene.traffic.push(Traffic::Send(SendDecl {
            at_us: s.at.as_ns() / 1_000,
            congram: s.vc,
            dir: match s.direction {
                Direction::AtmToFddi => Dir::Atm,
                Direction::FddiToAtm => Dir::Fddi,
            },
            len: s.len as u32,
            fill: s.fill,
            clp: false,
        }));
    }

    let f = &sc.faults;
    scene.faults.drops = (f.drops > 0.0).then_some(f.drops);
    scene.faults.corruption = (f.corruption > 0.0).then_some(f.corruption);
    scene.faults.duplication = (f.duplication > 0.0).then_some((f.duplication, f.dup_copies));
    scene.faults.reordering = (f.reordering > 0.0).then_some(f.reordering);
    scene.faults.misinsertion = (f.misinsertion > 0.0).then_some(f.misinsertion);
    scene.faults.delay_skew = f.delay_skew.map(|(p, m)| (p.as_ns() / 1_000, m.as_ns() / 1_000));
    scene.faults.burst_loss = f.burst.map(|ge| {
        debug_assert_eq!((ge.loss_good, ge.loss_bad), (0.0, 1.0), "runner uses bursty channels");
        (ge.p_good_to_bad, ge.p_bad_to_good)
    });

    scene.expects.push(Expect::Conservation);
    scene.expects.push(Expect::ResidueClean);
    scene
}

/// A seed's canonical `.scene` text — what `gw-chaos emit-scene`
/// prints and what the regression corpus under `scenes/regressions/`
/// is generated from.
pub fn emit_scene(seed: u64) -> String {
    format_scene(&scenario_to_scene(&Scenario::generate(seed)))
}

/// Run a scene under the full chaos oracle set: conservation, zero
/// residue, and payload integrity are always checked (they are the
/// harness's own invariants, declared or not), and the scene's
/// `delivered_*` / `max_lost_frames` expects are evaluated on top.
pub fn run_scene(scene: &Scene) -> RunReport {
    run_scene_with_phy(scene, PhyMode::Loopback)
}

/// [`run_scene`] on a chosen port transport.
pub fn run_scene_with_phy(scene: &Scene, phy: PhyMode) -> RunReport {
    let faultable_phy = matches!(phy, PhyMode::Udp { .. });
    let (mut tb, handles) = Testbed::from_scene(scene, phy);
    let scheduled = scene_run::play_schedule(&mut tb, &handles, scene);
    scene_run::drain(&mut tb);
    let transport = faultable_phy.then(|| TransportCoverage::from_stats(&tb.transport_stats()));

    let frames: Vec<(usize, u8)> =
        scene.schedule().iter().map(|s| (s.len as usize, s.fill)).collect();
    let inputs = AuditInputs {
        seed: scene.seed_or_default(),
        frames: &frames,
        misinsertion_armed: scene.faults.misinsertion_armed(),
        scene: Some(format_scene(scene)),
    };
    let mut report = audit(inputs, tb, transport);

    // Conservation and residue expects are subsumed by the audit; the
    // delivery expects are scene-only and judged here.
    for e in &scene.expects {
        match e {
            Expect::DeliveredAll => {
                if report.delivered != scheduled {
                    report.violations.push(format!(
                        "expect delivered_all: {} of {scheduled} frames arrived",
                        report.delivered
                    ));
                }
            }
            Expect::DeliveredAtLeast(n) => {
                if (report.delivered as u64) < *n {
                    report.violations.push(format!(
                        "expect delivered_at_least {n}: only {} frames arrived",
                        report.delivered
                    ));
                }
            }
            Expect::MaxLostFrames(n) => {
                let lost = scheduled.saturating_sub(report.delivered) as u64;
                if lost > *n {
                    report
                        .violations
                        .push(format!("expect max_lost_frames {n}: lost {lost} of {scheduled}"));
                }
            }
            Expect::Conservation | Expect::ResidueClean => {}
        }
    }
    report
}

/// Shrink a failing scene's traffic by halving, the same discipline as
/// [`crate::minimize()`]: keep whichever half still fails, re-running
/// the whole scene each time. The fault streams stay driven by the
/// scene's seed, so the minimized scene replays exactly.
pub fn minimize_scene(scene: &Scene) -> Scene {
    let mut best = scene.clone();
    if run_scene(&best).passed() {
        return best;
    }
    while best.traffic.len() > 1 {
        let half = best.traffic.len() / 2;
        let front = Scene { traffic: best.traffic[..half].to_vec(), ..best.clone() };
        if !run_scene(&front).passed() {
            best = front;
            continue;
        }
        let back = Scene { traffic: best.traffic[half..].to_vec(), ..best.clone() };
        if !run_scene(&back).passed() {
            best = back;
            continue;
        }
        break;
    }
    best
}
