//! Drive one scenario through the co-simulation and audit the result.

use atm_fddi_gateway::atm::policing::{Gcra, GcraParams, PolicingAction};
use atm_fddi_gateway::testbed::{Testbed, TestbedConfig};
use gw_mgmt::MgmtConfig;
use gw_phy::PhyMode;
use gw_sim::time::SimTime;

use crate::report::{Coverage, RunReport, TransportCoverage};
use crate::workload::{Direction, Scenario};

/// Materialize and run the scenario a seed denotes.
pub fn run_seed(seed: u64) -> RunReport {
    run_scenario(&Scenario::generate(seed))
}

/// [`run_seed`] on a chosen port transport — the transport-blindness
/// probe: the same seed on loopback and on the fault-injected UDP phy
/// must render byte-identical snapshots.
pub fn run_seed_with_phy(seed: u64, phy: PhyMode) -> RunReport {
    run_scenario_with_phy(&Scenario::generate(seed), phy)
}

/// [`run_seed`] with the SAR stage partitioned across `shards` cores —
/// the shard-blindness probe: the same seed at 1 shard and at N shards
/// must render byte-identical snapshots, because VCI steering, the
/// control barrier, and the canonical flush ordering owe the merge
/// stage exactly the single-threaded event sequence.
pub fn run_seed_with_shards(seed: u64, shards: usize) -> RunReport {
    run_scenario_configured(&Scenario::generate(seed), PhyMode::Loopback, shards)
}

/// Run a (possibly minimized) scenario: install the congrams, play the
/// schedule, drain every queue and timer, then check conservation,
/// residue, and delivered-payload integrity.
pub fn run_scenario(sc: &Scenario) -> RunReport {
    run_scenario_with_phy(sc, PhyMode::Loopback)
}

/// [`run_scenario`] with the port seams carried by `phy`.
pub fn run_scenario_with_phy(sc: &Scenario, phy: PhyMode) -> RunReport {
    run_scenario_configured(sc, phy, 1)
}

/// [`run_scenario`] with both the transport and the shard count chosen.
pub fn run_scenario_configured(sc: &Scenario, phy: PhyMode, shards: usize) -> RunReport {
    // The fault injector gets its own stream; any injective function of
    // the seed keeps it disjoint from the scenario's generator forks.
    let faultable_phy = matches!(phy, PhyMode::Udp { .. });
    let mut cfg = TestbedConfig {
        seed: sc.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7),
        atm_faults: sc.faults.to_config(),
        phy,
        shards,
        ..Default::default()
    };
    cfg.gateway.management = Some(MgmtConfig::default());
    cfg.gateway.reassembly_timeout = sc.reassembly_timeout;
    if sc.liveness {
        cfg.gateway.vc_liveness_timeout = Some(SimTime::from_ms(8));
    }
    if sc.starve_buffers {
        // Starve the SUPERNET buffer memories. Transmit: barely over
        // one max-size frame, with the shedding watermark (85% = 1740)
        // *below* one 1800-octet frame — one stored frame is enough to
        // enter the shedding state, so both the shed and the
        // hard-overflow arms run when a synchronized wave lands.
        // Receive: below one max-size frame outright, because the RBC
        // store-then-drain runs per frame and only a single oversized
        // frame can ever overflow the receive memory.
        cfg.gateway.tx_buffer_octets = 2048;
        cfg.gateway.rx_buffer_octets = 1024;
    }
    if sc.shedding {
        cfg.gateway.overload_shedding = Some(Default::default());
    }
    let stations = cfg.fddi_stations;
    let mut tb = Testbed::build(cfg);
    let congrams: Vec<_> =
        (0..sc.vcs).map(|i| tb.install_data_congram(1 + i % (stations - 1))).collect();
    if sc.police {
        // A tight contract on the first congram so GCRA non-conformance
        // (and its conservation arm) gets exercised.
        tb.gw.install_rate_control(
            congrams[0].vci,
            Gcra::new(
                GcraParams::for_sar_payload_bps(2_000_000, SimTime::from_us(20)),
                PolicingAction::Drop,
            ),
        );
    }

    for s in &sc.sends {
        if s.at > tb.now() {
            tb.run_until(s.at);
        }
        let payload = vec![s.fill; s.len];
        match s.direction {
            Direction::AtmToFddi => tb.send_from_atm_host_at(s.at, congrams[s.vc], payload),
            Direction::FddiToAtm => {
                tb.send_from_fddi_station(congrams[s.vc].station, congrams[s.vc], payload)
            }
        }
    }

    // Drain: run well past the last send and the longest timeout, then
    // keep stepping while anything is still in flight (ring queues,
    // reassembly timers, staged frames). The bounded loop turns a
    // genuine leak into a stable, reportable residue, not a hang.
    let mut t = tb.now() + SimTime::from_ms(60);
    tb.run_until(t);
    for _ in 0..40 {
        if tb.gw.residue().is_clean() && tb.gw.fddi_tx_pending() == 0 {
            break;
        }
        t += SimTime::from_ms(10);
        tb.run_until(t);
    }

    let transport = faultable_phy.then(|| TransportCoverage::from_stats(&tb.transport_stats()));
    let frames: Vec<(usize, u8)> = sc.sends.iter().map(|s| (s.len, s.fill)).collect();
    let inputs = AuditInputs {
        seed: sc.seed,
        frames: &frames,
        misinsertion_armed: sc.faults.misinsertion > 0.0,
        scene: Some(gw_scene::format_scene(&crate::scene::scenario_to_scene(sc))),
    };
    audit(inputs, tb, transport)
}

/// What the audit needs to know about the run it is judging — the
/// schedule's `(len, fill)` pairs and whether misinsertion was armed.
/// Both the seed path and the scene path build one of these, so the
/// oracle (and therefore the verdict) is shared, not duplicated.
pub(crate) struct AuditInputs<'a> {
    /// The seed (or scene-declared seed) the run was driven by.
    pub seed: u64,
    /// Every scheduled frame's `(len, fill)`.
    pub frames: &'a [(usize, u8)],
    /// Misinsertion armed with nonzero probability (the chunk-swap
    /// carve-out keys on this).
    pub misinsertion_armed: bool,
    /// Canonical `.scene` text of the run, embedded in artifacts.
    pub scene: Option<String>,
}

/// Check the invariants and assemble the report.
pub(crate) fn audit(
    inputs: AuditInputs,
    mut tb: Testbed,
    transport: Option<TransportCoverage>,
) -> RunReport {
    let mut violations = tb.gw.check_conservation();
    let residue = tb.gw.residue();

    // Delivered-payload integrity: the SPP forwards a frame intact or
    // not at all (§5.2) — under corruption, duplication, reordering,
    // and misinsertion a delivered frame must be byte-perfect, with
    // exactly one carve-out. When a VC's cell is misinserted away and
    // a foreign cell carrying the *same* sequence number is misinserted
    // in before the gap is noticed, the replacement passes the
    // sequence check and its own CRC-10: with no MID field and no
    // frame-level checksum, the SAR format provably cannot catch the
    // swap (end-to-end integrity is the MCHIP layer's job, §5.2). The
    // oracle therefore accepts whole-chunk, chunk-aligned, uniform
    // replacements matching another scheduled frame's fill — and only
    // while misinsertion is armed. Anything else is a violation.
    let mut delivered = 0usize;
    let mut chunk_swaps = 0u64;
    let misinsertion_armed = inputs.misinsertion_armed;
    let frames = inputs.frames;
    let mut check_payload = |payload: &[u8], violations: &mut Vec<String>| {
        let mut counts = [0u32; 256];
        for &b in payload {
            counts[b as usize] += 1;
        }
        let fill = (0u16..256).max_by_key(|&i| counts[i as usize]).unwrap_or(0) as u8;
        // Exact (length, fill) pairs come from the schedule — except
        // that a misinserted BOM cell carries its own MCHIP header and
        // opens a foreign-length frame on the victim VC, so under
        // misinsertion the pair may straddle two scheduled sends.
        let exact = frames.iter().any(|&(len, f)| len == payload.len() && f == fill);
        let straddled = misinsertion_armed
            && frames.iter().any(|&(len, _)| len == payload.len())
            && frames.iter().any(|&(_, f)| f == fill);
        if !exact && !straddled {
            violations.push(format!(
                "corrupt delivery: {} octets, fill {fill:#04x} — not a scheduled frame",
                payload.len()
            ));
            return;
        }
        // Walk the SAR chunk windows: 37 octets after the 8-octet
        // MCHIP header in cell 0, then 45 per cell.
        let mut start = 0usize;
        while start < payload.len() {
            let end = if start == 0 { 37 } else { start + 45 }.min(payload.len());
            let chunk = &payload[start..end];
            let b0 = chunk[0];
            if chunk.iter().any(|&x| x != b0) {
                violations.push(format!(
                    "corrupt delivery: mixed bytes inside the SAR chunk at {start} of a \
                     {}-octet frame (fill {fill:#04x})",
                    payload.len()
                ));
                return;
            }
            if b0 != fill {
                if misinsertion_armed && frames.iter().any(|&(_, f)| f == b0) {
                    chunk_swaps += 1;
                } else {
                    violations.push(format!(
                        "corrupt delivery: foreign chunk {b0:#04x} at {start} of a {}-octet \
                         frame (fill {fill:#04x}) with no misinsertion armed",
                        payload.len()
                    ));
                    return;
                }
            }
            start = end;
        }
    };
    for station in 0..tb.ring.len() {
        for payload in tb.fddi_rx(station) {
            delivered += 1;
            check_payload(&payload, &mut violations);
        }
    }
    for payload in std::mem::take(&mut tb.atm_host_rx) {
        delivered += 1;
        check_payload(&payload, &mut violations);
    }

    let now = tb.now();
    let failed = !violations.is_empty() || !residue.is_clean();
    // `snapshot()` self-checks conservation with a debug assertion; on
    // an already-diagnosed violating run (debug builds only) skip the
    // render instead of aborting mid-report.
    let snapshot = if violations.is_empty() || !cfg!(debug_assertions) {
        tb.gw.snapshot(now).render()
    } else {
        String::new()
    };
    let trace_dump = if failed { Some(dump_trace(&tb)) } else { None };

    let cons = tb.gw.conservation();
    // Overlay-aware: when the SAR stage runs on shards, the inner SPP's
    // reassembler sees no cells and these counters live in the overlay.
    let reasm = tb.gw.sar_reassembly_stats();
    let aic = tb.gw.aic().stats();
    let coverage = Coverage {
        hec_discards: aic.hec_discards,
        crc_drops: reasm.crc_drops,
        seq_errors: reasm.seq_errors,
        seq_misinserts: reasm.seq_misinserts,
        timeouts: reasm.timeouts,
        shed: cons.atm_tx_shed + cons.fddi_rx_shed,
        overflow: cons.atm_tx_overflow + cons.fddi_rx_overflow,
        policed: cons.policed_cells,
        chunk_swaps,
    };

    RunReport {
        seed: inputs.seed,
        sends: frames.len(),
        delivered,
        violations,
        residue,
        snapshot,
        trace_dump,
        coverage,
        transport,
        scene: inputs.scene,
        end: now,
    }
}

/// Render the causal-trace ring for the offending VC — the VC of the
/// most recent discard — or the whole ring when no discard points at
/// one.
fn dump_trace(tb: &Testbed) -> String {
    let Some(trace) = tb.gw.trace() else {
        return String::from("causal trace disabled");
    };
    let offender = trace.discards().last().and_then(|e| e.vci());
    let mut out = String::new();
    match offender {
        Some(vci) => {
            out.push_str(&format!(
                "causal trace for vc {vci} ({} events in ring, {} dropped)\n",
                trace.len(),
                trace.dropped()
            ));
            for e in trace.events().filter(|e| e.vci() == Some(vci)) {
                out.push_str(&format!("  {e:?}\n"));
            }
        }
        None => {
            out.push_str(&format!("causal trace (no discards; {} events in ring)\n", trace.len()));
            for e in trace.events() {
                out.push_str(&format!("  {e:?}\n"));
            }
        }
    }
    out
}
