//! Run reports and the machine-readable failure artifact.

use gw_gateway::gateway::Residue;
use gw_mgmt::Json;
use gw_phy::PhyStats;
use gw_sim::time::SimTime;

/// Which adversarial paths a run actually exercised — aggregated over
/// a soak so a clean result can never silently mean "the faults never
/// fired".
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage {
    /// Cells the AIC discarded on HEC (corruption hit the header).
    pub hec_discards: u64,
    /// SAR payloads failing CRC-10 (corruption hit the payload).
    pub crc_drops: u64,
    /// Sequence discontinuities (loss, reorder, duplication,
    /// misinsertion all land here first).
    pub seq_errors: u64,
    /// Discontinuities convicted as misinsertion (backward jump plus
    /// exact resumption — the signature loss cannot produce).
    pub seq_misinserts: u64,
    /// Reassemblies abandoned by the per-VC timer.
    pub timeouts: u64,
    /// Frames shed at a buffer-memory watermark (tx + rx).
    pub shed: u64,
    /// Frames lost to buffer-memory hard overflow (tx + rx).
    pub overflow: u64,
    /// Cells shed by ingress policing.
    pub policed: u64,
    /// Delivered frames carrying an undetectable same-sequence chunk
    /// swap (misinsertion the SAR format provably cannot catch; see
    /// DESIGN.md §10).
    pub chunk_swaps: u64,
}

impl Coverage {
    /// Fold another run's coverage into this aggregate.
    pub fn absorb(&mut self, other: &Coverage) {
        self.hec_discards += other.hec_discards;
        self.crc_drops += other.crc_drops;
        self.seq_errors += other.seq_errors;
        self.seq_misinserts += other.seq_misinserts;
        self.timeouts += other.timeouts;
        self.shed += other.shed;
        self.overflow += other.overflow;
        self.policed += other.policed;
        self.chunk_swaps += other.chunk_swaps;
    }

    /// One-line soak-footer rendering.
    pub fn summary(&self) -> String {
        format!(
            "coverage: hec {} crc {} seq_err {} misinsert {} timeout {} shed {} overflow {} \
             chunk_swap {}",
            self.hec_discards,
            self.crc_drops,
            self.seq_errors,
            self.seq_misinserts,
            self.timeouts,
            self.shed,
            self.overflow,
            self.chunk_swaps
        )
    }
}

/// Which *transport* fault paths a UDP-phy run exercised — the seam
/// below the gateway, distinct from [`Coverage`]'s cell-level faults.
/// Aggregated over a phy-soak so "all seeds byte-identical" can never
/// silently mean "the datagram faults never fired".
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportCoverage {
    /// Datagrams handed to the sockets (including retransmits and
    /// fault-injected duplicates).
    pub datagrams_tx: u64,
    /// Datagrams received and decoded.
    pub datagrams_rx: u64,
    /// ARQ retransmissions (a dropped or truncated datagram recovered).
    pub retransmits: u64,
    /// Duplicate datagrams discarded by the receive window.
    pub dup_drops: u64,
    /// Datagrams rejected by the GWP1 decoder (truncation landed here).
    pub decode_drops: u64,
    /// Datagrams the injector dropped at the transmit seam.
    pub faults_dropped: u64,
    /// Datagrams the injector duplicated.
    pub faults_duplicated: u64,
    /// Datagrams the injector truncated.
    pub faults_truncated: u64,
}

impl TransportCoverage {
    /// Capture a run's phy counters.
    pub fn from_stats(s: &PhyStats) -> TransportCoverage {
        TransportCoverage {
            datagrams_tx: s.datagrams_tx,
            datagrams_rx: s.datagrams_rx,
            retransmits: s.retransmits,
            dup_drops: s.dup_drops,
            decode_drops: s.decode_drops,
            faults_dropped: s.faults_dropped,
            faults_duplicated: s.faults_duplicated,
            faults_truncated: s.faults_truncated,
        }
    }

    /// Fold another run's transport coverage into this aggregate.
    pub fn absorb(&mut self, other: &TransportCoverage) {
        self.datagrams_tx += other.datagrams_tx;
        self.datagrams_rx += other.datagrams_rx;
        self.retransmits += other.retransmits;
        self.dup_drops += other.dup_drops;
        self.decode_drops += other.decode_drops;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_truncated += other.faults_truncated;
    }

    /// Did every injected datagram fault class actually fire (and get
    /// absorbed — drops retransmitted, dups discarded, truncations
    /// rejected by the decoder)?
    pub fn exercised(&self) -> bool {
        self.faults_dropped > 0
            && self.faults_duplicated > 0
            && self.faults_truncated > 0
            && self.retransmits > 0
            && self.dup_drops > 0
            && self.decode_drops > 0
    }

    /// One-line soak-footer rendering.
    pub fn summary(&self) -> String {
        format!(
            "transport: tx {} rx {} retx {} dup_drop {} decode_drop {} injected drop {} dup {} \
             trunc {}",
            self.datagrams_tx,
            self.datagrams_rx,
            self.retransmits,
            self.dup_drops,
            self.decode_drops,
            self.faults_dropped,
            self.faults_duplicated,
            self.faults_truncated
        )
    }
}

/// Everything one chaos run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed that denotes the scenario.
    pub seed: u64,
    /// Scheduled frame injections (post-minimization this shrinks).
    pub sends: usize,
    /// Frames delivered intact to either far side.
    pub delivered: usize,
    /// Conservation violations plus payload-integrity violations;
    /// empty on a clean run.
    pub violations: Vec<String>,
    /// The post-drain residue audit.
    pub residue: Residue,
    /// The rendered `gw-snapshot/1` document (byte-comparable across
    /// replays of the same seed). Empty only when a debug build skips
    /// the render on an already-violating run.
    pub snapshot: String,
    /// Causal-trace dump for the offending VC, on failure.
    pub trace_dump: Option<String>,
    /// Which fault paths the run exercised.
    pub coverage: Coverage,
    /// Transport-seam counters, when the run rode a faultable phy
    /// (`None` on the default loopback transport).
    pub transport: Option<TransportCoverage>,
    /// Canonical `gw-scene/1` text of the run — a seed run embeds its
    /// translation, a scene run embeds the scene itself — so every
    /// artifact carries a replayable, human-editable repro.
    pub scene: Option<String>,
    /// Simulation time at audit.
    pub end: SimTime,
}

impl RunReport {
    /// Did the run uphold every invariant?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.residue.is_clean()
    }

    /// One-line summary for soak logs.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>6}  sends {:>3}  delivered {:>3}  end {:>4} ms  {}",
            self.seed,
            self.sends,
            self.delivered,
            self.end.as_ns() / 1_000_000,
            if self.passed() { "ok" } else { "FAIL" }
        )
    }
}

/// Build the failure artifact a soak job uploads: the seed, every
/// violated equation, the residue audit, the causal trace, the full
/// snapshot, and (since `gw-chaos-artifact/2`) the run's canonical
/// `.scene` text — enough to replay and fix without rerunning CI, in
/// any harness that speaks `gw-scene/1`.
pub fn artifact(report: &RunReport) -> Json {
    let mut doc = Json::obj();
    doc.set("format", Json::Str("gw-chaos-artifact/2".into()));
    doc.set("seed", Json::U64(report.seed));
    doc.set("passed", Json::Bool(report.passed()));
    doc.set("sends", Json::U64(report.sends as u64));
    doc.set("delivered", Json::U64(report.delivered as u64));
    doc.set("end_ns", Json::U64(report.end.as_ns()));
    doc.set(
        "violations",
        Json::Arr(report.violations.iter().map(|v| Json::Str(v.clone())).collect()),
    );
    let r = &report.residue;
    let mut res = Json::obj();
    res.set("clean", Json::Bool(r.is_clean()));
    res.set("reassembly_cells", Json::U64(r.reassembly_cells as u64));
    res.set("reassembly_timers_armed", Json::Bool(r.reassembly_timers_armed));
    res.set("tx_frames_pending", Json::U64(r.tx_frames_pending as u64));
    res.set("tx_octets", Json::U64(r.tx_octets as u64));
    res.set("rx_octets", Json::U64(r.rx_octets as u64));
    res.set("npe_fifo_depth", Json::U64(r.npe_fifo_depth as u64));
    res.set("liveness_timer_skew", Json::I64(r.liveness_timer_skew));
    res.set("spp_pool_leak", Json::I64(r.spp_pool_leak));
    res.set("mpp_pool_leak", Json::I64(r.mpp_pool_leak));
    doc.set("residue", res);
    if let Some(trace) = &report.trace_dump {
        doc.set("trace", Json::Str(trace.clone()));
    }
    if let Some(scene) = &report.scene {
        doc.set("scene", Json::Str(scene.clone()));
    }
    match Json::parse(&report.snapshot) {
        Ok(snap) => doc.set("snapshot", snap),
        Err(_) => doc.set("snapshot", Json::Null),
    };
    doc
}
