//! Deterministic chaos soak harness for the ATM-FDDI gateway.
//!
//! A chaos run materializes a **scenario** from a single `u64` seed —
//! a randomized-but-fully-seeded traffic schedule plus an adversarial
//! fault mix (cell loss, corruption, duplication bursts, adjacent-swap
//! reordering, misinsertion onto live foreign VCs, delay skew, buffer
//! starvation) — drives it through the co-simulation testbed, drains
//! every queue and timer, and then checks two global invariants the
//! paper's hardware implicitly promises:
//!
//! * **Conservation** — every cell and frame that entered the gateway
//!   is accounted for as delivered or dropped under a named reason
//!   (the C1–C7 equations of [`gw_gateway::gateway::Gateway::check_conservation`]);
//! * **Zero residue** — after drain, no reassembly slot, pool buffer,
//!   timer, or staged frame is still held
//!   ([`gw_gateway::gateway::Gateway::residue`]).
//!
//! Every source of randomness forks off [`gw_sim::rng::SimRng`], so a
//! seed replays **bit-for-bit**: two runs of the same seed render
//! byte-identical `gw-snapshot/1` documents. A failing seed is
//! therefore a complete bug report — the CLI (`gw-chaos`) re-runs it,
//! dumps the causal-trace ring for the offending VC, and shrinks the
//! traffic schedule by halving until the failure is minimal.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod minimize;
pub mod report;
pub mod runner;
pub mod scene;
pub mod workload;

pub use minimize::minimize;
pub use report::{artifact, Coverage, RunReport, TransportCoverage};
pub use runner::{
    run_scenario, run_scenario_configured, run_scenario_with_phy, run_seed, run_seed_with_phy,
    run_seed_with_shards,
};
pub use scene::{emit_scene, minimize_scene, run_scene, run_scene_with_phy, scenario_to_scene};
pub use workload::{Direction, FaultPlan, Scenario, Send};
