//! `gw-chaos` — deterministic chaos soak runner.
//!
//! ```text
//! gw-chaos run      --seed N                  one scenario, full report
//! gw-chaos replay   --seed N                  run twice, byte-compare snapshots
//! gw-chaos soak     --seeds N [--start S]     N consecutive seeds, artifacts on failure
//! gw-chaos phy-soak --seeds N [--start S]     each seed on loopback AND the fault-injected
//!                                             UDP phy, snapshots byte-compared
//! gw-chaos shard-soak --seeds N [--start S] [--shards K]
//!                                             each seed single-threaded AND with the SAR
//!                                             stage on K shards (default 4), snapshots
//!                                             byte-compared
//! gw-chaos minimize --seed N                  shrink a failing seed's schedule
//! gw-chaos run-scene FILE                     parse a .scene and run it under the
//!                                             full chaos oracle set
//! gw-chaos emit-scene --seed N [--out FILE]   a seed's canonical .scene text
//! ```
//!
//! Exit status is non-zero whenever any invariant (conservation, zero
//! residue, payload integrity, replay determinism) does not hold.
//! A failing `run-scene` writes the `gw-chaos-artifact/2` JSON **and**
//! a minimized `.scene` repro next to it.

use gw_chaos::workload::Scenario;
use gw_chaos::{
    artifact, emit_scene, minimize, minimize_scene, run_scenario, run_seed, run_seed_with_phy,
    run_seed_with_shards, TransportCoverage,
};
use gw_phy::{PhyMode, TransportFaultConfig};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: gw-chaos <run|replay|soak|phy-soak|shard-soak|minimize|run-scene|emit-scene> \
             [--seed N] [--seeds N] [--start S] [--shards K] [--artifact-dir D] [--out FILE] [FILE]"
        );
        return 2;
    };
    let seed = flag(&args, "--seed").unwrap_or(1);
    let seeds = flag(&args, "--seeds").unwrap_or(64);
    let start = flag(&args, "--start").unwrap_or(1);
    let artifact_dir =
        flag_str(&args, "--artifact-dir").unwrap_or_else(|| String::from("chaos-artifacts"));

    match cmd.as_str() {
        "run" => run_one(seed, &artifact_dir),
        "replay" => replay(seed),
        "soak" => soak(start, seeds, &artifact_dir),
        "phy-soak" => phy_soak(start, seeds, &artifact_dir),
        "shard-soak" => {
            shard_soak(start, seeds, flag(&args, "--shards").unwrap_or(4) as usize, &artifact_dir)
        }
        "minimize" => shrink(seed, &artifact_dir),
        "run-scene" => match positional(&args) {
            Some(path) => run_scene_file(&path, &artifact_dir),
            None => {
                eprintln!("gw-chaos run-scene: missing scene file");
                2
            }
        },
        "emit-scene" => {
            let text = emit_scene(seed);
            match flag_str(&args, "--out") {
                Some(path) => match std::fs::write(&path, &text) {
                    Ok(()) => {
                        println!("wrote {path}");
                        0
                    }
                    Err(e) => {
                        eprintln!("gw-chaos emit-scene: {path}: {e}");
                        1
                    }
                },
                None => {
                    print!("{text}");
                    0
                }
            }
        }
        other => {
            eprintln!("gw-chaos: unknown command {other:?}");
            2
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == name)?;
    args.get(i + 1)?.parse().ok()
}

fn flag_str(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    args.get(i + 1).cloned()
}

/// The first operand after the subcommand that is neither a flag nor a
/// flag's value.
fn positional(args: &[String]) -> Option<String> {
    let mut skip = false;
    for a in args.iter().skip(1) {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a.clone());
    }
    None
}

/// Parse, diagnose, and run a `.scene` under the chaos oracles. A
/// failing run writes the JSON artifact plus a minimized `.scene`.
fn run_scene_file(path: &str, artifact_dir: &str) -> i32 {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gw-chaos run-scene: {path}: {e}");
            return 2;
        }
    };
    let (scene, diags) = gw_scene::parse(&src);
    for d in &diags {
        eprintln!("{path}:{}", d.render());
    }
    let Some(scene) = scene else {
        return 2;
    };
    let report = gw_chaos::run_scene(&scene);
    println!("{}", report.summary());
    println!("  {}", report.coverage.summary());
    for v in &report.violations {
        println!("  violation: {v}");
    }
    if !report.residue.is_clean() {
        println!("  residue: {:?}", report.residue);
    }
    if let Some(trace) = &report.trace_dump {
        println!("{trace}");
    }
    if report.passed() {
        0
    } else {
        write_artifact(artifact_dir, &report);
        let small = minimize_scene(&scene);
        let min_path = format!("{artifact_dir}/{}.min.scene", scene.name);
        match std::fs::write(&min_path, gw_scene::format_scene(&small)) {
            Ok(()) => {
                eprintln!("  minimized scene: {min_path} ({} traffic lines)", small.traffic.len())
            }
            Err(e) => eprintln!("  minimized scene write failed: {e}"),
        }
        1
    }
}

fn run_one(seed: u64, artifact_dir: &str) -> i32 {
    let report = run_seed(seed);
    println!("{}", report.summary());
    println!("  {}", report.coverage.summary());
    for v in &report.violations {
        println!("  violation: {v}");
    }
    if !report.residue.is_clean() {
        println!("  residue: {:?}", report.residue);
    }
    if let Some(trace) = &report.trace_dump {
        println!("{trace}");
    }
    if report.passed() {
        0
    } else {
        write_artifact(artifact_dir, &report);
        1
    }
}

fn replay(seed: u64) -> i32 {
    let a = run_seed(seed);
    let b = run_seed(seed);
    if a.snapshot == b.snapshot && !a.snapshot.is_empty() {
        println!("seed {seed}: replay identical ({} snapshot bytes)", a.snapshot.len());
        0
    } else {
        println!(
            "seed {seed}: REPLAY DIVERGED ({} vs {} snapshot bytes)",
            a.snapshot.len(),
            b.snapshot.len()
        );
        1
    }
}

fn soak(start: u64, seeds: u64, artifact_dir: &str) -> i32 {
    let mut failures = Vec::new();
    let mut coverage = gw_chaos::Coverage::default();
    for seed in start..start.saturating_add(seeds) {
        let report = run_seed(seed);
        coverage.absorb(&report.coverage);
        if report.passed() {
            println!("{}", report.summary());
        } else {
            println!("{}", report.summary());
            for v in &report.violations {
                println!("  violation: {v}");
            }
            write_artifact(artifact_dir, &report);
            failures.push(seed);
        }
    }
    println!("{}", coverage.summary());
    if failures.is_empty() {
        // A clean soak that never drove the adversarial paths proves
        // nothing — gate on the fault mix having actually fired.
        let starved = coverage.shed + coverage.overflow;
        let corrupted = coverage.hec_discards + coverage.crc_drops;
        if seeds >= 32
            && (coverage.seq_errors == 0
                || corrupted == 0
                || coverage.timeouts == 0
                || starved == 0)
        {
            println!("soak: {seeds} seeds clean but fault coverage is hollow — FAILING");
            return 1;
        }
        println!("soak: {seeds} seeds clean (start {start})");
        0
    } else {
        println!(
            "soak: {}/{} seeds FAILED: {:?} — replay with `gw-chaos run --seed <N>`",
            failures.len(),
            seeds,
            failures
        );
        1
    }
}

/// The datagram fault mix a phy-soak rides: harsh enough that every
/// class fires across a 32-seed soak, mild enough that the lockstep
/// ARQ converges in a handful of seam-flush rounds.
fn phy_soak_faults(seed: u64) -> TransportFaultConfig {
    TransportFaultConfig {
        drop: 0.04,
        duplicate: 0.04,
        truncate: 0.02,
        seed: seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0x0F1A),
    }
}

/// Transport-blindness soak: every seed runs on the in-process
/// loopback AND on the UDP-encapsulation phy with datagram drop,
/// duplication, and truncation injected below the gateway — and the
/// two `gw-snapshot/1` documents must be byte-identical, because the
/// lockstep ARQ owes the gateway an in-order, exactly-once stream no
/// matter what the wire does.
fn phy_soak(start: u64, seeds: u64, artifact_dir: &str) -> i32 {
    let mut failures = Vec::new();
    let mut coverage = gw_chaos::Coverage::default();
    let mut transport = TransportCoverage::default();
    for seed in start..start.saturating_add(seeds) {
        let sim = run_seed(seed);
        let udp = run_seed_with_phy(seed, PhyMode::Udp { faults: phy_soak_faults(seed) });
        coverage.absorb(&udp.coverage);
        if let Some(t) = &udp.transport {
            transport.absorb(t);
        }
        let identical = sim.snapshot == udp.snapshot && !sim.snapshot.is_empty();
        let ok = identical && sim.passed() && udp.passed();
        println!("{}  {}", udp.summary(), if identical { "phy-identical" } else { "PHY DIVERGED" });
        if !ok {
            for v in sim.violations.iter().chain(&udp.violations) {
                println!("  violation: {v}");
            }
            write_artifact(artifact_dir, &udp);
            failures.push(seed);
        }
    }
    println!("{}", coverage.summary());
    println!("{}", transport.summary());
    if failures.is_empty() {
        // Byte-identity over a transport whose faults never fired is a
        // hollow proof — gate on every datagram fault class having
        // been injected AND absorbed.
        if seeds >= 32 && !transport.exercised() {
            println!("phy-soak: {seeds} seeds identical but transport fault coverage is hollow — FAILING");
            return 1;
        }
        println!("phy-soak: {seeds} seeds byte-identical across loopback and UDP (start {start})");
        0
    } else {
        println!(
            "phy-soak: {}/{} seeds FAILED: {:?} — replay with `gw-chaos run --seed <N>`",
            failures.len(),
            seeds,
            failures
        );
        1
    }
}

/// Shard-blindness soak: every seed runs through the single-threaded
/// gateway AND with the SAR stage partitioned across `shards` cores
/// behind the SPSC rings — and the two `gw-snapshot/1` documents must
/// be byte-identical, because VCI steering plus the control barrier
/// plus canonical flush ordering owe the merge stage exactly the
/// single-threaded event sequence. Both runs also face the full chaos
/// oracle set (conservation C1–C7, zero residue, payload integrity),
/// so the invariants hold per-arrangement, not just relative to each
/// other.
fn shard_soak(start: u64, seeds: u64, shards: usize, artifact_dir: &str) -> i32 {
    let mut failures = Vec::new();
    let mut coverage = gw_chaos::Coverage::default();
    for seed in start..start.saturating_add(seeds) {
        let single = run_seed(seed);
        let sharded = run_seed_with_shards(seed, shards);
        coverage.absorb(&sharded.coverage);
        let identical = single.snapshot == sharded.snapshot && !single.snapshot.is_empty();
        let ok = identical && single.passed() && sharded.passed();
        println!(
            "{}  {}",
            sharded.summary(),
            if identical { format!("{shards}-shard-identical") } else { "SHARDS DIVERGED".into() }
        );
        if !ok {
            for v in single.violations.iter().chain(&sharded.violations) {
                println!("  violation: {v}");
            }
            write_artifact(artifact_dir, &sharded);
            failures.push(seed);
        }
    }
    println!("{}", coverage.summary());
    if failures.is_empty() {
        // Byte-identity over runs that never drove the adversarial SAR
        // paths (per-VC errors, timeouts, starvation) proves little —
        // gate on the fault mix having fired through the shards.
        let starved = coverage.shed + coverage.overflow;
        let corrupted = coverage.hec_discards + coverage.crc_drops;
        if seeds >= 32
            && (coverage.seq_errors == 0
                || corrupted == 0
                || coverage.timeouts == 0
                || starved == 0)
        {
            println!("shard-soak: {seeds} seeds identical but fault coverage is hollow — FAILING");
            return 1;
        }
        println!(
            "shard-soak: {seeds} seeds byte-identical at 1 and {shards} shards (start {start})"
        );
        0
    } else {
        println!(
            "shard-soak: {}/{} seeds FAILED: {:?} — replay with `gw-chaos run --seed <N>`",
            failures.len(),
            seeds,
            failures
        );
        1
    }
}

fn shrink(seed: u64, artifact_dir: &str) -> i32 {
    let full = Scenario::generate(seed);
    let report = run_scenario(&full);
    if report.passed() {
        println!("seed {seed}: passes; nothing to minimize");
        return 0;
    }
    let small = minimize(&full);
    // The minimized repro escapes the seed encoding as a .scene any
    // harness (or any human editor) can replay directly.
    if std::fs::create_dir_all(artifact_dir).is_ok() {
        let path = format!("{artifact_dir}/seed-{seed}.min.scene");
        let text = gw_scene::format_scene(&gw_chaos::scenario_to_scene(&small));
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("  minimized scene: {path}"),
            Err(e) => eprintln!("  minimized scene write failed: {e}"),
        }
    }
    println!(
        "seed {seed}: minimized schedule {} -> {} sends; still failing:",
        full.sends.len(),
        small.sends.len()
    );
    for s in &small.sends {
        println!(
            "  {:>8} ns  vc {}  {:?}  {} octets  fill {:#04x}",
            s.at.as_ns(),
            s.vc,
            s.direction,
            s.len,
            s.fill
        );
    }
    let rerun = run_scenario(&small);
    for v in &rerun.violations {
        println!("  violation: {v}");
    }
    1
}

fn write_artifact(dir: &str, report: &gw_chaos::RunReport) {
    let doc = artifact(report);
    if std::fs::create_dir_all(dir).is_ok() {
        let path = format!("{dir}/seed-{}.json", report.seed);
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("  artifact: {path}"),
            Err(e) => eprintln!("  artifact write failed: {e}"),
        }
    }
}
