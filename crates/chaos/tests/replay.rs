//! Replay determinism and the regression-seed corpus.
//!
//! These are the checked-in guarantees behind the soak job: a seed is
//! a complete, stable bug report (bit-for-bit replay), and every seed
//! that ever exposed a bug keeps passing after the fix.

use gw_chaos::workload::Scenario;
use gw_chaos::{
    emit_scene, minimize, minimize_scene, run_scenario, run_scene, run_seed, run_seed_with_phy,
    scenario_to_scene,
};
use gw_phy::{PhyMode, TransportFaultConfig};

/// Same seed, two runs, byte-identical snapshot documents — the
/// property that makes a failing soak seed reproducible forever.
#[test]
fn seed_replay_is_bit_for_bit() {
    for seed in [3, 17] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert!(!a.snapshot.is_empty(), "seed {seed} rendered no snapshot");
        assert_eq!(a.snapshot, b.snapshot, "seed {seed} replay diverged");
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.violations, b.violations);
    }
}

/// Transport-blindness: the same seed through the UDP-encapsulation
/// phy — datagrams dropped, duplicated, and truncated below the
/// gateway — renders the byte-identical snapshot the loopback run
/// does, because the lockstep ARQ owes the gateway an in-order,
/// exactly-once stream no matter what the wire does.
#[test]
fn udp_phy_replay_matches_loopback_bit_for_bit() {
    for seed in [3, 17] {
        let sim = run_seed(seed);
        let faults = TransportFaultConfig {
            drop: 0.05,
            duplicate: 0.05,
            truncate: 0.03,
            seed: seed ^ 0x0F1A,
        };
        let udp = run_seed_with_phy(seed, PhyMode::Udp { faults });
        assert!(!sim.snapshot.is_empty(), "seed {seed} rendered no snapshot");
        assert_eq!(sim.snapshot, udp.snapshot, "seed {seed} diverged across transports");
        assert_eq!(sim.delivered, udp.delivered);
        assert_eq!(sim.violations, udp.violations);
        let t = udp.transport.expect("UDP run records transport coverage");
        assert!(t.datagrams_tx > 0 && t.datagrams_rx > 0, "seed {seed} never hit the sockets");
    }
}

/// Scenario materialization is a pure function of the seed.
#[test]
fn scenario_generation_is_stable() {
    let a = Scenario::generate(42);
    let b = Scenario::generate(42);
    assert_eq!(a.sends.len(), b.sends.len());
    assert_eq!(a.vcs, b.vcs);
    for (x, y) in a.sends.iter().zip(&b.sends) {
        assert_eq!(x.at, y.at);
        assert_eq!(x.len, y.len);
        assert_eq!(x.fill, y.fill);
    }
}

/// Every seed that ever exposed a bug, replayed against the fixed
/// gateway: conservation holds, residue is zero, payloads are intact.
#[test]
fn regression_corpus_replays_clean() {
    let corpus = include_str!("../regression_seeds.txt");
    let mut checked = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed: u64 = line.parse().unwrap_or_else(|_| panic!("bad corpus line {line:?}"));
        let report = run_seed(seed);
        assert!(
            report.passed(),
            "regression seed {seed} failed again: {:?} residue {:?}",
            report.violations,
            report.residue
        );
        checked += 1;
    }
    assert!(checked >= 4, "corpus unexpectedly small ({checked} seeds)");
}

/// The shrinker never "fixes" a passing scenario and always returns a
/// schedule no larger than its input.
#[test]
fn minimizer_is_sound_on_passing_scenarios() {
    let sc = Scenario::generate(3);
    let small = minimize(&sc);
    assert_eq!(small.sends.len(), sc.sends.len(), "passing scenario must not shrink");
    assert!(run_scenario(&small).passed());
}

/// The seed → `.scene` translation is lossless: running the emitted
/// scene text (through the real parser, not just the AST) renders the
/// byte-identical snapshot the seed run does.
#[test]
fn scene_emission_is_bit_faithful() {
    for seed in [3, 17] {
        let direct = run_seed(seed);
        let text = emit_scene(seed);
        let (scene, diags) = gw_scene::parse(&text);
        assert!(diags.is_empty(), "seed {seed} emitted a diagnosed scene: {diags:?}");
        let via_scene = run_scene(&scene.unwrap());
        assert!(!direct.snapshot.is_empty(), "seed {seed} rendered no snapshot");
        assert_eq!(direct.snapshot, via_scene.snapshot, "seed {seed} diverged through .scene");
        assert_eq!(direct.delivered, via_scene.delivered);
        assert_eq!(direct.violations, via_scene.violations);
    }
}

/// The checked-in `scenes/regressions/` corpus is exactly the canonical
/// emission of `regression_seeds.txt` (so neither can drift without the
/// other), and every scene replays clean through the scene path.
#[test]
fn regression_scene_corpus_matches_seeds_and_replays_clean() {
    let corpus = include_str!("../regression_seeds.txt");
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenes/regressions");
    let mut checked = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed: u64 = line.parse().unwrap_or_else(|_| panic!("bad corpus line {line:?}"));
        let path = format!("{dir}/seed-{seed}.scene");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} — regenerate with `gw-chaos emit-scene`"));
        assert_eq!(
            text,
            emit_scene(seed),
            "{path} is stale — regenerate with `gw-chaos emit-scene --seed {seed} --out {path}`"
        );
        let (scene, diags) = gw_scene::parse(&text);
        assert!(diags.is_empty(), "{path} drew diagnostics: {diags:?}");
        let report = run_scene(&scene.unwrap());
        assert!(
            report.passed(),
            "regression scene {path} failed: {:?} residue {:?}",
            report.violations,
            report.residue
        );
        checked += 1;
    }
    assert!(checked >= 4, "scene corpus unexpectedly small ({checked})");
}

/// A chaos-minimized failure emitted as canonical `.scene` text still
/// parses and still fails the same way — the acceptance contract for
/// shipping repros as scenes.
#[test]
fn minimized_scene_reproduces_through_canonical_text() {
    // A scene that genuinely fails: half the cells dropped, but the
    // scene demands total delivery.
    let src = "\
# gw-scene/1
scene doomed
seed 9
congram a station 1 class async
congram b station 2 class async
burst from_us 0 to_us 8000 every_us 500 vc a dir atm len 900 fill 0x5a
burst from_us 250 to_us 8000 every_us 750 vc b dir atm len 400 fill 0xa7
send at_us 9000 vc a dir fddi len 700 fill 0x33
fault drops 0.5
expect conservation
expect residue_clean
expect delivered_all
";
    let (scene, diags) = gw_scene::parse(src);
    assert!(diags.is_empty(), "{diags:?}");
    let scene = scene.unwrap();
    assert!(!run_scene(&scene).passed(), "the doomed scene must fail");

    let small = minimize_scene(&scene);
    assert!(small.traffic.len() <= scene.traffic.len());
    // Round the minimized scene through canonical text, as the CLI
    // artifact does, and replay it.
    let text = gw_scene::format_scene(&small);
    let (reparsed, diags) = gw_scene::parse(&text);
    let errors = diags.iter().filter(|d| d.severity == gw_scene::Severity::Error).count();
    assert_eq!(errors, 0, "minimized scene text drew errors: {diags:?}\n{text}");
    let report = run_scene(&reparsed.unwrap());
    assert!(!report.passed(), "minimized scene no longer reproduces:\n{text}");
}

/// Scenario → scene translation preserves the schedule exactly.
#[test]
fn scenario_translation_preserves_schedule() {
    let sc = Scenario::generate(42);
    let scene = scenario_to_scene(&sc);
    let plan = scene.schedule();
    assert_eq!(plan.len(), sc.sends.len());
    for (p, s) in plan.iter().zip(&sc.sends) {
        assert_eq!(p.at_ns, s.at.as_ns());
        assert_eq!(p.len as usize, s.len);
        assert_eq!(p.fill, s.fill);
        assert_eq!(p.congram, s.vc);
    }
}
