//! Replay determinism and the regression-seed corpus.
//!
//! These are the checked-in guarantees behind the soak job: a seed is
//! a complete, stable bug report (bit-for-bit replay), and every seed
//! that ever exposed a bug keeps passing after the fix.

use gw_chaos::workload::Scenario;
use gw_chaos::{minimize, run_scenario, run_seed, run_seed_with_phy};
use gw_phy::{PhyMode, TransportFaultConfig};

/// Same seed, two runs, byte-identical snapshot documents — the
/// property that makes a failing soak seed reproducible forever.
#[test]
fn seed_replay_is_bit_for_bit() {
    for seed in [3, 17] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert!(!a.snapshot.is_empty(), "seed {seed} rendered no snapshot");
        assert_eq!(a.snapshot, b.snapshot, "seed {seed} replay diverged");
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.violations, b.violations);
    }
}

/// Transport-blindness: the same seed through the UDP-encapsulation
/// phy — datagrams dropped, duplicated, and truncated below the
/// gateway — renders the byte-identical snapshot the loopback run
/// does, because the lockstep ARQ owes the gateway an in-order,
/// exactly-once stream no matter what the wire does.
#[test]
fn udp_phy_replay_matches_loopback_bit_for_bit() {
    for seed in [3, 17] {
        let sim = run_seed(seed);
        let faults = TransportFaultConfig {
            drop: 0.05,
            duplicate: 0.05,
            truncate: 0.03,
            seed: seed ^ 0x0F1A,
        };
        let udp = run_seed_with_phy(seed, PhyMode::Udp { faults });
        assert!(!sim.snapshot.is_empty(), "seed {seed} rendered no snapshot");
        assert_eq!(sim.snapshot, udp.snapshot, "seed {seed} diverged across transports");
        assert_eq!(sim.delivered, udp.delivered);
        assert_eq!(sim.violations, udp.violations);
        let t = udp.transport.expect("UDP run records transport coverage");
        assert!(t.datagrams_tx > 0 && t.datagrams_rx > 0, "seed {seed} never hit the sockets");
    }
}

/// Scenario materialization is a pure function of the seed.
#[test]
fn scenario_generation_is_stable() {
    let a = Scenario::generate(42);
    let b = Scenario::generate(42);
    assert_eq!(a.sends.len(), b.sends.len());
    assert_eq!(a.vcs, b.vcs);
    for (x, y) in a.sends.iter().zip(&b.sends) {
        assert_eq!(x.at, y.at);
        assert_eq!(x.len, y.len);
        assert_eq!(x.fill, y.fill);
    }
}

/// Every seed that ever exposed a bug, replayed against the fixed
/// gateway: conservation holds, residue is zero, payloads are intact.
#[test]
fn regression_corpus_replays_clean() {
    let corpus = include_str!("../regression_seeds.txt");
    let mut checked = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed: u64 = line.parse().unwrap_or_else(|_| panic!("bad corpus line {line:?}"));
        let report = run_seed(seed);
        assert!(
            report.passed(),
            "regression seed {seed} failed again: {:?} residue {:?}",
            report.violations,
            report.residue
        );
        checked += 1;
    }
    assert!(checked >= 4, "corpus unexpectedly small ({checked} seeds)");
}

/// The shrinker never "fixes" a passing scenario and always returns a
/// schedule no larger than its input.
#[test]
fn minimizer_is_sound_on_passing_scenarios() {
    let sc = Scenario::generate(3);
    let small = minimize(&sc);
    assert_eq!(small.sends.len(), sc.sends.len(), "passing scenario must not shrink");
    assert!(run_scenario(&small).passed());
}
